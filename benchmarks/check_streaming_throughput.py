"""Gate: streaming ingestion stays fast, fresh, and drift-aware.

``BENCH_streaming.json`` (written by ``bench_e26_streaming.py``)
records a throughput floor, a staleness p99 budget, and the
decay-tracking ratio bar. This gate re-runs the streaming workload
(quick-sized by default) and fails the build when:

1. sustained records/sec drops below the recorded floor — windowed
   ingestion picked up qualitative cost (a full re-link per window, an
   uncapped candidate scan, re-fusing every entity per record);
2. the staleness p99 (ingest-to-visible lag) exceeds the recorded
   budget — window closes stopped keeping up with arrivals;
3. the decayed fusion's final accuracy-estimate RMSE is no longer
   under ``decay_rmse_ratio_bar`` times the undecayed baseline's —
   the headline drift-tracking property regressed;
4. the accuracy-shift monitor never flags the flipped source.

Run:  PYTHONPATH=src python benchmarks/check_streaming_throughput.py [--full]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_e26_streaming import _run_all, _sanity

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-size stream (default is the CI quick size)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help="BENCH_streaming.json to read the budgets from",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        raise SystemExit(
            f"no baseline at {args.baseline}; run "
            "benchmarks/bench_e26_streaming.py first"
        )
    baseline = json.loads(args.baseline.read_text())
    floor = baseline["throughput_floor_records_per_sec"]
    staleness_budget = baseline["staleness_p99_budget_s"]
    ratio_bar = baseline["decay_rmse_ratio_bar"]

    results = _run_all(quick=not args.full)
    _sanity(results)  # enforces the ratio bar and the monitor event

    throughput = results["throughput"]
    drift = results["drift"]
    print(
        f"throughput {throughput['records_per_sec']:.1f} rec/s vs floor "
        f"{floor:.1f}; staleness p99 {throughput['staleness_p99_s']:.3f} s "
        f"vs budget {staleness_budget:.3f} s; decay tracking ratio "
        f"{drift['decay_rmse_ratio']:.3f} vs bar {ratio_bar} "
        f"(decayed {drift['decayed']['final_rmse']}, undecayed "
        f"{drift['undecayed']['final_rmse']})"
    )
    if throughput["records_per_sec"] < floor:
        raise SystemExit(
            f"streaming throughput regression: "
            f"{throughput['records_per_sec']:.1f} rec/s is below the "
            f"recorded floor {floor:.1f}"
        )
    if throughput["staleness_p99_s"] > staleness_budget:
        raise SystemExit(
            f"streaming staleness regression: p99 "
            f"{throughput['staleness_p99_s']:.3f} s exceeds the recorded "
            f"budget {staleness_budget:.3f} s"
        )
    print("streaming throughput gate: OK")


if __name__ == "__main__":
    main()
