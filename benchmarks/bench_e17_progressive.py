"""E17 (extension) — Progressive (pay-as-you-go) entity resolution.

The pay-as-you-go theme applied to linkage: order candidate pairs so
matches surface early. Expected shape: under a 10–20% comparison
budget, similarity-first ordering finds several times the matches of
random ordering; all orderings converge at full budget. Includes the
MinHash-LSH blocker as a scalable candidate generator.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus

from repro.linkage import (
    MinHashBlocker,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    progressive_resolution_curve,
)
from repro.quality import blocking_quality


def bench_e17_progressive_er(benchmark, capsys):
    dataset = linkage_corpus(n_entities=60, n_sources=12)
    records = list(dataset.records())
    truth = dataset.ground_truth
    blocks = TokenBlocker(max_block_size=60).block(records)
    total = len(blocks.candidate_pairs())
    checkpoints = sorted(
        {max(1, round(total * fraction)) for fraction in
         (0.05, 0.1, 0.2, 0.4, 0.7, 1.0)}
    )
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(0.72)

    curves = {}
    for ordering in ("similarity", "block-size", "random"):
        curves[ordering] = progressive_resolution_curve(
            records, blocks, comparator, classifier,
            ordering=ordering, checkpoints=checkpoints, seed=2,
        )
    final = curves["similarity"][-1].matches_found
    rows = []
    for index, budget in enumerate(checkpoints):
        rows.append(
            [
                f"{budget} ({budget / total:.0%})",
                curves["similarity"][index].matches_found / final,
                curves["block-size"][index].matches_found / final,
                curves["random"][index].matches_found / final,
            ]
        )

    # The LSH companion: a similarity-thresholded candidate generator.
    lsh_blocks = MinHashBlocker(n_hashes=64, bands=32).block(records)
    lsh_quality = blocking_quality(
        lsh_blocks.candidate_pairs(), truth, len(records)
    )
    benchmark(
        lambda: progressive_resolution_curve(
            records, blocks, comparator, classifier,
            ordering="similarity", checkpoints=[checkpoints[1]],
        )
    )
    emit(
        capsys,
        "E17 (extension): fraction of matches found vs comparison budget "
        f"per candidate ordering ({total} candidates, {final} matches)",
        ["budget", "similarity-first", "block-size-first", "random"],
        rows,
        note=(
            "Expected shape: similarity-first ≈ complete within ~20% of "
            "the budget; random is linear in budget. Companion LSH "
            f"blocker: PC={lsh_quality.pairs_completeness:.3f} at "
            f"RR={lsh_quality.reduction_ratio:.3f} "
            f"({lsh_quality.candidate_pairs} candidates)."
        ),
    )
    # At the ~20% checkpoint, similarity-first ≫ random.
    twenty = 2
    assert rows[twenty][1] > 0.9, "similarity-first nearly done at 20%"
    assert rows[twenty][1] > 2.0 * rows[twenty][3], "and ≫ random"
    assert rows[-1][1] == rows[-1][2] == rows[-1][3] == 1.0
    assert lsh_quality.pairs_completeness > 0.9
