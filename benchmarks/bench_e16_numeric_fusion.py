"""E16 (extension) — Numeric truth discovery: CRH vs mean vs median.

Numeric conflicts (prices, weights, delays) need loss-aware fusion.
The CRH result (Li et al., SIGMOD'14): jointly estimating source
weights and truths beats unweighted aggregation, with the margin over
the plain median widening as gross-error (outlier) sources multiply —
weights let CRH discount entire unreliable sources, which the
per-item median cannot.
"""

from __future__ import annotations

import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.fusion import CRHNumericFuser
from repro.synth import NumericClaimWorldConfig, generate_numeric_claims

OUTLIER_SETTINGS = ((0, 0.0), (2, 0.3), (4, 0.4), (6, 0.5))
SEEDS = (1, 2, 3)


def mae(estimates, truth):
    return sum(abs(estimates[i] - truth[i]) for i in truth) / len(truth)


def run_setting(outlier_sources: int, outlier_rate: float):
    means = {"mean": 0.0, "median": 0.0, "crh": 0.0}
    weight_gap = 0.0
    for seed in SEEDS:
        planted = generate_numeric_claims(
            NumericClaimWorldConfig(
                n_items=150,
                n_sources=12,
                outlier_sources=outlier_sources,
                outlier_rate=max(outlier_rate, 0.01),
                seed=seed,
            )
        )
        by_item: dict[str, list[float]] = {}
        for (__, item), value in planted.claims.items():
            by_item.setdefault(item, []).append(value)
        mean_est = {i: sum(v) / len(v) for i, v in by_item.items()}
        median_est = {i: statistics.median(v) for i, v in by_item.items()}
        truths, weights, __ = CRHNumericFuser().fuse_values(planted.claims)
        means["mean"] += mae(mean_est, planted.truth) / len(SEEDS)
        means["median"] += mae(median_est, planted.truth) / len(SEEDS)
        means["crh"] += mae(truths, planted.truth) / len(SEEDS)
        if planted.outlier_sources:
            honest = [
                s for s in weights if s not in planted.outlier_sources
            ]
            weight_gap += (
                sum(weights[s] for s in honest) / len(honest)
                - sum(weights[s] for s in planted.outlier_sources)
                / len(planted.outlier_sources)
            ) / len(SEEDS)
    return means, weight_gap


def bench_e16_numeric_fusion(benchmark, capsys):
    rows = []
    crh_vs_median = []
    for outlier_sources, outlier_rate in OUTLIER_SETTINGS:
        means, weight_gap = run_setting(outlier_sources, outlier_rate)
        rows.append(
            [
                f"{outlier_sources}/12 @ {outlier_rate}",
                means["mean"],
                means["median"],
                means["crh"],
                weight_gap,
            ]
        )
        crh_vs_median.append(means["median"] - means["crh"])
    planted = generate_numeric_claims(
        NumericClaimWorldConfig(
            n_items=150, n_sources=12, outlier_sources=4, seed=1
        )
    )
    benchmark(lambda: CRHNumericFuser().fuse_values(planted.claims))
    emit(
        capsys,
        "E16 (extension): numeric truth discovery — MAE of mean / median "
        "/ CRH under growing outlier contamination",
        ["outliers@rate", "MAE mean", "MAE median", "MAE CRH", "weight gap"],
        rows,
        float_digits=2,
        note=(
            "Expected shape (Li et al.): CRH ≤ median ≪ mean once "
            "outliers appear; CRH's margin over the median widens with "
            "contamination; honest sources out-weigh outlier sources."
        ),
    )
    mean_col = [row[1] for row in rows]
    crh_col = [row[3] for row in rows]
    assert all(c <= m for c, m in zip(crh_col[1:], mean_col[1:]))
    assert crh_vs_median[-1] > crh_vs_median[0], (
        "CRH's edge over the median must grow with contamination"
    )
    assert rows[-1][4] > 0, "honest sources must out-weigh outliers"
