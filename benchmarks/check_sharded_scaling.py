"""Gate: the sharded runtime scales and stays byte-identical.

The sharded runtime exists to spread matching across workers without
changing a single output byte, so CI holds it to both halves of that
contract on the standard linkage corpus:

* **identity** — at ``--shards`` shards the merged match pairs,
  scored edges, and clusters equal the serial ``resolve`` exactly
  (checked inside :func:`bench_e24_sharded.run_experiment`; any
  mismatch is a hard failure).
* **scaling** — the simulated-parallel makespan (coordinator time,
  which stays serial, plus the slowest shard's worker-measured
  matching time) must beat the full serial resolve by at least
  ``--min-speedup``. On a multi-core machine (``os.cpu_count() >= 4``)
  the ``process`` backend's *wall clock* is additionally required not
  to regress below serial — a sanity check that real parallelism is
  actually wired up; single-core containers (CI) skip that half, where
  time-slicing makes wall-clock speedup physically impossible.

Run:  PYTHONPATH=src python benchmarks/check_sharded_scaling.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_e20_engine import THRESHOLD, _corpus_pairs
from bench_e24_sharded import run_experiment

from repro.dist import sharded_resolve
from repro.linkage import (
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
)


def _wall_clock_check(records, pairs, n_shards: int, serial_seconds: float):
    """Process-backend wall clock on a genuinely multi-core machine."""
    start = time.perf_counter()
    sharded_resolve(
        records,
        TokenBlocker(max_block_size=60),
        default_product_comparator(),
        ThresholdClassifier(THRESHOLD),
        candidate_pairs=[frozenset(pair) for pair in pairs],
        n_shards=n_shards,
        backend="process",
    )
    wall = time.perf_counter() - start
    print(f"  process wall:       {wall:.4f} s (serial {serial_seconds:.4f} s)")
    if wall > serial_seconds * 1.5:
        raise SystemExit(
            f"process-backend wall clock regressed: {wall:.3f} s vs "
            f"{serial_seconds:.3f} s serial on {os.cpu_count()} cores"
        )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus (CI smoke); coordinator overhead weighs "
        "more, so the floor is checked at 8 shards instead of 4",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.8,
        help="required makespan speedup over serial resolve",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count the floor applies to",
    )
    args = parser.parse_args(argv)

    n_entities, n_sources = (20, 6) if args.quick else (60, 12)
    gate_shards = 8 if args.quick and args.shards == 4 else args.shards
    records, by_id, pairs = _corpus_pairs(n_entities, n_sources)
    # run_experiment raises AssertionError on any identity mismatch.
    serial_seconds, rows = run_experiment(records, by_id, pairs, args.repeats)
    by_count = {row["n_shards"]: row for row in rows}
    if gate_shards not in by_count:
        raise SystemExit(
            f"shard count {gate_shards} not measured (have "
            f"{sorted(by_count)})"
        )
    row = by_count[gate_shards]

    print("Sharded scaling gate")
    print(f"  corpus:             {n_entities} entities x {n_sources}"
          f" sources -> {len(pairs)} pairs")
    print(f"  serial resolve:     {serial_seconds:.4f} s")
    print(f"  makespan @{gate_shards}:        {row['makespan_seconds']:.4f} s"
          f" (slowest shard {row['max_shard_seconds']:.4f} s + coordinator"
          f" {row['coordinator_seconds']:.4f} s)")
    print(f"  speedup:            {row['speedup_makespan']}x "
          f"(required >= {args.min_speedup}x), skew {row['skew']}")
    if row["speedup_makespan"] < args.min_speedup:
        raise SystemExit(
            f"sharded scaling regression: {row['speedup_makespan']}x < "
            f"{args.min_speedup}x at {gate_shards} shards"
        )
    if (os.cpu_count() or 1) >= 4:
        _wall_clock_check(records, pairs, gate_shards, serial_seconds)
    else:
        print(f"  wall-clock check:   skipped ({os.cpu_count()} core(s))")
    print("  OK: identical output, sharded runtime keeps its scaling")


if __name__ == "__main__":
    main()
