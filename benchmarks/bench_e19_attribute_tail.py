"""E19 — The attribute long tail (the variety dimension, quantified).

Web-extraction studies report that heterogeneity is dominated by a
long tail of attribute names: of tens of thousands of distinct names,
almost all appear in a tiny fraction of sources, while even the single
most popular name appears in well under half of them (≈38% in the
product-specification corpora). This bench generates corpora at
increasing source counts and custom-attribute rates and checks the
synthetic substrate reproduces those statistics.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.quality import attribute_tail_statistics
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)

CATEGORIES = ("camera", "notebook", "headphone", "monitor", "television")


def corpus(n_sources: int, max_custom: int):
    world = generate_world(
        WorldConfig(
            categories=CATEGORIES, entities_per_category=40, seed=3
        )
    )
    return generate_dataset(
        world,
        CorpusConfig(
            n_sources=n_sources,
            dialect_noise=0.7,
            max_custom_attributes=max_custom,
            min_source_size=5,
            max_source_size=60,
            seed=5,
        ),
    )


def bench_e19_attribute_long_tail(benchmark, capsys):
    rows = []
    stats_by_setting = {}
    for n_sources, max_custom in ((20, 0), (20, 6), (60, 6), (100, 6)):
        dataset = corpus(n_sources, max_custom)
        stats = attribute_tail_statistics(dataset)
        stats_by_setting[(n_sources, max_custom)] = stats
        rows.append(
            [
                n_sources,
                max_custom,
                stats.n_attribute_names,
                stats.fraction_in_one_source,
                stats.fraction_in_at_most_10pct,
                stats.top_attribute_source_fraction,
            ]
        )
    dataset = corpus(60, 6)
    benchmark(lambda: attribute_tail_statistics(dataset))
    emit(
        capsys,
        "E19: the attribute long tail across corpus scales",
        [
            "sources", "max custom", "distinct names", "share in 1 source",
            "share in ≤10%", "top-name coverage",
        ],
        rows,
        note=(
            "Expected shape (web studies): the overwhelming majority of "
            "attribute names sit in the tail; even the most popular name "
            "covers well under half the sources (the web corpus reported "
            "~38%). Custom attributes deepen the tail; more sources "
            "deepen it further."
        ),
    )
    big = stats_by_setting[(100, 6)]
    assert big.fraction_in_at_most_10pct > 0.7, "the tail must dominate"
    assert big.top_attribute_source_fraction < 0.5, (
        "even the most popular attribute is a minority taste"
    )
    without = stats_by_setting[(20, 0)]
    with_custom = stats_by_setting[(20, 6)]
    assert with_custom.n_attribute_names > without.n_attribute_names
    assert (
        with_custom.fraction_in_one_source
        > without.fraction_in_one_source
    ), "custom attributes must deepen the tail"
