"""E25 — supervision: recovery time and degraded-mode read latency.

The self-healing layer (`repro.supervision`) makes two promises that
are cheap to state and easy to quietly break:

* **recovery is bounded** — when a shard worker is killed, the
  supervisor restarts it from its checkpoint namespace and the run
  completes with byte-identical output; the price is the re-executed
  tail of the dead incarnation plus the restart machinery, not a
  rerun of the whole job. This experiment kills a process-backend
  worker mid-run and reports the wall-clock overhead against an
  unfaulted supervised run of the same workload;
* **degraded mode never taxes reads** — when the serve-side circuit
  breaker opens, writes are shed but reads keep answering from the
  last published generation through exactly the same probe-and-cache
  path. The read p99 while degraded must stay within a small multiple
  of the healthy read p99 (the gate in
  ``benchmarks/check_supervision_degraded.py`` enforces 3x against
  the recorded ``BENCH_service.json`` baseline).

``BENCH_supervision.json`` at the repo root records both numbers.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_e25_supervision.py --no-bench
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus, render_table

from repro.dist import sharded_resolve
from repro.linkage import (
    StandardBlocker,
    ThresholdClassifier,
    default_product_comparator,
)
from repro.linkage.blocking import first_token_key
from repro.obs import Tracer
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.resilience.testing import FaultInjector, crash, kill
from repro.serve import ResolutionService, percentile
from repro.supervision import OverloadPolicy, SupervisionPolicy, Supervisor

THRESHOLD = 0.72
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_supervision.json"
#: Degraded reads ride the same probe-and-cache path as healthy reads;
#: the budget is a small multiple of the healthy p99, floored so
#: machine variance on sub-millisecond latencies cannot trip it.
DEGRADED_RATIO_BUDGET = 3.0
DEGRADED_FLOOR_MS = 15.0


def _corpus(n_entities: int, n_sources: int):
    dataset = linkage_corpus(n_entities=n_entities, n_sources=n_sources)
    return list(dataset.records())


#: The corpus is schema-heterogeneous — sources call the product name
#: "title", "product name", or "model" — so the blocking key must
#: probe the aliases or most ingests never find a candidate.
def _name_key():
    return first_token_key("name", aliases=("title", "product name", "model"))


def _blocker() -> StandardBlocker:
    return StandardBlocker(_name_key())


def _supervised_run(records, checkpoint, injector=None, tracer=None):
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        failure="retry",
        fault_injector=injector,
    )
    supervisor = Supervisor(
        SupervisionPolicy(
            max_restarts=2,
            poll_interval=0.02,
            backoff=RetryPolicy(
                max_attempts=1, base_delay=0.01, multiplier=1.0,
                max_delay=0.05,
            ),
        ),
        tracer=tracer,
    )
    run = sharded_resolve(
        records,
        _blocker(),
        default_product_comparator(),
        ThresholdClassifier(THRESHOLD),
        n_shards=2,
        backend="process",
        checkpoint=checkpoint,
        resilience=resilience,
        supervisor=supervisor,
    )
    return run, supervisor


def _recovery_phase(records):
    """Kill a process-backend worker; time the healed run vs clean."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-sup-") as root:
        start = time.perf_counter()
        clean, _ = _supervised_run(records, checkpoint=f"{root}/clean")
        clean_seconds = time.perf_counter() - start

        injector = FaultInjector(kill(chunk=0, shard=1, incarnations=(1,)))
        start = time.perf_counter()
        faulted, supervisor = _supervised_run(
            records, checkpoint=f"{root}/faulted", injector=injector
        )
        faulted_seconds = time.perf_counter() - start

    if faulted.result.clusters != clean.result.clusters:
        raise SystemExit("healed run diverged from the unfaulted run")
    kinds = [event.kind for event in supervisor.events]
    return {
        "clean_seconds": round(clean_seconds, 4),
        "faulted_seconds": round(faulted_seconds, 4),
        "recovery_overhead_seconds": round(
            max(faulted_seconds - clean_seconds, 0.0), 4
        ),
        "deaths": kinds.count("death"),
        "restarts": kinds.count("restart"),
        "exhausted": kinds.count("exhausted"),
    }


def _degraded_read_phase(records, n_probes: int, tracer=None):
    """Probe read p50/p99 healthy, trip the breaker, probe again."""
    tracer = tracer or Tracer()
    warm = records[: (2 * len(records)) // 3]
    probes = records[len(warm) :][:n_probes] or warm[:n_probes]
    # The two ingests *after* the warm set are the ones injected to
    # fail (chunk index == log position), tripping the breaker.
    injector = FaultInjector(
        crash(chunk=len(warm)), crash(chunk=len(warm) + 1)
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-deg-") as root:
        service = ResolutionService(
            root,
            key_functions=[_name_key()],
            comparator=default_product_comparator(),
            classifier=ThresholdClassifier(THRESHOLD),
            refresh_blocker=_blocker(),
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1, base_delay=0.0),
                failure="skip",
                fault_injector=injector,
            ),
            overload=OverloadPolicy(
                max_pending_writes=64,
                failure_threshold=2,
                reset_timeout=600.0,
                shed="dead_letter",
            ),
            tracer=tracer,
            durable=False,
        )
        for record in warm:
            service.ingest(record)

        def _probe_pass():
            latencies = []
            for probe in probes:
                start = time.perf_counter()
                service.match(probe)
                latencies.append(time.perf_counter() - start)
            return latencies

        _probe_pass()  # warm-up: both measured passes hit warm caches
        healthy = _probe_pass()
        for record in records[len(warm) : len(warm) + 2]:
            service.ingest(record)
        if service.health()["status"] != "degraded":
            raise SystemExit("breaker never opened; degraded pass is moot")
        degraded = _probe_pass()
        generation = service.generation

    healthy_p99 = percentile(healthy, 99.0) * 1000.0
    degraded_p99 = percentile(degraded, 99.0) * 1000.0
    return {
        "probes": len(probes),
        "generation": generation,
        "healthy_p50_ms": round(percentile(healthy, 50.0) * 1000.0, 4),
        "healthy_p99_ms": round(healthy_p99, 4),
        "degraded_p50_ms": round(percentile(degraded, 50.0) * 1000.0, 4),
        "degraded_p99_ms": round(degraded_p99, 4),
        "degraded_over_healthy": round(
            degraded_p99 / healthy_p99 if healthy_p99 else 1.0, 3
        ),
    }


def _run_phases(records, n_probes: int):
    tracer = Tracer()
    recovery = _recovery_phase(records)
    reads = _degraded_read_phase(records, n_probes, tracer=tracer)
    counters = {
        name: counter.value
        for name, counter in tracer.metrics._counters.items()
        if name.startswith(("serve.", "supervision."))
    }
    return {"recovery": recovery, "reads": reads, "counters": counters}


def _sanity(results) -> None:
    recovery = results["recovery"]
    if recovery["deaths"] != 1 or recovery["restarts"] != 1:
        raise SystemExit(
            "kill fault did not produce exactly one death + restart: "
            f"{recovery}"
        )
    if recovery["exhausted"]:
        raise SystemExit("supervisor exhausted its restart budget")
    counters = results["counters"]
    if not counters.get("serve.breaker.opened"):
        raise SystemExit("degraded pass never opened the breaker")
    if not counters.get("serve.ingest_comparisons"):
        raise SystemExit(
            "warm ingests never compared a candidate — the blocking "
            "key stopped matching the corpus schemas"
        )


def _write_json(results, n_entities, n_sources, path=RESULT_PATH):
    payload = {
        "experiment": "E25 supervision: recovery and degraded reads",
        "corpus": {
            "n_entities": n_entities,
            "n_sources": n_sources,
            "categories": ["camera", "notebook"],
        },
        "threshold": THRESHOLD,
        "unix_time": round(time.time(), 1),
        "degraded_ratio_budget": DEGRADED_RATIO_BUDGET,
        "degraded_floor_ms": DEGRADED_FLOOR_MS,
        **results,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


HEADERS = ["phase", "metric", "value"]


def _rows(results):
    recovery, reads = results["recovery"], results["reads"]
    return [
        ["recovery", "clean run (s)", recovery["clean_seconds"]],
        ["recovery", "killed-worker run (s)", recovery["faulted_seconds"]],
        [
            "recovery",
            "overhead (s)",
            recovery["recovery_overhead_seconds"],
        ],
        ["reads", "healthy p99 (ms)", reads["healthy_p99_ms"]],
        ["reads", "degraded p99 (ms)", reads["degraded_p99_ms"]],
        ["reads", "degraded / healthy", reads["degraded_over_healthy"]],
    ]


NOTE = (
    "Expected shape: recovery overhead a fraction of the clean run "
    "(one re-executed shard tail, not a rerun); degraded read p99 "
    "within noise of healthy — the breaker sheds writes, the read "
    "path is untouched."
)


def bench_e25_supervision(benchmark, capsys):
    n_entities, n_sources = 30, 6
    records = _corpus(n_entities, n_sources)
    results = _run_phases(records, n_probes=60)
    _sanity(results)

    # The benchmark kernel: the degraded read path against a tripped
    # breaker — the latency the gate budgets.
    tracer = Tracer()
    with tempfile.TemporaryDirectory() as root:
        injector = FaultInjector(crash(chunk=100), crash(chunk=101))
        service = ResolutionService(
            root,
            key_functions=[_name_key()],
            comparator=default_product_comparator(),
            classifier=ThresholdClassifier(THRESHOLD),
            refresh_blocker=_blocker(),
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1, base_delay=0.0),
                failure="skip",
                fault_injector=injector,
            ),
            overload=OverloadPolicy(failure_threshold=2, reset_timeout=600.0),
            tracer=tracer,
            durable=False,
        )
        for record in records[:100]:
            service.ingest(record)
        for record in records[100:102]:
            service.ingest(record)
        assert service.health()["status"] == "degraded"
        probes = records[102:150]

        def kernel():
            found = 0
            for probe in probes:
                if service.match(probe) is not None:
                    found += 1
            return found

        benchmark(kernel)

    _write_json(results, n_entities, n_sources)
    emit(
        capsys,
        "E25: supervision — recovery time and degraded-mode reads "
        f"({n_entities} entities x {n_sources} sources)",
        HEADERS,
        _rows(results),
        note=NOTE,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-bench",
        action="store_true",
        help="table-only mode (this entry point never runs the "
        "pytest-benchmark kernel anyway)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus smoke run; does not overwrite "
        "BENCH_supervision.json",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="where to write machine-readable results "
        "(default: BENCH_supervision.json at the repo root; "
        "--quick writes nowhere unless --json is given)",
    )
    args = parser.parse_args(argv)

    n_entities, n_sources = (12, 4) if args.quick else (30, 6)
    n_probes = 24 if args.quick else 60
    records = _corpus(n_entities, n_sources)
    results = _run_phases(records, n_probes=n_probes)
    _sanity(results)

    path = args.json
    if path is None and not args.quick:
        path = RESULT_PATH
    if path is not None:
        _write_json(results, n_entities, n_sources, path)
        print(f"results -> {path}")

    print(
        render_table(
            HEADERS,
            _rows(results),
            title="E25: supervision — recovery and degraded reads "
            f"({n_entities} entities x {n_sources} sources, "
            f"{n_probes} probes)",
        )
    )
    print(NOTE)


if __name__ == "__main__":
    main()
