"""E21 — out-of-core linkage: throughput and memory under a budget.

The streaming path of :func:`repro.linkage.resolve` trades disk spills
for bounded resident memory while promising byte-identical output.
This experiment measures what that trade costs on the standard linkage
corpus, across three modes:

* **in-memory** — the unbounded reference path (E20's early-exit
  engine behind the scenes);
* **stream-roomy** — the streaming path under a budget large enough
  that nothing spills (pure bookkeeping overhead);
* **stream-tight** — the streaming path under a budget far below the
  working set, forcing heavy spill traffic on every stage.

Every mode must produce identical clusters and match pairs — asserted
here. Each streaming row also reports the peak tracked bytes and the
spill traffic, which is the point of the experiment: tight-budget runs
should show peak <= budget while in-memory tracking is unbounded.

Machine-readable results land in ``BENCH_outofcore.json`` at the repo
root so future PRs have a perf trajectory.

Run standalone (no pytest-benchmark kernel) with::

    PYTHONPATH=src python benchmarks/bench_e21_outofcore.py --no-bench
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus, render_table

from repro.linkage import (
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    resolve,
)
from repro.outofcore import MemoryBudget

THRESHOLD = 0.7
TIGHT_BUDGET = 48 * 1024
ROOMY_BUDGET = 1 << 30
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_outofcore.json"


def _corpus(n_entities: int, n_sources: int):
    dataset = linkage_corpus(n_entities=n_entities, n_sources=n_sources)
    return list(dataset.records())


def _stages():
    return (
        TokenBlocker(max_block_size=60),
        default_product_comparator(),
        ThresholdClassifier(THRESHOLD),
    )


def _run_modes(records):
    """Time in-memory vs streaming resolve over the same corpus."""
    blocker, comparator, classifier = _stages()
    results = []
    outputs = {}

    def record_mode(name, seconds, result, budget=None):
        results.append(
            {
                "mode": name,
                "n_pairs": result.n_candidates,
                "seconds": round(seconds, 4),
                "pairs_per_sec": round(result.n_candidates / seconds, 1)
                if seconds
                else float("inf"),
                "peak_tracked_bytes": budget.peak if budget else None,
                "spill_count": budget.spill_count if budget else 0,
                "spill_bytes": budget.spill_bytes if budget else 0,
            }
        )
        outputs[name] = (result.clusters, result.match_pairs)

    start = time.perf_counter()
    reference = resolve(records, blocker, comparator, classifier)
    record_mode("in-memory", time.perf_counter() - start, reference)

    for name, limit in (
        ("stream-roomy", ROOMY_BUDGET),
        ("stream-tight", TIGHT_BUDGET),
    ):
        with tempfile.TemporaryDirectory(prefix="repro-bench-spill-") as root:
            budget = MemoryBudget(limit)
            start = time.perf_counter()
            streamed = resolve(
                records,
                blocker,
                comparator,
                classifier,
                memory_budget=budget,
                spill_dir=root,
            )
            record_mode(
                name, time.perf_counter() - start, streamed, budget
            )

    baseline = results[0]["pairs_per_sec"]
    for row in results:
        row["relative_throughput"] = round(
            row["pairs_per_sec"] / baseline, 2
        )
    return results, outputs


def _rows(results):
    return [
        [
            row["mode"],
            row["n_pairs"],
            row["seconds"],
            row["pairs_per_sec"],
            row["relative_throughput"],
            row["peak_tracked_bytes"] or "-",
            row["spill_count"],
        ]
        for row in results
    ]


HEADERS = [
    "mode", "pairs", "seconds", "pairs/sec", "rel", "peak B", "spills"
]


def _check_outputs(outputs):
    reference = outputs["in-memory"]
    for name, found in outputs.items():
        if found != reference:
            raise SystemExit(f"{name} changed the linkage output")


def _write_json(results, n_entities, n_sources, path=RESULT_PATH):
    payload = {
        "experiment": "E21 out-of-core linkage",
        "corpus": {
            "n_entities": n_entities,
            "n_sources": n_sources,
            "categories": ["camera", "notebook"],
        },
        "threshold": THRESHOLD,
        "tight_budget_bytes": TIGHT_BUDGET,
        "unix_time": round(time.time(), 1),
        "modes": results,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


NOTE = (
    "Expected shape: stream-roomy within ~2x of in-memory (bounded "
    "caches, no spills); stream-tight slower but peak tracked bytes "
    "<= the budget with nonzero spill traffic. All modes byte-identical."
)


def bench_e21_outofcore(benchmark, capsys):
    n_entities, n_sources = 60, 12
    records = _corpus(n_entities, n_sources)
    results, outputs = _run_modes(records)
    _check_outputs(outputs)
    by_mode = {row["mode"]: row for row in results}
    assert by_mode["stream-tight"]["peak_tracked_bytes"] <= TIGHT_BUDGET
    assert by_mode["stream-tight"]["spill_count"] > 0
    assert by_mode["stream-roomy"]["spill_count"] == 0

    blocker, comparator, classifier = _stages()

    def kernel():
        with tempfile.TemporaryDirectory() as root:
            return resolve(
                records, blocker, comparator, classifier,
                memory_budget=MemoryBudget(TIGHT_BUDGET), spill_dir=root,
            )

    benchmark(kernel)
    _write_json(results, n_entities, n_sources)
    emit(
        capsys,
        "E21: out-of-core linkage — streamed vs in-memory "
        f"(tight budget {TIGHT_BUDGET} B)",
        HEADERS,
        _rows(results),
        note=NOTE,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-bench",
        action="store_true",
        help="table-only mode (this entry point never runs the "
        "pytest-benchmark kernel anyway)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus smoke run; does not overwrite "
        "BENCH_outofcore.json",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="where to write machine-readable results "
        "(default: BENCH_outofcore.json at the repo root; "
        "--quick writes nowhere unless --json is given)",
    )
    args = parser.parse_args(argv)

    n_entities, n_sources = (20, 6) if args.quick else (60, 12)
    records = _corpus(n_entities, n_sources)
    results, outputs = _run_modes(records)
    _check_outputs(outputs)

    path = args.json
    if path is None and not args.quick:
        path = RESULT_PATH
    if path is not None:
        _write_json(results, n_entities, n_sources, path)
        print(f"results -> {path}")

    print(
        render_table(
            HEADERS,
            _rows(results),
            title="E21: out-of-core linkage — streamed vs in-memory "
            f"({n_entities} entities x {n_sources} sources, tight "
            f"budget {TIGHT_BUDGET} B)",
        )
    )
    print(NOTE)


if __name__ == "__main__":
    main()
