"""E3 — Blocking trade-off curves: pairs completeness vs reduction ratio.

The classical blocking comparison: every scheme trades candidate-set
recall (PC) against comparison savings (RR). Key-equality blocking is
cheap but brittle; windows and overlapping schemes buy recall with
more candidates; schema-agnostic token blocking gets near-perfect PC
at the lowest RR (its cost is what meta-blocking, E4, removes).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus

from repro.linkage import (
    CanopyBlocker,
    CompositeBlocker,
    QGramBlocker,
    SortedNeighborhoodBlocker,
    StandardBlocker,
    SuffixArrayBlocker,
    TokenBlocker,
)
from repro.linkage.blocking import (
    NAME_ALIASES,
    first_token_key,
    normalized_attribute_key,
    soundex_key,
    token_set_key,
)
from repro.quality import blocking_quality


def name_key_blockers():
    name = normalized_attribute_key("name", aliases=NAME_ALIASES)
    brand = first_token_key("name", aliases=NAME_ALIASES)
    return [
        ("standard(brand)", StandardBlocker(brand)),
        (
            "standard(name-tokens)",
            StandardBlocker(token_set_key("name", aliases=NAME_ALIASES)),
        ),
        (
            "soundex(brand)",
            StandardBlocker(soundex_key("name", aliases=NAME_ALIASES)),
        ),
        ("snh(w=3)", SortedNeighborhoodBlocker(name, window=3)),
        ("snh(w=10)", SortedNeighborhoodBlocker(name, window=10)),
        ("snh(w=25)", SortedNeighborhoodBlocker(name, window=25)),
        ("canopy(0.3/0.6)", CanopyBlocker(loose=0.3, tight=0.6)),
        ("canopy(0.5/0.8)", CanopyBlocker(loose=0.5, tight=0.8)),
        ("qgram(q=4,max=40)", QGramBlocker(name, q=4, max_block_size=40)),
        ("suffix(min=5,max=40)", SuffixArrayBlocker(name, 5, 40)),
        ("token(max=60)", TokenBlocker(max_block_size=60)),
        (
            "composite(brand+soundex)",
            CompositeBlocker(
                [
                    StandardBlocker(brand),
                    StandardBlocker(
                        soundex_key("name", aliases=NAME_ALIASES)
                    ),
                ]
            ),
        ),
    ]


def bench_e03_blocking_tradeoff(benchmark, capsys):
    dataset = linkage_corpus(n_entities=70, n_sources=14, typo_rate=0.06)
    records = list(dataset.records())
    truth = dataset.ground_truth
    rows = []
    by_name = {}
    for name, blocker in name_key_blockers():
        pairs = blocker.block(records).candidate_pairs()
        quality = blocking_quality(pairs, truth, len(records))
        rows.append(
            [
                name,
                quality.pairs_completeness,
                quality.pairs_quality,
                quality.reduction_ratio,
                quality.candidate_pairs,
            ]
        )
        by_name[name] = quality
    benchmark(
        lambda: TokenBlocker(max_block_size=60).block(records)
    )
    emit(
        capsys,
        "E3: blocking PC / PQ / RR per scheme "
        f"({len(records)} records, {len(truth.matching_pairs())} true pairs)",
        ["blocker", "PC", "PQ", "RR", "candidates"],
        rows,
        note=(
            "Expected shape: token blocking PC→1 at lowest RR; window "
            "growth raises PC and lowers RR; composite ≥ its parts."
        ),
    )
    assert by_name["token(max=60)"].pairs_completeness > 0.95
    assert (
        by_name["snh(w=25)"].pairs_completeness
        >= by_name["snh(w=3)"].pairs_completeness
    )
    assert (
        by_name["composite(brand+soundex)"].pairs_completeness
        >= by_name["standard(brand)"].pairs_completeness
    )
