"""Gate: serving query p99 stays under the recorded budget.

``BENCH_service.json`` (written by ``bench_e23_serve.py``) records a
``p99_budget_ms`` — a generous multiple of the query p99 measured under
mixed load, floored so machine variance cannot trip it. This gate
re-runs a mixed workload (with a mid-load generation refresh, exactly
like the bench) and fails the build when:

1. the measured query p99 exceeds the recorded budget — the read path
   picked up qualitative cost (a lock held across batch work, a cache
   that stopped hitting, fsyncs on the query path);
2. the read cache never hit, or no generation swap happened — the
   workload stopped exercising the machinery the budget was set for;
3. any fault-free ingest was quarantined.

Run:  PYTHONPATH=src python benchmarks/check_serve_latency.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_e23_serve import _corpus, _run_phases, _sanity

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus (CI smoke size)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help="BENCH_service.json to read the budget from",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        raise SystemExit(
            f"no baseline at {args.baseline}; run "
            "benchmarks/bench_e23_serve.py first"
        )
    baseline = json.loads(args.baseline.read_text())
    budget_ms = baseline["p99_budget_ms"]

    n_entities, n_sources = (12, 4) if args.quick else (40, 8)
    n_ops = 120 if args.quick else 400
    results = _run_phases(_corpus(n_entities, n_sources), n_ops=n_ops)
    _sanity(results)

    p99_ms = results["mixed"]["query_p99_ms"]
    print(
        f"query p99 {p99_ms:.3f} ms vs budget {budget_ms:.1f} ms "
        f"(recorded p99 {baseline['mixed']['query_p99_ms']:.3f} ms); "
        f"cache hits {results['counters'].get('serve.cache_hits', 0):g}, "
        f"generation swaps "
        f"{results['counters'].get('serve.generation_swaps', 0):g}"
    )
    if p99_ms > budget_ms:
        raise SystemExit(
            f"serving latency regression: query p99 {p99_ms:.3f} ms "
            f"exceeds the recorded budget {budget_ms:.1f} ms"
        )
    print("serving latency gate: OK")


if __name__ == "__main__":
    main()
