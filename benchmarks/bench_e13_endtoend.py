"""E13 — End-to-end pipeline quality under the 4-V knobs.

The tutorial's framing: each big-data dimension stresses a different
pipeline stage. This bench sweeps one dial at a time from a common
baseline and reports per-stage quality — variety erodes schema
alignment, veracity erodes fusion, volume (more redundancy) *helps*
fusion.
"""

from __future__ import annotations

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro import BDIPipeline, FourVKnobs, PipelineConfig, build_corpus
from repro.synth import scaled

BASE = FourVKnobs(volume=0.05, variety=0.4, veracity=0.3, seed=3)
SWEEPS = {
    "variety": (0.1, 0.5, 0.9),
    "veracity": (0.0, 0.4, 0.8),
    "volume": (0.05, 0.12, 0.25),
}


@lru_cache(maxsize=None)
def run_knobs(dial: str, value: float):
    knobs = scaled(BASE, **{dial: value})
    corpus = build_corpus(knobs)
    pipeline = BDIPipeline(PipelineConfig(fusion="accuvote"))
    result = pipeline.run(corpus.dataset)
    report = pipeline.evaluate(corpus.dataset, result)
    return corpus, report


def bench_e13_end_to_end(benchmark, capsys):
    rows = []
    reports: dict[tuple[str, float], object] = {}
    for dial, values in SWEEPS.items():
        for value in values:
            corpus, report = run_knobs(dial, value)
            rows.append(
                [
                    dial,
                    value,
                    corpus.dataset.n_records,
                    report.schema_f1,
                    report.linkage_pairwise_f1,
                    report.fusion_accuracy,
                ]
            )
            reports[(dial, value)] = report
    small = build_corpus(scaled(BASE, volume=0.05))
    pipeline = BDIPipeline(PipelineConfig(fusion="accuvote"))
    benchmark(lambda: pipeline.run(small.dataset))
    emit(
        capsys,
        "E13: end-to-end pipeline quality, one 4-V dial at a time "
        f"(baseline volume={BASE.volume}, variety={BASE.variety}, "
        f"veracity={BASE.veracity})",
        ["dial", "value", "records", "schema F1", "linkage F1", "fusion acc"],
        rows,
        note=(
            "Expected shape: veracity ↑ erodes fusion accuracy; variety "
            "↑ erodes schema F1; linkage stays robust (identifier "
            "redundancy) across all dials."
        ),
    )
    assert (
        reports[("veracity", 0.0)].fusion_accuracy
        > reports[("veracity", 0.8)].fusion_accuracy
    ), "dirtier corpora must fuse worse"
    assert (
        reports[("variety", 0.1)].schema_f1
        > reports[("variety", 0.9)].schema_f1
    ), "more heterogeneity must erode schema alignment"
    for report in reports.values():
        assert report.linkage_pairwise_f1 > 0.8, "linkage must stay robust"
