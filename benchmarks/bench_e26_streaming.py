"""E26 — continuous ingestion: throughput, staleness, drift tracking.

The streaming runtime (`repro.streaming`) turns an unbounded record
stream into a continuously maintained entity projection: event-time
tumbling windows feed incremental linkage, and entities fuse under
either static source accuracies or exponentially-decayed accuracy
posteriors. This experiment measures the three things that matter for
that loop:

* **sustained throughput** — records/sec through windowed incremental
  linkage + per-window re-fusion on a drift-free stream;
* **staleness** — per-record ingest-to-visible lag (arrival at the
  resolver to the close of the record's window), p50/p99;
* **drift tracking** — the headline: on a stream whose strongest
  source flips from accuracy 0.9 to 0.2 mid-run, the decayed
  posteriors re-converge within a few windows while the undecayed
  lifetime average stays anchored to stale history. Reported as
  per-window accuracy-estimate RMSE curves against the planted
  schedule, with the acceptance bar that the decayed final-window
  error is **less than half** the undecayed baseline's.

``BENCH_streaming.json`` at the repo root records the numbers plus
gate budgets (a throughput floor, a staleness p99 budget, and the
decay-tracking ratio) that ``benchmarks/check_streaming_throughput.py``
re-measures against in CI.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_e26_streaming.py --no-bench
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, render_table

from repro.linkage import ThresholdClassifier, default_product_comparator
from repro.linkage.blocking import first_token_key
from repro.quality import estimation_rmse
from repro.serve import percentile
from repro.streaming import (
    CONFLICT_ATTRIBUTES,
    DriftStreamConfig,
    DriftWorld,
    StreamingResolver,
    WindowConfig,
    projection_accuracy,
)

THRESHOLD = 0.72
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"

#: Gate budgets: generous multiples of the measured values, floored so
#: machine variance cannot trip them; regressions of interest are
#: order-of-magnitude (an accidental re-fusion of every entity per
#: record, a full re-link per window).
THROUGHPUT_FLOOR_DIVISOR = 10.0
THROUGHPUT_FLOOR_MIN = 50.0
STALENESS_BUDGET_MULTIPLIER = 10.0
STALENESS_BUDGET_FLOOR_S = 1.0
#: The acceptance bar for drift tracking (a ratio, machine-independent).
DECAY_RATIO_BAR = 0.5

WINDOW = WindowConfig(size=2.0)


def _resolver(
    accuracies, decay=None, max_candidates=1000, prior_strength=8.0
) -> StreamingResolver:
    return StreamingResolver(
        key_functions=[first_token_key("name")],
        comparator=default_product_comparator(),
        classifier=ThresholdClassifier(THRESHOLD),
        source_accuracies=accuracies,
        window=WINDOW,
        decay=decay,
        prior_strength=prior_strength,
        tracked_attributes=CONFLICT_ATTRIBUTES,
        max_candidates_per_record=max_candidates,
    )


def _throughput_phase(quick: bool) -> dict:
    """Drift-free sustained ingestion: records/sec and staleness lags."""
    config = DriftStreamConfig(
        n_entities=10 if quick else 25,
        n_sources=4 if quick else 6,
        seed=7,
    )
    n_windows = 8 if quick else 20
    world = DriftWorld(config)
    # A continuous stream re-observes the same entities forever, so
    # uncapped blocking would grow per-record comparisons without
    # bound; the candidate cap is what makes the throughput *sustained*
    # rather than a function of how long the stream has been running.
    resolver = _resolver(world.accuracies_at(0.0), max_candidates=64)

    lags: list[float] = []
    start = time.perf_counter()
    results = resolver.run(world.stream(), max_windows=n_windows)
    seconds = time.perf_counter() - start
    for result in results:
        lags.extend(result.lags)

    records = sum(result.n_records for result in results)
    return {
        "windows": len(results),
        "records": records,
        "entities": resolver.n_entities,
        "seconds": round(seconds, 4),
        "records_per_sec": round(records / seconds, 1) if seconds else 0.0,
        "staleness_p50_s": round(percentile(lags, 50.0), 5),
        "staleness_p99_s": round(percentile(lags, 99.0), 5),
        "comparisons": sum(result.comparisons for result in results),
    }


def _drift_phase(quick: bool) -> dict:
    """The accuracy flip: decayed vs undecayed estimate-RMSE curves."""
    flip_at = 20.0 if quick else 40.0
    n_windows = 16 if quick else 30
    config = DriftStreamConfig(
        n_entities=10,
        n_sources=5,
        flip_at=flip_at,
        flip_source=0,
        flip_to=0.2,
        seed=11,
    )
    world = DriftWorld(config)
    flip_window = int(flip_at // WINDOW.size)

    curves: dict[str, list[float]] = {}
    finals: dict[str, dict] = {}
    for label, decay in (("decayed", 0.7), ("undecayed", 1.0)):
        # A weak prior: a drift-tracking deployment should let recent
        # evidence dominate quickly; the undecayed baseline's staleness
        # comes from its lifetime counts, not from the prior.
        resolver = _resolver(
            world.accuracies_at(0.0), decay=decay, prior_strength=4.0
        )
        curve: list[float] = []
        results = resolver.run(
            itertools.islice(world.stream(), 1_000_000),
            max_windows=n_windows,
        )
        for result in results:
            planted = world.accuracies_at(result.end - 1.0)
            curve.append(
                round(estimation_rmse(dict(result.accuracies), planted), 4)
            )
        curves[label] = curve
        planted_final = world.accuracies_at(results[-1].end - 1.0)
        finals[label] = {
            "decay": decay,
            "final_rmse": curve[-1],
            "flipped_source_estimate": round(
                resolver.estimates()["src00"], 4
            ),
            "monitor_events": [
                event.to_json() for event in resolver.events
            ],
            "projection_accuracy": round(
                projection_accuracy(
                    world,
                    resolver.snapshot()["entities"],
                    results[-1].end - 1.0,
                ),
                4,
            ),
        }
        finals[label]["planted_flipped_accuracy"] = planted_final["src00"]

    ratio = (
        finals["decayed"]["final_rmse"] / finals["undecayed"]["final_rmse"]
        if finals["undecayed"]["final_rmse"]
        else 0.0
    )
    return {
        "flip_window": flip_window,
        "windows": n_windows,
        "rmse_curves": curves,
        **{label: finals[label] for label in finals},
        "decay_rmse_ratio": round(ratio, 4),
    }


def _sanity(results) -> None:
    drift = results["drift"]
    if drift["decay_rmse_ratio"] >= DECAY_RATIO_BAR:
        raise SystemExit(
            "drift tracking failed: decayed final RMSE "
            f"{drift['decayed']['final_rmse']} is not under "
            f"{DECAY_RATIO_BAR} x undecayed "
            f"{drift['undecayed']['final_rmse']}"
        )
    if not any(
        event["subject"] == "src00"
        for event in drift["decayed"]["monitor_events"]
    ):
        raise SystemExit(
            "the accuracy-shift monitor never flagged the flipped source"
        )
    if results["throughput"]["records"] <= 0:
        raise SystemExit("throughput phase consumed no records")


def _budgets(results) -> dict:
    throughput = results["throughput"]
    return {
        "throughput_floor_records_per_sec": round(
            max(
                throughput["records_per_sec"] / THROUGHPUT_FLOOR_DIVISOR,
                THROUGHPUT_FLOOR_MIN,
            ),
            1,
        ),
        "staleness_p99_budget_s": round(
            max(
                STALENESS_BUDGET_MULTIPLIER * throughput["staleness_p99_s"],
                STALENESS_BUDGET_FLOOR_S,
            ),
            3,
        ),
        "decay_rmse_ratio_bar": DECAY_RATIO_BAR,
    }


def _write_json(results, path=RESULT_PATH):
    payload = {
        "experiment": "E26 continuous ingestion under drift",
        "threshold": THRESHOLD,
        "window_size": WINDOW.size,
        "unix_time": round(time.time(), 1),
        **_budgets(results),
        **results,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


HEADERS = ["phase", "windows", "records", "metric", "value"]


def _rows(results):
    throughput, drift = results["throughput"], results["drift"]
    return [
        [
            "sustained ingest",
            throughput["windows"],
            throughput["records"],
            "records/sec",
            throughput["records_per_sec"],
        ],
        [
            "staleness",
            throughput["windows"],
            throughput["records"],
            "p50 / p99 s",
            f"{throughput['staleness_p50_s']} / "
            f"{throughput['staleness_p99_s']}",
        ],
        [
            "flip (decay=0.7)",
            drift["windows"],
            "-",
            "final est RMSE",
            drift["decayed"]["final_rmse"],
        ],
        [
            "flip (decay=1.0)",
            drift["windows"],
            "-",
            "final est RMSE",
            drift["undecayed"]["final_rmse"],
        ],
        [
            "tracking ratio",
            "-",
            "-",
            "decayed/undecayed",
            drift["decay_rmse_ratio"],
        ],
    ]


NOTE = (
    "Expected shape: decayed final RMSE under half the undecayed "
    "baseline's (the undecayed lifetime average stays anchored to "
    "pre-flip history); the flipped source's decayed estimate near the "
    "planted 0.2; at least one accuracy-shift monitor event for src00."
)


def _run_all(quick: bool) -> dict:
    return {
        "throughput": _throughput_phase(quick),
        "drift": _drift_phase(quick),
    }


def bench_e26_streaming(benchmark, capsys):
    results = _run_all(quick=False)
    _sanity(results)

    # The benchmark kernel: windowed ingestion of a fixed drift-free
    # record batch through a fresh resolver.
    world = DriftWorld(DriftStreamConfig(n_entities=10, n_sources=4, seed=7))
    records = world.take(600)
    accuracies = world.accuracies_at(0.0)

    def kernel():
        resolver = _resolver(accuracies)
        return len(resolver.run(records))

    benchmark(kernel)

    _write_json(results)
    emit(
        capsys,
        "E26: continuous ingestion — throughput, staleness, drift "
        "tracking",
        HEADERS,
        _rows(results),
        note=NOTE,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-bench",
        action="store_true",
        help="table-only mode (this entry point never runs the "
        "pytest-benchmark kernel anyway)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small stream smoke run; does not overwrite "
        "BENCH_streaming.json",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="where to write machine-readable results "
        "(default: BENCH_streaming.json at the repo root; "
        "--quick writes nowhere unless --json is given)",
    )
    args = parser.parse_args(argv)

    results = _run_all(quick=args.quick)
    _sanity(results)

    path = args.json
    if path is None and not args.quick:
        path = RESULT_PATH
    if path is not None:
        _write_json(results, path)
        print(f"results -> {path}")

    print(
        render_table(
            HEADERS,
            _rows(results),
            title="E26: continuous ingestion — throughput, staleness, "
            f"drift tracking ({'quick' if args.quick else 'full'})",
        )
    )
    print(NOTE)


if __name__ == "__main__":
    main()
