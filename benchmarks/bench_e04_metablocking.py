"""E4 — Meta-blocking: pruning the blocking graph (Papadakis et al.).

Schema-agnostic token blocking reaches near-perfect PC through heavy
redundancy; meta-blocking keeps most of that PC while cutting
candidates by up to an order of magnitude. Rows compare unpruned token
blocking against the four pruning schemes under two edge-weighting
functions.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus

from repro.linkage import TokenBlocker, meta_block
from repro.quality import blocking_quality


def bench_e04_metablocking(benchmark, capsys):
    dataset = linkage_corpus(n_entities=70, n_sources=14, typo_rate=0.06)
    records = list(dataset.records())
    truth = dataset.ground_truth
    blocks = TokenBlocker(max_block_size=60).block(records)
    base_pairs = blocks.candidate_pairs()
    base = blocking_quality(base_pairs, truth, len(records))
    rows = [
        [
            "token (unpruned)",
            "-",
            base.pairs_completeness,
            base.candidate_pairs,
            1.0,
        ]
    ]
    results = {}
    for weight in ("cbs", "js", "arcs"):
        for pruning in ("wep", "cep", "wnp", "cnp"):
            kept = meta_block(
                blocks,
                weight=weight,
                pruning=pruning,
                cardinality_ratio=0.05,
            )
            quality = blocking_quality(kept, truth, len(records))
            savings = (
                len(kept) / base.candidate_pairs
                if base.candidate_pairs
                else 1.0
            )
            rows.append(
                [
                    pruning,
                    weight,
                    quality.pairs_completeness,
                    quality.candidate_pairs,
                    savings,
                ]
            )
            results[(weight, pruning)] = quality
    benchmark(lambda: meta_block(blocks, weight="cbs", pruning="wep"))
    emit(
        capsys,
        "E4: meta-blocking — PC retained vs candidates kept",
        ["pruning", "weights", "PC", "candidates", "kept-fraction"],
        rows,
        note=(
            "Expected shape: WEP/WNP keep PC within a few points of "
            "unpruned at ~5-20% of candidates; CEP prunes hardest."
        ),
    )
    wep = results[("cbs", "wep")]
    assert wep.pairs_completeness > base.pairs_completeness - 0.05
    assert wep.candidate_pairs < base.candidate_pairs * 0.5
    cep = results[("cbs", "cep")]
    assert cep.candidate_pairs < base.candidate_pairs * 0.1
