"""E5 — Skew-aware distributed ER (Kolb, Thor & Rahm, ICDE'12).

Blocking over a Zipf world yields Zipf-sized blocks; quadratic
comparison cost concentrates in the few head blocks. Naive
one-block-per-reducer hashing therefore stops scaling almost
immediately, while BlockSplit and PairRange stay near-linear. Rows
report simulated makespan, speedup, and skew per reducer count.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.dist import ClusterCostModel, partition_blocks
from repro.linkage import StandardBlocker
from repro.linkage.blocking import NAME_ALIASES, first_token_key
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)

REDUCERS = (1, 2, 4, 8, 16, 32, 64)


def skewed_blocks():
    world = generate_world(
        WorldConfig(
            categories=("camera",),
            entities_per_category=150,
            zipf_exponent=1.0,
            seed=3,
        )
    )
    dataset = generate_dataset(
        world,
        CorpusConfig(
            n_sources=14, min_source_size=10, max_source_size=250, seed=5
        ),
    )
    records = list(dataset.records())
    blocker = StandardBlocker(
        first_token_key("name", aliases=NAME_ALIASES)
    )
    return blocker.block(records)


def bench_e05_parallel_linkage(benchmark, capsys):
    blocks = skewed_blocks()
    model = ClusterCostModel(
        comparison_cost=1.0, task_overhead=2.0, startup=50.0
    )
    rows = []
    speedups: dict[tuple[str, int], float] = {}
    for strategy in ("naive", "blocksplit", "pairrange"):
        for n_reducers in REDUCERS:
            partition = partition_blocks(blocks, strategy, n_reducers)
            cost = model.evaluate(partition)
            rows.append(
                [
                    strategy,
                    n_reducers,
                    cost.makespan,
                    cost.speedup,
                    cost.skew,
                    cost.efficiency,
                ]
            )
            speedups[(strategy, n_reducers)] = cost.speedup
    benchmark(lambda: partition_blocks(blocks, "blocksplit", 32))
    emit(
        capsys,
        "E5: distributed ER — makespan/speedup/skew by partitioning "
        f"strategy ({blocks.n_comparisons} comparisons, "
        f"{len(blocks)} blocks)",
        ["strategy", "reducers", "makespan", "speedup", "skew", "efficiency"],
        rows,
        note=(
            "Expected shape (Kolb et al.): naive plateaus under skew; "
            "BlockSplit/PairRange near-linear to high reducer counts."
        ),
    )
    assert speedups[("naive", 64)] < 0.5 * speedups[("blocksplit", 64)]
    assert speedups[("blocksplit", 16)] > 10
    assert speedups[("pairrange", 16)] > 10
