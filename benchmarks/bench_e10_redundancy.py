"""E10 — Fusion accuracy vs number of sources and accuracy regime.

The tutorial's motivation for fusion-at-scale: redundancy helps —
accuracy climbs with the number of independent sources — but *how
fast* depends on the accuracy regime, and accuracy-aware fusion
extracts more from mixed-quality source pools than voting does.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.fusion import AccuVote, VotingFuser
from repro.quality import fusion_accuracy
from repro.synth import ClaimWorldConfig, generate_claims

REGIMES = {
    "high (0.8-0.95)": (0.8, 0.95),
    "mixed (0.5-0.95)": (0.5, 0.95),
    "low (0.4-0.7)": (0.4, 0.7),
}
SOURCE_COUNTS = (1, 3, 5, 9, 15)


def run(regime: tuple[float, float], n_sources: int, seed: int):
    planted = generate_claims(
        ClaimWorldConfig(
            n_items=250,
            n_independent=n_sources,
            accuracy_range=regime,
            n_false_values=4,
            seed=seed,
        )
    )
    vote = fusion_accuracy(
        VotingFuser().fuse(planted.claims), planted.truth
    )
    accu = fusion_accuracy(
        AccuVote(n_false_values=4).fuse(planted.claims), planted.truth
    )
    return vote, accu


def bench_e10_redundancy(benchmark, capsys):
    rows = []
    curves: dict[str, list[float]] = {}
    for regime_name, regime in REGIMES.items():
        for n_sources in SOURCE_COUNTS:
            votes, accus = [], []
            for seed in (41, 42, 43):
                vote, accu = run(regime, n_sources, seed)
                votes.append(vote)
                accus.append(accu)
            vote = sum(votes) / len(votes)
            accu = sum(accus) / len(accus)
            rows.append([regime_name, n_sources, vote, accu])
            curves.setdefault(regime_name, []).append(accu)
    benchmark(
        lambda: AccuVote(n_false_values=4).fuse(
            generate_claims(
                ClaimWorldConfig(
                    n_items=250, n_independent=9, seed=41
                )
            ).claims
        )
    )
    emit(
        capsys,
        "E10: fusion accuracy vs #independent sources per accuracy regime",
        ["regime", "sources", "vote", "accuvote"],
        rows,
        note=(
            "Expected shape: accuracy climbs with redundancy in every "
            "regime; the climb is steepest from 1→5 sources; accuvote ≥ "
            "vote throughout."
        ),
    )
    for regime_name, curve in curves.items():
        assert curve[-1] > curve[0], f"redundancy must help in {regime_name}"
    # accuvote ≥ vote on average.
    mean_vote = sum(row[2] for row in rows) / len(rows)
    mean_accu = sum(row[3] for row in rows) / len(rows)
    assert mean_accu >= mean_vote - 0.01
    # Diminishing returns: first doubling gains more than the last.
    low_curve = curves["low (0.4-0.7)"]
    assert (low_curve[2] - low_curve[0]) > (low_curve[4] - low_curve[2])
