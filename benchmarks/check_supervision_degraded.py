"""Gate: degraded-mode read p99 stays within 3x of healthy serving.

Degraded mode's contract is that reads are untaxed: when the serve
circuit breaker opens, writes are shed but queries keep answering from
the last published generation through the same probe-and-cache path.
``BENCH_service.json`` (written by ``bench_e23_serve.py``) records the
healthy mixed-load query p99; this gate re-runs the degraded read
workload from ``bench_e25_supervision.py`` and fails the build when
the degraded p99 exceeds ``3 x`` that healthy baseline (floored, so
machine variance on sub-millisecond latencies cannot trip it) — i.e.
when degraded mode started charging reads for the breaker, the shed
path, or a lock held across write shedding.

Run:  PYTHONPATH=src python benchmarks/check_supervision_degraded.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_e25_supervision import (
    DEGRADED_FLOOR_MS,
    DEGRADED_RATIO_BUDGET,
    _corpus,
    _degraded_read_phase,
)

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus (CI smoke size)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help="BENCH_service.json to read the healthy p99 from",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        raise SystemExit(
            f"no baseline at {args.baseline}; run "
            "benchmarks/bench_e23_serve.py first"
        )
    baseline = json.loads(args.baseline.read_text())
    healthy_p99_ms = baseline["mixed"]["query_p99_ms"]
    budget_ms = max(
        DEGRADED_RATIO_BUDGET * healthy_p99_ms, DEGRADED_FLOOR_MS
    )

    n_entities, n_sources = (12, 4) if args.quick else (30, 6)
    n_probes = 24 if args.quick else 60
    reads = _degraded_read_phase(
        _corpus(n_entities, n_sources), n_probes=n_probes
    )

    degraded_p99_ms = reads["degraded_p99_ms"]
    print(
        f"degraded read p99 {degraded_p99_ms:.3f} ms vs budget "
        f"{budget_ms:.1f} ms ({DEGRADED_RATIO_BUDGET:g}x healthy p99 "
        f"{healthy_p99_ms:.3f} ms, floor {DEGRADED_FLOOR_MS:.0f} ms); "
        f"healthy-in-run p99 {reads['healthy_p99_ms']:.3f} ms, "
        f"ratio {reads['degraded_over_healthy']:g}"
    )
    if degraded_p99_ms > budget_ms:
        raise SystemExit(
            "degraded-mode read regression: p99 "
            f"{degraded_p99_ms:.3f} ms exceeds {budget_ms:.1f} ms "
            f"({DEGRADED_RATIO_BUDGET:g}x the healthy serving baseline)"
        )
    print("degraded-mode read latency gate: OK")


if __name__ == "__main__":
    main()
