"""E6 — Incremental vs batch record linkage (Gruenheid et al., VLDB'14).

As update batches arrive, incremental linkage compares each new record
only against index-sharing records, so its per-batch cost stays flat;
batch re-linkage re-pays the whole corpus every time. Quality is
identical by construction (same candidate generation, deterministic
classifier, order-insensitive union-find).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus

from repro.linkage import (
    IncrementalLinker,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    resolve,
)
from repro.quality import pairwise_cluster_quality
from repro.text import normalize_value, word_tokens


def all_value_tokens(record):
    tokens = set()
    for value in record.attributes.values():
        tokens.update(
            t for t in word_tokens(normalize_value(value)) if len(t) >= 2
        )
    return tokens


def bench_e06_incremental_linkage(benchmark, capsys):
    dataset = linkage_corpus(n_entities=60, n_sources=12)
    records = list(dataset.records())
    truth = dataset.ground_truth
    batch_size = max(1, len(records) // 8)
    batches = [
        records[start : start + batch_size]
        for start in range(0, len(records), batch_size)
    ]

    linker = IncrementalLinker(
        [all_value_tokens],
        default_product_comparator(),
        ThresholdClassifier(0.72),
        max_candidates_per_record=10_000,
    )
    rows = []
    total_seen = 0
    incremental_costs = []
    batch_costs = []
    for index, batch in enumerate(batches):
        stats = linker.add_batch(batch)
        total_seen += len(batch)
        # Batch baseline cost: candidates of a full re-run over all
        # records seen so far.
        full = resolve(
            records[:total_seen],
            TokenBlocker(),
            default_product_comparator(),
            ThresholdClassifier(0.72),
        )
        incremental_costs.append(stats.comparisons)
        batch_costs.append(full.n_candidates)
        rows.append(
            [
                index,
                total_seen,
                stats.comparisons,
                full.n_candidates,
                full.n_candidates / max(1, stats.comparisons),
            ]
        )
    incremental_quality = pairwise_cluster_quality(linker.clusters(), truth)
    full = resolve(
        records,
        TokenBlocker(),
        default_product_comparator(),
        ThresholdClassifier(0.72),
    )
    batch_quality = pairwise_cluster_quality(full.clusters, truth)
    benchmark(
        lambda: IncrementalLinker(
            [all_value_tokens],
            default_product_comparator(),
            ThresholdClassifier(0.72),
        ).add_batch(records[:60])
    )
    emit(
        capsys,
        "E6: incremental vs batch linkage cost per update batch",
        ["batch", "corpus size", "incr comparisons", "batch comparisons", "speedup"],
        rows,
        note=(
            f"Final F1 — incremental {incremental_quality.f1:.3f}, "
            f"batch {batch_quality.f1:.3f} (identical by construction). "
            "Expected shape: speedup grows with corpus size."
        ),
    )
    assert incremental_quality.f1 == batch_quality.f1
    # Later batches: batch re-run must cost several times incremental.
    assert rows[-1][4] > 3.0
    # Speedup grows as the corpus outgrows the batch.
    assert rows[-1][4] > rows[1][4]
