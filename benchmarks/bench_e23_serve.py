"""E23 — serving: ingest throughput and query latency under mixed load.

The serving layer (`repro.serve`) answers ``match``/``get`` queries
from a durable entity store while records keep arriving. This
experiment measures what that costs on the standard linkage corpus:

* **bulk ingest** — records/sec through the durable path (fsynced log
  append + incremental linking + per-entity online fusion);
* **mixed traffic** — the synthetic workload driver issues a seeded
  ingest/match/get mix; query p50/p99 (ms) are reported with a full
  batch refresh (new generation + atomic swap) fired mid-load, so the
  percentiles include reads taken across a generation swap;
* **read path** — the pytest-benchmark kernel times a pure query
  workload against the warm, cached service.

``BENCH_service.json`` at the repo root records the numbers plus a
``p99_budget_ms`` (a generous multiple of the measured p99) that
``benchmarks/check_serve_latency.py`` gates against in CI.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_e23_serve.py --no-bench
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus, render_table

from repro.linkage import (
    StandardBlocker,
    ThresholdClassifier,
    default_product_comparator,
)
from repro.linkage.blocking import first_token_key
from repro.obs import Tracer
from repro.serve import (
    ResolutionService,
    TrafficConfig,
    percentile,
    run_traffic,
)

THRESHOLD = 0.72
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
#: The gate budget is this multiple of the measured mixed-load p99,
#: floored — machines differ, regressions of interest are order-of-
#: magnitude (a lock held across batch work, an uncached read path).
BUDGET_MULTIPLIER = 10.0
BUDGET_FLOOR_MS = 50.0


def _corpus(n_entities: int, n_sources: int):
    dataset = linkage_corpus(n_entities=n_entities, n_sources=n_sources)
    return list(dataset.records())


def _service(root, tracer=None) -> ResolutionService:
    return ResolutionService(
        root,
        key_functions=[first_token_key("name")],
        comparator=default_product_comparator(),
        classifier=ThresholdClassifier(THRESHOLD),
        refresh_blocker=StandardBlocker(first_token_key("name")),
        tracer=tracer,
    )


def _run_phases(records, n_ops: int, seed: int = 11):
    """Bulk ingest, then mixed traffic with a mid-load refresh."""
    tracer = Tracer()
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as root:
        service = _service(root, tracer=tracer)

        bulk = records[: len(records) // 2]
        start = time.perf_counter()
        for record in bulk:
            service.ingest(record)
        bulk_seconds = time.perf_counter() - start

        pool = records[len(records) // 2 :]
        half = TrafficConfig(
            n_ops=n_ops // 2, ingest_fraction=0.3, get_fraction=0.35,
            seed=seed,
        )
        first = run_traffic(service, pool[: len(pool) // 2], half)
        # The background refresh: batch re-resolution into a new
        # generation, swapped atomically while traffic continues.
        refresh = service.refresh_async()
        second = run_traffic(
            service,
            pool[len(pool) // 2 :],
            TrafficConfig(
                n_ops=n_ops - half.n_ops, ingest_fraction=0.3,
                get_fraction=0.35, seed=seed + 1,
            ),
        )
        refresh.join(timeout=600)
        generation = service.generation

        queries = first.query_latencies() + second.query_latencies()
        ingest_latencies = (
            first.latencies["ingest"] + second.latencies["ingest"]
        )
        counters = {
            name: counter.value
            for name, counter in tracer.metrics._counters.items()
            if name.startswith("serve.")
        }
    mixed_ingested = first.ingested + second.ingested
    return {
        "bulk": {
            "records": len(bulk),
            "seconds": round(bulk_seconds, 4),
            "records_per_sec": round(len(bulk) / bulk_seconds, 1)
            if bulk_seconds
            else float("inf"),
        },
        "mixed": {
            "ops": first.n_ops + second.n_ops,
            "ingested": mixed_ingested,
            "queries": len(queries),
            "matches_found": first.matches_found + second.matches_found,
            "query_p50_ms": round(percentile(queries, 50.0) * 1000.0, 4),
            "query_p99_ms": round(percentile(queries, 99.0) * 1000.0, 4),
            "ingest_p50_ms": round(
                percentile(ingest_latencies, 50.0) * 1000.0, 4
            ),
            "ingest_p99_ms": round(
                percentile(ingest_latencies, 99.0) * 1000.0, 4
            ),
        },
        "generation": generation,
        "counters": counters,
    }


def _sanity(results) -> None:
    counters = results["counters"]
    if results["generation"] < 1 or not counters.get(
        "serve.generation_swaps"
    ):
        raise SystemExit("mid-load refresh never swapped a generation")
    if not counters.get("serve.cache_hits"):
        raise SystemExit("read path never hit the generation cache")
    if counters.get("serve.quarantined_ingests"):
        raise SystemExit("fault-free run quarantined ingests")


def _budget_ms(results) -> float:
    return round(
        max(
            BUDGET_MULTIPLIER * results["mixed"]["query_p99_ms"],
            BUDGET_FLOOR_MS,
        ),
        1,
    )


def _write_json(results, n_entities, n_sources, path=RESULT_PATH):
    payload = {
        "experiment": "E23 serving under mixed load",
        "corpus": {
            "n_entities": n_entities,
            "n_sources": n_sources,
            "categories": ["camera", "notebook"],
        },
        "threshold": THRESHOLD,
        "unix_time": round(time.time(), 1),
        "p99_budget_ms": _budget_ms(results),
        **results,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


HEADERS = ["phase", "ops", "p50 ms", "p99 ms", "throughput"]


def _rows(results):
    bulk, mixed = results["bulk"], results["mixed"]
    return [
        [
            "bulk ingest",
            bulk["records"],
            "-",
            "-",
            f"{bulk['records_per_sec']}/s",
        ],
        [
            "mixed ingest",
            mixed["ingested"],
            mixed["ingest_p50_ms"],
            mixed["ingest_p99_ms"],
            "-",
        ],
        [
            "mixed query",
            mixed["queries"],
            mixed["query_p50_ms"],
            mixed["query_p99_ms"],
            "-",
        ],
    ]


NOTE = (
    "Expected shape: queries orders of magnitude cheaper than ingests "
    "(probe + cache vs fsync + link + fuse); one generation swap "
    "mid-load with nonzero cache hits; p99 well under the recorded "
    "budget."
)


def bench_e23_serve(benchmark, capsys):
    n_entities, n_sources = 40, 8
    records = _corpus(n_entities, n_sources)
    results = _run_phases(records, n_ops=400)
    _sanity(results)

    # The benchmark kernel: the pure read path against a warm service.
    with tempfile.TemporaryDirectory() as root:
        service = _service(root)
        for record in records[:200]:
            service.ingest(record)
        probes = records[200:260]

        def kernel():
            found = 0
            for probe in probes:
                if service.match(probe) is not None:
                    found += 1
            return found

        benchmark(kernel)

    _write_json(results, n_entities, n_sources)
    emit(
        capsys,
        "E23: serving — ingest throughput and query latency "
        f"({n_entities} entities x {n_sources} sources, mixed load)",
        HEADERS,
        _rows(results),
        note=NOTE,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-bench",
        action="store_true",
        help="table-only mode (this entry point never runs the "
        "pytest-benchmark kernel anyway)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus smoke run; does not overwrite "
        "BENCH_service.json",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="where to write machine-readable results "
        "(default: BENCH_service.json at the repo root; "
        "--quick writes nowhere unless --json is given)",
    )
    args = parser.parse_args(argv)

    n_entities, n_sources = (12, 4) if args.quick else (40, 8)
    n_ops = 120 if args.quick else 400
    records = _corpus(n_entities, n_sources)
    results = _run_phases(records, n_ops=n_ops)
    _sanity(results)

    path = args.json
    if path is None and not args.quick:
        path = RESULT_PATH
    if path is not None:
        _write_json(results, n_entities, n_sources, path)
        print(f"results -> {path}")

    print(
        render_table(
            HEADERS,
            _rows(results),
            title="E23: serving — ingest throughput and query latency "
            f"({n_entities} entities x {n_sources} sources, "
            f"{n_ops} mixed ops)",
        )
    )
    print(NOTE)


if __name__ == "__main__":
    main()
