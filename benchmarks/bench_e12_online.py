"""E12 — Online data fusion (Liu, Dong, Ooi & Srivastava, VLDB'11).

Probing sources best-first while maintaining Bayesian posteriors lets
most items terminate long before all sources are read: expected
correctness approaches the batch answer within a handful of probes,
and the fraction of terminated items climbs steeply.
"""

from __future__ import annotations

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.fusion import AccuVote, OnlineFusion
from repro.quality import fusion_accuracy
from repro.synth import ClaimWorldConfig, generate_claims


@lru_cache(maxsize=None)
def world():
    return generate_claims(
        ClaimWorldConfig(
            n_items=250,
            n_independent=14,
            accuracy_range=(0.5, 0.95),
            n_false_values=5,
            seed=61,
        )
    )


def bench_e12_online_fusion(benchmark, capsys):
    planted = world()
    online = OnlineFusion(planted.accuracies, n_false_values=5)
    result, trace = online.run(planted.claims)
    batch = AccuVote(
        n_false_values=5, known_accuracies=planted.accuracies
    ).fuse(planted.claims)
    batch_accuracy = fusion_accuracy(batch, planted.truth)

    rows = []
    for probed, answers in enumerate(trace.answers, start=1):
        accuracy = sum(
            1
            for item, value in answers.items()
            if planted.truth.get(item) == value
        ) / len(planted.truth)
        rows.append(
            [
                probed,
                trace.probe_order[probed - 1],
                accuracy,
                trace.expected_correctness[probed - 1],
                trace.terminated[probed - 1],
            ]
        )
    benchmark(lambda: OnlineFusion(
        planted.accuracies, n_false_values=5
    ).run(planted.claims))
    emit(
        capsys,
        "E12: online fusion — anytime accuracy and termination vs probes "
        f"(batch accuracy with all 14 sources: {batch_accuracy:.3f})",
        ["probed", "source", "true accuracy", "expected correctness", "terminated"],
        rows,
        note=(
            "Expected shape (Liu et al.): accuracy within a few points "
            "of batch after ~half the probes; termination fraction "
            "rises monotonically."
        ),
    )
    final_accuracy = rows[-1][2]
    assert abs(final_accuracy - batch_accuracy) < 0.02
    halfway_accuracy = rows[len(rows) // 2][2]
    assert halfway_accuracy > batch_accuracy - 0.05
    assert list(trace.terminated) == sorted(trace.terminated)
    assert trace.terminated[-1] > 0.9
