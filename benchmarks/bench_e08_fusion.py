"""E8 — Fusion under copying (Dong, Berti-Équille & Srivastava, VLDB'09).

The headline fusion result: a cabal of copiers replicating a
low-accuracy parent flips majority voting and even accuracy-aware
fusion (AccuVote *trusts* the self-consistent cabal), while AccuCopy's
copy discounting stays accurate. Copier fraction sweeps from 0 to ~60%
of sources.
"""

from __future__ import annotations

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.fusion import AccuCopy, AccuVote, TruthFinder, VotingFuser
from repro.quality import fusion_accuracy
from repro.synth import ClaimWorldConfig, generate_claims

COPIER_COUNTS = (0, 3, 6, 9, 12)
N_INDEPENDENT = 8


@lru_cache(maxsize=None)
def world(n_copiers: int):
    return generate_claims(
        ClaimWorldConfig(
            n_items=300,
            n_independent=N_INDEPENDENT,
            n_copiers=n_copiers,
            accuracy_range=(0.45, 0.75),
            copy_rate=0.95,
            n_false_values=3,
            parent_pool=1,
            parent_accuracy=0.35,
            seed=11,
        )
    )


def fusers():
    return [
        VotingFuser(),
        TruthFinder(),
        AccuVote(n_false_values=3),
        AccuCopy(n_false_values=3),
    ]


def bench_e08_fusion_methods(benchmark, capsys):
    rows = []
    by_method: dict[str, list[float]] = {}
    for n_copiers in COPIER_COUNTS:
        planted = world(n_copiers)
        row = [f"{n_copiers}/{N_INDEPENDENT + n_copiers}"]
        for fuser in fusers():
            accuracy = fusion_accuracy(
                fuser.fuse(planted.claims), planted.truth
            )
            row.append(accuracy)
            by_method.setdefault(fuser.name, []).append(accuracy)
        rows.append(row)
    planted = world(9)
    benchmark(lambda: AccuCopy(n_false_values=3).fuse(planted.claims))
    emit(
        capsys,
        "E8: fusion accuracy vs copier share "
        "(copiers replicate a 0.35-accuracy parent at copy rate 0.95)",
        ["copiers/sources", "vote", "truthfinder", "accuvote", "accucopy"],
        rows,
        note=(
            "Expected shape (Dong et al.): without copiers all "
            "accuracy-aware methods ≥ vote; with copiers, copy-unaware "
            "methods collapse while AccuCopy stays high."
        ),
    )
    assert by_method["accucopy"][0] >= by_method["vote"][0] - 0.02
    # Under heavy copying AccuCopy dominates by a wide margin.
    assert by_method["accucopy"][-1] > by_method["vote"][-1] + 0.2
    assert by_method["accucopy"][-1] > by_method["accuvote"][-1] + 0.2
    assert min(by_method["accucopy"]) > 0.8
    # Copy-unaware methods degrade monotonically-ish with copier share.
    assert by_method["vote"][-1] < by_method["vote"][0] - 0.2
