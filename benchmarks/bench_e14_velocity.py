"""E14 — Velocity: incremental maintenance vs full recomputation.

Successive corpus snapshots churn sources and pages (the re-crawl
statistics the velocity discussion reports); the maintainer folds each
snapshot in at a cost proportional to the *churn*, while the baseline
re-pays the whole corpus. Rows report survival statistics and the
comparison counts of both paths per snapshot.
"""

from __future__ import annotations

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.linkage import (
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
)
from repro.quality import pairwise_cluster_quality
from repro.synth import (
    CorpusConfig,
    EvolvingWorldConfig,
    WorldConfig,
    evolve_world,
    generate_world,
)
from repro.text import normalize_value, word_tokens
from repro.velocity import (
    SnapshotConfig,
    SnapshotMaintainer,
    diff_datasets,
    render_snapshots,
)


def all_value_tokens(record):
    tokens = set()
    for value in record.attributes.values():
        tokens.update(
            t for t in word_tokens(normalize_value(value)) if len(t) >= 2
        )
    return tokens


@lru_cache(maxsize=None)
def snapshots():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=50, seed=5)
    )
    worlds = evolve_world(
        world,
        EvolvingWorldConfig(
            n_snapshots=6, change_rate=0.15, death_rate=0.08, seed=6
        ),
    )
    return tuple(
        render_snapshots(
            worlds,
            CorpusConfig(
                n_sources=10, min_source_size=12, max_source_size=35, seed=7
            ),
            SnapshotConfig(
                source_death_rate=0.12,
                page_death_rate=0.15,
                page_birth_rate=0.1,
                seed=8,
            ),
        )
    )


def bench_e14_velocity(benchmark, capsys):
    snaps = snapshots()
    maintainer = SnapshotMaintainer(
        [all_value_tokens],
        default_product_comparator(),
        ThresholdClassifier(0.72),
    )
    rows = []
    speedups = []
    for index, snapshot in enumerate(snaps):
        cost = maintainer.process_snapshot(snapshot)
        full_clusters, full_comparisons = SnapshotMaintainer.full_recompute(
            snapshot,
            TokenBlocker(),
            default_product_comparator(),
            ThresholdClassifier(0.72),
        )
        survival = 1.0
        if index > 0:
            survival = diff_datasets(snaps[index - 1], snapshot).record_survival
        incremental_f1 = pairwise_cluster_quality(
            maintainer.clusters(), snapshot.ground_truth
        ).f1
        full_f1 = pairwise_cluster_quality(
            full_clusters, snapshot.ground_truth
        ).f1
        speedup = full_comparisons / max(1, cost.comparisons)
        rows.append(
            [
                index,
                snapshot.n_records,
                survival,
                cost.new_records,
                cost.comparisons,
                full_comparisons,
                speedup,
                incremental_f1,
                full_f1,
            ]
        )
        if index > 0:
            speedups.append(speedup)
    benchmark(lambda: diff_datasets(snaps[0], snaps[1]))
    emit(
        capsys,
        "E14: incremental maintenance vs full recompute across snapshots",
        [
            "snap", "records", "survival", "new", "incr cmp", "full cmp",
            "speedup", "incr F1", "full F1",
        ],
        rows,
        note=(
            "Expected shape: after the initial build, incremental cost "
            "tracks churn (orders below full recompute) at comparable F1. "
            "Survival < 1 echoes the re-crawl statistics (pages die and "
            "change constantly)."
        ),
    )
    assert min(speedups) > 1.5, "incremental must beat recompute after build"
    total_incremental = sum(row[4] for row in rows[1:])
    total_full = sum(row[5] for row in rows[1:])
    assert total_full / total_incremental > 2.5
    for row in rows:
        assert abs(row[7] - row[8]) < 0.12, "quality must track recompute"
    assert all(row[2] < 1.0 for row in rows[1:]), "churn must be visible"
