"""E18 (extension) — Active learning for linkage: labels where they count.

Humans in the loop are the tutorial's recipe for precision without
losing recall; the question is where to spend the label budget.
Uncertainty sampling (query pairs nearest the decision boundary, with
a little exploration) reaches near-optimal F1 with a fraction of the
labels random sampling needs — and stays stable under crowd-style
label noise.
"""

from __future__ import annotations

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus

from repro.linkage import (
    ActiveThresholdLearner,
    TokenBlocker,
    default_product_comparator,
    noisy_oracle,
)
from repro.quality import pair_quality

ROUNDS = 6
BATCH = 10
SEEDS = (2, 3, 4)


@lru_cache(maxsize=None)
def vectors_and_truth():
    dataset = linkage_corpus(n_entities=50, n_sources=10, seed=7)
    records = list(dataset.records())
    by_id = {record.record_id: record for record in records}
    comparator = default_product_comparator()
    candidates = TokenBlocker(max_block_size=50).block(records)
    vectors = tuple(
        comparator.compare(by_id[a], by_id[b])
        for a, b in (
            sorted(pair)
            for pair in sorted(candidates.candidate_pairs(), key=sorted)
        )
    )
    return vectors, dataset.ground_truth


def curve(strategy: str, noise: float):
    vectors, truth = vectors_and_truth()
    oracle = noisy_oracle(truth.are_match, noise_rate=noise, seed=1)
    averaged = [0.0] * ROUNDS
    for seed in SEEDS:
        learner = ActiveThresholdLearner(
            list(vectors), batch_size=BATCH, strategy=strategy, seed=seed
        )
        for round_index in range(ROUNDS):
            learner.run_round(oracle)
            quality = pair_quality(learner.predict_matches(), truth)
            averaged[round_index] += quality.f1 / len(SEEDS)
    return averaged


def bench_e18_active_learning(benchmark, capsys):
    rows = []
    curves = {}
    for noise in (0.0, 0.1):
        for strategy in ("uncertainty", "random"):
            f1_curve = curve(strategy, noise)
            curves[(strategy, noise)] = f1_curve
            rows.append(
                [f"{strategy} @ noise {noise}"]
                + [f1_curve[i] for i in range(ROUNDS)]
            )
    vectors, truth = vectors_and_truth()
    oracle = noisy_oracle(truth.are_match, noise_rate=0.05, seed=1)

    def kernel():
        learner = ActiveThresholdLearner(list(vectors), batch_size=BATCH)
        learner.run_round(oracle)

    benchmark(kernel)
    emit(
        capsys,
        "E18 (extension): pair-F1 vs labeling rounds "
        f"({BATCH} oracle queries per round, {len(vectors)} candidates)",
        ["strategy"] + [f"{(i + 1) * BATCH} labels" for i in range(ROUNDS)],
        rows,
        note=(
            "Expected shape: uncertainty sampling dominates random at "
            "small budgets and stays stable under 10% label noise."
        ),
    )
    for noise in (0.0, 0.1):
        uncertainty = curves[("uncertainty", noise)]
        rand = curves[("random", noise)]
        assert uncertainty[1] > rand[1] - 0.02, (
            f"uncertainty must lead early at noise {noise}"
        )
        assert uncertainty[-1] > 0.85, "must converge to good F1"
