"""E7 — Temporal linkage with decay (Li, Dong, Maurino & Srivastava).

On streams of evolving entities, a static matcher splits entities whose
mutable attributes changed and merges namesakes; decayed matching
forgives old disagreements and discounts old agreements. The F1 gap
widens with the evolution rate; at rate 0 decay behaves like static
(the built-in ablation).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.linkage import TemporalField, TemporalMatcher, link_temporal_stream
from repro.quality import pairwise_cluster_quality
from repro.synth import TemporalStreamConfig, generate_temporal_dataset
from repro.text import exact_similarity, jaro_winkler_similarity

EVOLUTION_RATES = (0.0, 0.15, 0.3, 0.45, 0.6)


def matcher_fields():
    return [
        TemporalField(
            "name", jaro_winkler_similarity, weight=2.0, mutable=False
        ),
        TemporalField("affiliation", exact_similarity, weight=1.0),
        TemporalField("city", exact_similarity, weight=1.0),
        TemporalField("topic", exact_similarity, weight=1.0),
    ]


def run_rate(rate: float):
    dataset = generate_temporal_dataset(
        TemporalStreamConfig(
            n_entities=40,
            n_epochs=5,
            evolution_rate=rate,
            namesake_fraction=0.2,
            missing_rate=0.1,
            seed=9,
        )
    )
    records = list(dataset.records())
    truth = dataset.ground_truth
    static = TemporalMatcher(
        matcher_fields(), 0.0, 0.0, match_threshold=0.8
    )
    decayed = TemporalMatcher(
        matcher_fields(),
        disagreement_decay=0.8,
        agreement_decay=0.05,
        match_threshold=0.8,
    )
    static_f1 = pairwise_cluster_quality(
        link_temporal_stream(records, static), truth
    ).f1
    decayed_f1 = pairwise_cluster_quality(
        link_temporal_stream(records, decayed), truth
    ).f1
    return static_f1, decayed_f1


def bench_e07_temporal_linkage(benchmark, capsys):
    rows = []
    gaps = []
    for rate in EVOLUTION_RATES:
        static_f1, decayed_f1 = run_rate(rate)
        rows.append([rate, static_f1, decayed_f1, decayed_f1 - static_f1])
        gaps.append(decayed_f1 - static_f1)
    dataset = generate_temporal_dataset(
        TemporalStreamConfig(n_entities=40, evolution_rate=0.3, seed=9)
    )
    records = list(dataset.records())
    decayed = TemporalMatcher(
        matcher_fields(), disagreement_decay=0.8, agreement_decay=0.05
    )
    benchmark(lambda: link_temporal_stream(records, decayed))
    emit(
        capsys,
        "E7: static vs decayed temporal matching across evolution rates",
        ["evolution rate", "F1 static", "F1 decay", "gap"],
        rows,
        note=(
            "Expected shape (Li et al.): decay ≥ static everywhere, gap "
            "widening with the evolution rate; ~equal at rate 0."
        ),
    )
    assert abs(gaps[0]) < 0.08, "at zero evolution decay ≈ static"
    assert all(gap > -0.03 for gap in gaps)
    assert max(gaps[2:]) > gaps[0] + 0.05, "gap must widen with evolution"
