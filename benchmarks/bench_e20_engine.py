"""E20 — comparison-engine throughput: naive vs prepared vs early-exit
vs multiprocess.

Candidate-pair comparison is the quadratic hot path of the linkage
stack (the tutorial's "volume" axis). This experiment measures
pairs/second on the standard linkage corpus for each engine layer:

* **naive** — the seed path: ``RecordComparator.compare`` per pair,
  re-normalizing and re-tokenizing record values on every pair;
* **prepared** — records normalized/tokenized/parsed once
  (``prepare_records``), pairs scored with ``compare_prepared``;
* **early-exit** — prepared records plus staged threshold-bounded
  scoring (``ParallelComparisonEngine`` serial ``match_pairs``);
* **process-N** — the multiprocess backend with N workers (its win
  requires real cores; on a single-CPU host it only pays IPC).

Every mode must produce the identical match-pair set — asserted here.
Machine-readable results land in ``BENCH_engine.json`` at the repo
root so future PRs have a perf trajectory.

Run standalone (no pytest-benchmark kernel) with::

    PYTHONPATH=src python benchmarks/bench_e20_engine.py --no-bench
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus, render_table

from repro.linkage import (
    ParallelComparisonEngine,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    prepare_records,
)

THRESHOLD = 0.7
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _corpus_pairs(n_entities: int, n_sources: int):
    dataset = linkage_corpus(n_entities=n_entities, n_sources=n_sources)
    records = list(dataset.records())
    by_id = {record.record_id: record for record in records}
    candidates = TokenBlocker(max_block_size=60).block(
        records
    ).candidate_pairs()
    pairs = [
        (ids[0], ids[1])
        for ids in (sorted(pair) for pair in sorted(candidates, key=sorted))
    ]
    return records, by_id, pairs


def _run_modes(records, by_id, pairs, process_workers=(2, 4)):
    """Time every engine layer over the same pair list.

    Returns ``(results, match_sets)`` where results is a list of dicts
    (one per mode) and all match sets are asserted identical upstream.
    """
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(THRESHOLD)
    results = []
    match_sets = {}

    def record_mode(name, seconds, matches):
        results.append(
            {
                "mode": name,
                "n_pairs": len(pairs),
                "seconds": round(seconds, 4),
                "pairs_per_sec": round(len(pairs) / seconds, 1)
                if seconds
                else float("inf"),
            }
        )
        match_sets[name] = matches

    # naive: the seed comparator path, one full compare per pair.
    start = time.perf_counter()
    matches = {
        frozenset(pair)
        for pair in pairs
        if comparator.compare(by_id[pair[0]], by_id[pair[1]]).score
        >= THRESHOLD
    }
    record_mode("naive", time.perf_counter() - start, matches)

    # prepared: per-record work hoisted out of the pair loop
    # (preparation cost included in the timing — it is part of the mode).
    start = time.perf_counter()
    prepared = prepare_records(comparator, records)
    matches = {
        frozenset(pair)
        for pair in pairs
        if comparator.compare_prepared(
            prepared[pair[0]], prepared[pair[1]]
        ).score
        >= THRESHOLD
    }
    record_mode("prepared", time.perf_counter() - start, matches)

    # early-exit: prepared + staged threshold-bounded scoring.
    engine = ParallelComparisonEngine(comparator, execution="serial")
    start = time.perf_counter()
    run = engine.match_pairs(by_id, pairs, classifier)
    record_mode("early-exit", time.perf_counter() - start, run.match_pairs)

    for n_workers in process_workers:
        engine = ParallelComparisonEngine(
            comparator, execution="process", n_workers=n_workers
        )
        start = time.perf_counter()
        run = engine.match_pairs(by_id, pairs, classifier)
        record_mode(
            f"process-{n_workers}",
            time.perf_counter() - start,
            run.match_pairs,
        )

    baseline = results[0]["pairs_per_sec"]
    for row in results:
        row["speedup_vs_naive"] = round(row["pairs_per_sec"] / baseline, 2)
    return results, match_sets


def _rows(results):
    return [
        [
            row["mode"],
            row["n_pairs"],
            row["seconds"],
            row["pairs_per_sec"],
            row["speedup_vs_naive"],
        ]
        for row in results
    ]


HEADERS = ["mode", "pairs", "seconds", "pairs/sec", "speedup"]


def _write_json(results, n_entities, n_sources, path=RESULT_PATH):
    payload = {
        "experiment": "E20 comparison engine throughput",
        "corpus": {
            "n_entities": n_entities,
            "n_sources": n_sources,
            "categories": ["camera", "notebook"],
        },
        "threshold": THRESHOLD,
        "unix_time": round(time.time(), 1),
        "modes": results,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_e20_engine(benchmark, capsys):
    n_entities, n_sources = 60, 12
    records, by_id, pairs = _corpus_pairs(n_entities, n_sources)
    results, match_sets = _run_modes(records, by_id, pairs)
    reference = match_sets["naive"]
    assert all(found == reference for found in match_sets.values())
    engine = ParallelComparisonEngine(default_product_comparator())
    classifier = ThresholdClassifier(THRESHOLD)
    benchmark(lambda: engine.match_pairs(by_id, pairs, classifier))
    _write_json(results, n_entities, n_sources)
    emit(
        capsys,
        "E20: comparison engine — pairs/sec by layer "
        f"({len(pairs)} candidate pairs, threshold {THRESHOLD})",
        HEADERS,
        _rows(results),
        note=(
            "Expected shape: prepared > naive; prepared+early-exit >= 3x "
            "naive; process-N wins only with >= N real cores (pure IPC "
            "overhead on a single-CPU host)."
        ),
    )
    by_mode = {row["mode"]: row for row in results}
    assert by_mode["prepared"]["pairs_per_sec"] > by_mode["naive"]["pairs_per_sec"]
    assert by_mode["early-exit"]["speedup_vs_naive"] >= 3.0
    # The process backend carries the early-exit scorer into its
    # workers, so even IPC-bound it must beat the prepared-serial path.
    assert (
        by_mode["process-4"]["pairs_per_sec"]
        > by_mode["prepared"]["pairs_per_sec"]
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-bench",
        action="store_true",
        help="table-only mode: skip nothing but the pytest-benchmark "
        "kernel (this entry point never runs it anyway)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus smoke run; does not overwrite BENCH_engine.json",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="where to write machine-readable results "
        "(default: BENCH_engine.json at the repo root; "
        "--quick writes nowhere unless --json is given)",
    )
    args = parser.parse_args(argv)
    n_entities, n_sources = (20, 6) if args.quick else (60, 12)
    records, by_id, pairs = _corpus_pairs(n_entities, n_sources)
    results, match_sets = _run_modes(records, by_id, pairs)
    reference = next(iter(match_sets.values()))
    if not all(found == reference for found in match_sets.values()):
        raise SystemExit("engine modes disagree on the match-pair set")
    print(
        render_table(
            HEADERS,
            _rows(results),
            title=(
                "E20: comparison engine — pairs/sec by layer "
                f"({len(pairs)} candidate pairs, threshold {THRESHOLD})"
            ),
            float_digits=3,
        )
    )
    if args.json is not None:
        print(f"wrote {_write_json(results, n_entities, n_sources, args.json)}")
    elif not args.quick:
        print(f"wrote {_write_json(results, n_entities, n_sources)}")


if __name__ == "__main__":
    main()
