"""E11 — "Less is more" source selection (Dong, Saha & Srivastava).

Integrating sources in greedy marginal-gain order front-loads almost
all the accuracy; with per-source integration costs, cumulative profit
(gain − cost) peaks well before all sources are integrated and
declines afterwards — integrating everything is strictly worse than
stopping. Random and coverage orderings trail the greedy curve.
"""

from __future__ import annotations

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.fusion import VotingFuser
from repro.selection import (
    GreedySourceSelector,
    baseline_order,
    true_accuracy,
)
from repro.synth import ClaimWorldConfig, generate_claims

CHECKPOINTS = (1, 2, 4, 6, 9, 12, 16, 20)
COST_WEIGHT = 0.012


@lru_cache(maxsize=None)
def world():
    return generate_claims(
        ClaimWorldConfig(
            n_items=200,
            n_independent=20,
            accuracy_range=(0.35, 0.95),
            coverage=0.7,
            n_false_values=4,
            seed=51,
        )
    )


def accuracy_at(order, k):
    planted = world()
    return true_accuracy(
        planted.claims, list(order[:k]), VotingFuser(), planted.truth
    )


def bench_e11_source_selection(benchmark, capsys):
    planted = world()
    selector = GreedySourceSelector(VotingFuser(), cost_weight=COST_WEIGHT)
    selection = selector.select(planted.claims)
    greedy_order = list(selection.order)
    random_order = baseline_order(planted.claims, "random", seed=7)
    coverage_order = baseline_order(planted.claims, "coverage")

    profits = selection.cumulative_profit()
    rows = []
    for k in CHECKPOINTS:
        rows.append(
            [
                k,
                accuracy_at(greedy_order, k),
                accuracy_at(random_order, k),
                accuracy_at(coverage_order, k),
                profits[k - 1],
            ]
        )
    benchmark(
        lambda: GreedySourceSelector(
            VotingFuser(), max_sources=6
        ).select(planted.claims)
    )
    emit(
        capsys,
        "E11: fusion accuracy and profit vs sources integrated "
        "(20 sources, long-tail accuracy, integration cost "
        f"{COST_WEIGHT}/source)",
        ["k", "greedy acc", "random acc", "coverage acc", "greedy profit"],
        rows,
        note=(
            "Expected shape (less is more): greedy front-loads accuracy; "
            "profit peaks before k=20 and declines; greedy ≥ random at "
            "small k."
        ),
    )
    # Greedy beats random early.
    assert rows[2][1] > rows[2][2], "greedy must beat random at k=4"
    # Profit peaks strictly before integrating everything.
    peak = max(range(len(profits)), key=profits.__getitem__)
    assert peak < len(profits) - 1, "profit must peak before all sources"
    # Accuracy saturates: last 8 sources add almost nothing for greedy.
    assert accuracy_at(greedy_order, 20) - accuracy_at(greedy_order, 12) < 0.05
