"""E22 — columnar batch kernels vs the scalar engine layers.

The columnar representation (:mod:`repro.columnar`) packs prepared
records into per-field numpy columns once and scores whole pair chunks
per kernel call, reserving the scalar similarity path for the residual
pairs that survive the vectorized early-exit mask. This experiment
measures pairs/second on the standard linkage corpus for each layer:

* **prepared** — records normalized/tokenized once, pairs scored
  scalar with ``compare_prepared`` (full vectors, no early exit);
* **early-exit** — prepared plus staged threshold-bounded scoring
  (serial ``ParallelComparisonEngine.match_pairs``) — the fastest
  scalar mode and the baseline the ≥2x columnar gate compares against;
* **columnar** — ``representation="columnar"`` through the same
  engine entry point (block build included in the timing);
* **columnar-kernels** — ``build_block`` + ``match_id_pairs`` called
  directly, skipping engine chunking/validation overhead.

Every mode must produce the identical match-pair set — asserted here.
Machine-readable results land in ``BENCH_columnar.json`` at the repo
root; ``check_columnar_speedup.py`` gates on them in CI.

Run standalone (no pytest-benchmark kernel) with::

    PYTHONPATH=src python benchmarks/bench_e22_columnar.py --no-bench
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, render_table
from bench_e20_engine import THRESHOLD, _corpus_pairs

from repro.columnar import build_block, match_id_pairs
from repro.linkage import (
    ParallelComparisonEngine,
    ThresholdClassifier,
    default_product_comparator,
    prepare_records,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"


def _run_modes(records, by_id, pairs, repeats: int = 1):
    """Time every layer over the same pair list, best-of-N.

    Returns ``(results, match_sets)``; all match sets are asserted
    identical upstream.
    """
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(THRESHOLD)
    results = []
    match_sets = {}

    def record_mode(name, seconds, matches):
        results.append(
            {
                "mode": name,
                "n_pairs": len(pairs),
                "seconds": round(seconds, 4),
                "pairs_per_sec": round(len(pairs) / seconds, 1)
                if seconds
                else float("inf"),
            }
        )
        match_sets[name] = matches

    def best_of(run):
        best, out = float("inf"), None
        for __ in range(repeats):
            start = time.perf_counter()
            out = run()
            best = min(best, time.perf_counter() - start)
        return best, out

    # prepared: scalar full-vector scoring (preparation cost included —
    # it is part of the mode, as in E20).
    def run_prepared():
        prepared = prepare_records(comparator, records)
        return {
            frozenset(pair)
            for pair in pairs
            if comparator.compare_prepared(
                prepared[pair[0]], prepared[pair[1]]
            ).score
            >= THRESHOLD
        }

    seconds, matches = best_of(run_prepared)
    record_mode("prepared", seconds, matches)

    # early-exit: the fastest scalar mode, and the gate baseline.
    def run_early_exit():
        engine = ParallelComparisonEngine(comparator, execution="serial")
        return engine.match_pairs(by_id, pairs, classifier).match_pairs

    seconds, matches = best_of(run_early_exit)
    record_mode("early-exit", seconds, matches)

    # columnar: same engine entry point, block build in the timing.
    def run_columnar():
        engine = ParallelComparisonEngine(
            comparator, execution="serial", representation="columnar"
        )
        return engine.match_pairs(by_id, pairs, classifier).match_pairs

    seconds, matches = best_of(run_columnar)
    record_mode("columnar", seconds, matches)

    # columnar-kernels: block + kernels without engine plumbing.
    def run_kernels():
        block = build_block(comparator, records)
        matched, __, __stats = match_id_pairs(block, pairs, THRESHOLD)
        return {frozenset((left, right)) for left, right, __s in matched}

    seconds, matches = best_of(run_kernels)
    record_mode("columnar-kernels", seconds, matches)

    baseline = results[0]["pairs_per_sec"]
    early_exit = results[1]["pairs_per_sec"]
    for row in results:
        row["speedup_vs_prepared"] = round(
            row["pairs_per_sec"] / baseline, 2
        )
        row["speedup_vs_early_exit"] = round(
            row["pairs_per_sec"] / early_exit, 2
        )
    return results, match_sets


def _rows(results):
    return [
        [
            row["mode"],
            row["n_pairs"],
            row["seconds"],
            row["pairs_per_sec"],
            row["speedup_vs_early_exit"],
        ]
        for row in results
    ]


HEADERS = ["mode", "pairs", "seconds", "pairs/sec", "vs early-exit"]


def _write_json(results, n_entities, n_sources, path=RESULT_PATH):
    payload = {
        "experiment": "E22 columnar batch-kernel throughput",
        "corpus": {
            "n_entities": n_entities,
            "n_sources": n_sources,
            "categories": ["camera", "notebook"],
        },
        "threshold": THRESHOLD,
        "unix_time": round(time.time(), 1),
        "modes": results,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_e22_columnar(benchmark, capsys):
    n_entities, n_sources = 60, 12
    records, by_id, pairs = _corpus_pairs(n_entities, n_sources)
    results, match_sets = _run_modes(records, by_id, pairs)
    reference = match_sets["prepared"]
    assert all(found == reference for found in match_sets.values())
    engine = ParallelComparisonEngine(
        default_product_comparator(), representation="columnar"
    )
    classifier = ThresholdClassifier(THRESHOLD)
    benchmark(lambda: engine.match_pairs(by_id, pairs, classifier))
    _write_json(results, n_entities, n_sources)
    emit(
        capsys,
        "E22: columnar kernels — pairs/sec by layer "
        f"({len(pairs)} candidate pairs, threshold {THRESHOLD})",
        HEADERS,
        _rows(results),
        note=(
            "Expected shape: columnar >= 2x early-exit (the CI gate); "
            "columnar-kernels slightly above columnar (no engine "
            "chunking); block build is included in both columnar "
            "timings."
        ),
    )
    by_mode = {row["mode"]: row for row in results}
    assert by_mode["columnar"]["speedup_vs_early_exit"] >= 2.0
    assert by_mode["columnar"]["speedup_vs_prepared"] >= 2.0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-bench",
        action="store_true",
        help="table-only mode: skip nothing but the pytest-benchmark "
        "kernel (this entry point never runs it anyway)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus smoke run; does not overwrite "
        "BENCH_columnar.json",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="where to write machine-readable results "
        "(default: BENCH_columnar.json at the repo root; "
        "--quick writes nowhere unless --json is given)",
    )
    args = parser.parse_args(argv)
    n_entities, n_sources = (20, 6) if args.quick else (60, 12)
    records, by_id, pairs = _corpus_pairs(n_entities, n_sources)
    results, match_sets = _run_modes(records, by_id, pairs, args.repeats)
    reference = next(iter(match_sets.values()))
    if not all(found == reference for found in match_sets.values()):
        raise SystemExit("columnar modes disagree on the match-pair set")
    print(
        render_table(
            HEADERS,
            _rows(results),
            title=(
                "E22: columnar kernels — pairs/sec by layer "
                f"({len(pairs)} candidate pairs, threshold {THRESHOLD})"
            ),
            float_digits=3,
        )
    )
    if args.json is not None:
        print(f"wrote {_write_json(results, n_entities, n_sources, args.json)}")
    elif not args.quick:
        print(f"wrote {_write_json(results, n_entities, n_sources)}")


if __name__ == "__main__":
    main()
