"""E1 — Probabilistic mediated schema vs deterministic vs no alignment.

Reproduces the shape of Das Sarma, Dong & Halevy (SIGMOD'08): on
keyword queries over heterogeneous sources, the probabilistic mediated
schema's F-measure dominates a single deterministic mediated schema,
which in turn dominates querying unaligned source schemas.
"""

from __future__ import annotations

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.schema import (
    answer_with_pschema,
    answer_with_schema,
    answer_without_alignment,
    build_mediated_schema,
    build_probabilistic_mediated_schema,
    cell_quality,
    true_answer_cells,
)
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)

QUERIES = {
    "camera": ("screen size", "weight", "color", "resolution", "sensor type"),
    "notebook": ("screen size", "weight", "memory", "storage", "cpu speed"),
    "headphone": ("impedance", "form factor", "weight", "connectivity"),
}


@lru_cache(maxsize=None)
def corpus(category: str, dialect_noise: float):
    world = generate_world(
        WorldConfig(categories=(category,), entities_per_category=50, seed=2)
    )
    return generate_dataset(
        world,
        CorpusConfig(
            n_sources=12,
            dialect_noise=dialect_noise,
            typo_rate=0.0,
            error_rate=0.0,
            seed=4,
        ),
    )


def run_domain(category: str, dialect_noise: float):
    dataset = corpus(category, dialect_noise)
    deterministic = build_mediated_schema(dataset, threshold=0.62)
    probabilistic = build_probabilistic_mediated_schema(
        dataset,
        certain_threshold=0.8,
        uncertain_threshold=0.42,
        max_schemas=8,
    )
    sums = {"none": [0.0, 0.0, 0.0], "det": [0.0, 0.0, 0.0], "prob": [0.0, 0.0, 0.0]}
    queries = QUERIES[category]
    for query in queries:
        actual = true_answer_cells(dataset, query)
        baseline = cell_quality(
            answer_without_alignment(dataset, query), actual
        )
        det = cell_quality(
            answer_with_schema(dataset, deterministic, query), actual
        )
        prob = cell_quality(
            set(
                answer_with_pschema(
                    dataset, probabilistic, query, min_probability=0.25
                )
            ),
            actual,
        )
        for key, quality in (
            ("none", baseline), ("det", det), ("prob", prob)
        ):
            sums[key][0] += quality.precision
            sums[key][1] += quality.recall
            sums[key][2] += quality.f1
    n = len(queries)
    return {key: [v / n for v in vals] for key, vals in sums.items()}


def bench_e01_probabilistic_mediated_schema(benchmark, capsys):
    rows = []
    for category in QUERIES:
        for noise in (0.5, 0.8):
            averaged = run_domain(category, noise)
            rows.append(
                [
                    category,
                    noise,
                    averaged["none"][2],
                    averaged["det"][2],
                    averaged["prob"][2],
                ]
            )
    dataset = corpus("camera", 0.8)
    benchmark(
        lambda: build_probabilistic_mediated_schema(
            dataset, certain_threshold=0.8, uncertain_threshold=0.42
        )
    )
    emit(
        capsys,
        "E1: query-answering F1 — no alignment vs deterministic vs "
        "probabilistic mediated schema",
        ["domain", "dialect-noise", "F1 none", "F1 mediated", "F1 p-mediated"],
        rows,
        note=(
            "Expected shape (Das Sarma et al.): p-mediated ≥ mediated ≥ "
            "no alignment, gap widening with heterogeneity."
        ),
    )
    averages = [sum(r[i] for r in rows) / len(rows) for i in (2, 3, 4)]
    assert averages[1] >= averages[0], "mediated schema must beat raw sources"
    assert averages[2] >= averages[1] - 0.02, (
        "p-mediated must not lose to deterministic"
    )
