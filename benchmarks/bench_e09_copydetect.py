"""E9 — Copy-detection precision/recall vs copy rate (Dong et al.).

Copy detection keys on shared *false* values; the more faithfully a
copier replicates its parent, the more shared false values betray it.
With limited overlap (100 items) and fairly accurate sources, recall
climbs from ~0 at copy rate 0.1 to 1.0 by copy rate ~0.6. The
"direct" precision dip at high rates is copier-sibling pairs — truly
dependent through their shared parent — which the sibling-aware metric
credits.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit

from repro.fusion import CopyDetector, VotingFuser
from repro.quality import copy_detection_quality
from repro.synth import ClaimWorldConfig, generate_claims

COPY_RATES = (0.1, 0.25, 0.4, 0.6, 0.8, 0.95)
SEEDS = (13, 14, 15)
DETECTOR = dict(copy_rate=0.6, n_false_values=8)  # blind to the true rate


def run_rate(copy_rate: float, seed: int):
    planted = generate_claims(
        ClaimWorldConfig(
            n_items=100,
            n_independent=8,
            n_copiers=6,
            accuracy_range=(0.7, 0.9),
            copy_rate=copy_rate,
            n_false_values=8,
            seed=seed,
        )
    )
    truths = VotingFuser().fuse(planted.claims).chosen
    accuracies = {s: 0.8 for s in planted.claims.sources()}
    detected = CopyDetector(**DETECTOR).detect(
        planted.claims, truths, accuracies
    )
    direct = copy_detection_quality(detected, planted.copier_of)
    with_siblings = copy_detection_quality(
        detected, planted.copier_of, include_siblings=True
    )
    return planted, direct, with_siblings


def bench_e09_copy_detection(benchmark, capsys):
    rows = []
    recalls = []
    for copy_rate in COPY_RATES:
        direct_p = direct_r = sib_p = sib_r = 0.0
        for seed in SEEDS:
            __, direct, with_siblings = run_rate(copy_rate, seed)
            direct_p += direct.precision
            direct_r += direct.recall
            sib_p += with_siblings.precision
            sib_r += with_siblings.recall
        n = len(SEEDS)
        rows.append(
            [copy_rate, direct_p / n, direct_r / n, sib_p / n, sib_r / n]
        )
        recalls.append(direct_r / n)
    planted, __, __ = run_rate(0.8, 13)
    truths = VotingFuser().fuse(planted.claims).chosen
    accuracies = {s: 0.8 for s in planted.claims.sources()}
    detector = CopyDetector(**DETECTOR)
    benchmark(lambda: detector.detect(planted.claims, truths, accuracies))
    emit(
        capsys,
        "E9: copy detection P/R vs planted copy rate "
        "(6 copiers among 14 sources, 100 shared items, detector blind "
        "to the true rate; 'sibling' = copiers sharing a parent count as "
        "truly dependent)",
        ["copy rate", "P direct", "R direct", "P w/siblings", "R w/siblings"],
        rows,
        note=(
            "Expected shape (Dong et al.): recall rises with copy rate — "
            "faithful copiers leak more shared false values; near-zero "
            "recall for barely-copying sources is correct behaviour."
        ),
    )
    assert recalls[0] < 0.2, "barely-copying sources are (rightly) invisible"
    assert recalls[-1] > 0.9, "high copy rates must be detected"
    assert recalls == sorted(recalls), "recall must rise with copy rate"
