"""Gate: out-of-core stays under budget; in-memory keeps its speedup.

The streaming layer (`repro.outofcore`) threads an optional memory
budget through blocking, pair dedup, and the comparison engine. Three
promises guard it:

1. **In-memory is untouched.** With ``memory_budget=None`` resolve
   takes the exact pre-streaming code path, so the early-exit speedup
   over naive scoring recorded in ``BENCH_engine.json`` must survive.
   As in ``check_recovery_overhead.py``, the gate compares the
   machine-independent *ratio* and passes while the measured speedup
   stays above half the recorded one.
2. **The budget binds.** A streamed run under a budget far below the
   working set must finish with peak tracked bytes <= the budget and
   nonzero spill traffic — and produce byte-identical clusters, match
   pairs, and scored edges.
3. **Bookkeeping is bounded.** Under a roomy budget (no spills) the
   streaming path pays only cache bookkeeping; its throughput must
   stay above a configurable fraction of the in-memory run.

Run:  PYTHONPATH=src python benchmarks/check_outofcore_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_e20_engine import THRESHOLD, _corpus_pairs

from repro.linkage import (
    ParallelComparisonEngine,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    resolve,
)
from repro.outofcore import MemoryBudget

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
TIGHT_BUDGET = 48 * 1024
ROOMY_BUDGET = 1 << 30


def measure_inmemory_speedup(by_id, pairs, repeats: int) -> dict:
    """Early-exit (no budget) vs naive, best-of-N."""
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(THRESHOLD)

    naive_best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        naive_matches = {
            frozenset(pair)
            for pair in pairs
            if comparator.compare(by_id[pair[0]], by_id[pair[1]]).score
            >= THRESHOLD
        }
        naive_best = min(naive_best, time.perf_counter() - start)

    plain_best = float("inf")
    for __ in range(repeats):
        engine = ParallelComparisonEngine(comparator)
        start = time.perf_counter()
        run = engine.match_pairs(by_id, pairs, classifier)
        plain_best = min(plain_best, time.perf_counter() - start)
    if run.match_pairs != naive_matches:
        raise SystemExit("engine disagrees with naive on match pairs")

    return {
        "naive_best": naive_best,
        "plain_best": plain_best,
        "measured_speedup": round(naive_best / plain_best, 2),
    }


def measure_streaming(records, repeats: int) -> dict:
    """In-memory vs streamed resolve (roomy and tight), best-of-N."""
    blocker = TokenBlocker(max_block_size=60)
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(THRESHOLD)

    inmemory_best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        reference = resolve(records, blocker, comparator, classifier)
        inmemory_best = min(inmemory_best, time.perf_counter() - start)

    timings = {}
    budgets = {}
    for name, limit in (
        ("roomy", ROOMY_BUDGET),
        ("tight", TIGHT_BUDGET),
    ):
        best = float("inf")
        for __ in range(repeats):
            with tempfile.TemporaryDirectory() as root:
                budget = MemoryBudget(limit)
                start = time.perf_counter()
                streamed = resolve(
                    records, blocker, comparator, classifier,
                    memory_budget=budget, spill_dir=root,
                )
                best = min(best, time.perf_counter() - start)
        if streamed.clusters != reference.clusters:
            raise SystemExit(f"streamed ({name}) changed the clusters")
        if streamed.match_pairs != reference.match_pairs:
            raise SystemExit(f"streamed ({name}) changed the match pairs")
        if streamed.scored_edges != reference.scored_edges:
            raise SystemExit(f"streamed ({name}) changed the scored edges")
        if streamed.n_candidates != reference.n_candidates:
            raise SystemExit(f"streamed ({name}) changed the pair count")
        timings[name] = best
        budgets[name] = budget

    return {
        "inmemory_best": inmemory_best,
        "roomy_best": timings["roomy"],
        "tight_best": timings["tight"],
        "roomy_ratio": round(inmemory_best / timings["roomy"], 2),
        "tight_ratio": round(inmemory_best / timings["tight"], 2),
        "tight_peak": budgets["tight"].peak,
        "tight_spills": budgets["tight"].spill_count,
        "roomy_spills": budgets["roomy"].spill_count,
    }


def baseline_speedup(path: Path = BASELINE_PATH) -> float:
    payload = json.loads(path.read_text())
    by_mode = {row["mode"]: row for row in payload["modes"]}
    return by_mode["early-exit"]["speedup_vs_naive"]


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus (CI smoke); all gates are corpus-robust",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.5,
        help="in-memory speedup must exceed this fraction of baseline",
    )
    parser.add_argument(
        "--min-roomy-throughput",
        type=float,
        default=0.4,
        help="no-spill streaming must keep this fraction of in-memory "
        "throughput",
    )
    args = parser.parse_args(argv)

    n_entities, n_sources = (20, 6) if args.quick else (60, 12)
    records, by_id, pairs = _corpus_pairs(n_entities, n_sources)

    inmemory = measure_inmemory_speedup(by_id, pairs, args.repeats)
    recorded = baseline_speedup()
    floor = args.min_ratio * recorded
    print("Out-of-core overhead gate")
    print(f"  corpus:               {n_entities} entities x {n_sources}"
          f" sources -> {len(pairs)} pairs")
    print(f"  [in-memory] speedup:  {inmemory['measured_speedup']}x"
          f" (baseline {recorded}x, required > {floor:.2f}x)")
    if inmemory["measured_speedup"] <= floor:
        raise SystemExit(
            f"in-memory regression: measured speedup "
            f"{inmemory['measured_speedup']}x <= {floor:.2f}x"
        )

    streaming = measure_streaming(records, args.repeats)
    print(f"  [stream-tight] peak:  {streaming['tight_peak']} B"
          f" (budget {TIGHT_BUDGET} B), "
          f"{streaming['tight_spills']} spills, "
          f"{streaming['tight_ratio']}x in-memory throughput")
    if streaming["tight_peak"] > TIGHT_BUDGET:
        raise SystemExit(
            f"budget violated: peak {streaming['tight_peak']} B > "
            f"{TIGHT_BUDGET} B"
        )
    if streaming["tight_spills"] == 0:
        raise SystemExit(
            "tight budget produced no spills — the gate corpus no "
            "longer exercises the spill path"
        )

    print(f"  [stream-roomy] ratio: {streaming['roomy_ratio']}x"
          f" in-memory throughput (required >= "
          f"{args.min_roomy_throughput}x, 0 spills)")
    if streaming["roomy_spills"] != 0:
        raise SystemExit("roomy budget spilled — budget accounting broke")
    if streaming["roomy_ratio"] < args.min_roomy_throughput:
        raise SystemExit(
            f"streaming bookkeeping overhead too high: "
            f"{streaming['roomy_ratio']}x < {args.min_roomy_throughput}x"
        )
    print("  OK: in-memory keeps its speedup, streamed output is "
          "identical, the budget binds")


if __name__ == "__main__":
    main()
