"""Shared helpers for the benchmark harness.

Every ``bench_eXX_*.py`` file regenerates one table/figure from the
evaluation index in DESIGN.md: it computes the experiment's rows,
prints them as an aligned table (the "figure"), and times one
representative kernel through pytest-benchmark. Corpora are cached
per-process so the harness doesn't regenerate identical worlds.
"""

from __future__ import annotations

from functools import lru_cache

from repro.quality import render_table
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)

__all__ = ["emit", "linkage_corpus", "render_table"]


def emit(
    capsys, title: str, headers, rows, note: str = "", float_digits: int = 3
) -> None:
    """Print an experiment table to the real terminal.

    ``capsys.disabled()`` bypasses pytest capture so the table is
    visible in normal runs and in the tee'd bench log.
    """
    table = render_table(headers, rows, title=title, float_digits=float_digits)
    with capsys.disabled():
        print()
        print(table)
        if note:
            print(note)


@lru_cache(maxsize=None)
def linkage_corpus(
    n_entities: int = 60,
    n_sources: int = 12,
    typo_rate: float = 0.05,
    seed: int = 3,
):
    """A standard product corpus for the linkage experiments (cached)."""
    world = generate_world(
        WorldConfig(
            categories=("camera", "notebook"),
            entities_per_category=n_entities,
            seed=seed,
        )
    )
    return generate_dataset(
        world,
        CorpusConfig(
            n_sources=n_sources,
            dialect_noise=0.6,
            typo_rate=typo_rate,
            seed=seed + 1,
        ),
    )
