"""Gate: the NullTracer default keeps the E20 engine within noise.

The observability layer (`repro.obs`) wires spans and counters into
the comparison engine's hot path. By design the default
:data:`~repro.obs.NULL_TRACER` batches all metric work outside the
per-pair loops, so the prepared+early-exit throughput must stay where
`BENCH_engine.json` recorded it before instrumentation existed.

Absolute pairs/sec is machine-dependent (CI runners ≠ the box that
wrote the baseline), so the gate compares the *relative* speedup of
the early-exit path over the naive path, measured fresh on this
machine, against the baseline's ``speedup_vs_naive``. A genuine
per-pair instrumentation cost would drag the measured ratio down on
every machine alike; run-to-run noise would not, so the threshold is
lenient (default: measured ratio must stay above half the recorded
one — the seed ratio is ~7×, so even a 5% hot-path regression plus
generous noise clears it, while per-pair tracer calls, which cost
2-3×, do not).

Run:  PYTHONPATH=src python benchmarks/check_obs_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_e20_engine import THRESHOLD, _corpus_pairs

from repro.linkage import (
    ParallelComparisonEngine,
    ThresholdClassifier,
    default_product_comparator,
)

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def measure_speedup(records, by_id, pairs, repeats: int = 3) -> dict:
    """Best-of-N naive vs early-exit timing on one corpus."""
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(THRESHOLD)
    engine = ParallelComparisonEngine(comparator)  # NullTracer default

    naive_best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        naive_matches = {
            frozenset(pair)
            for pair in pairs
            if comparator.compare(by_id[pair[0]], by_id[pair[1]]).score
            >= THRESHOLD
        }
        naive_best = min(naive_best, time.perf_counter() - start)

    early_best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        run = engine.match_pairs(by_id, pairs, classifier)
        early_best = min(early_best, time.perf_counter() - start)
    if run.match_pairs != naive_matches:
        raise SystemExit("early-exit disagrees with naive on match pairs")

    return {
        "n_pairs": len(pairs),
        "naive_pairs_per_sec": round(len(pairs) / naive_best, 1),
        "early_exit_pairs_per_sec": round(len(pairs) / early_best, 1),
        "measured_speedup": round(naive_best / early_best, 2),
    }


def baseline_speedup(path: Path = BASELINE_PATH) -> float:
    payload = json.loads(path.read_text())
    by_mode = {row["mode"]: row for row in payload["modes"]}
    return by_mode["early-exit"]["speedup_vs_naive"]


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus (CI smoke); the ratio gate is corpus-robust",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.5,
        help="measured speedup must exceed this fraction of the baseline",
    )
    args = parser.parse_args(argv)

    n_entities, n_sources = (20, 6) if args.quick else (60, 12)
    records, by_id, pairs = _corpus_pairs(n_entities, n_sources)
    measured = measure_speedup(records, by_id, pairs, repeats=args.repeats)
    recorded = baseline_speedup()
    floor = args.min_ratio * recorded

    print("NullTracer overhead gate (early-exit vs naive speedup)")
    print(f"  corpus:            {n_entities} entities x {n_sources} sources"
          f" -> {measured['n_pairs']} pairs")
    print(f"  naive:             {measured['naive_pairs_per_sec']} pairs/sec")
    print(f"  early-exit:        {measured['early_exit_pairs_per_sec']}"
          " pairs/sec  (instrumented path, NullTracer)")
    print(f"  measured speedup:  {measured['measured_speedup']}x")
    print(f"  baseline speedup:  {recorded}x  (BENCH_engine.json)")
    print(f"  required:          > {floor:.2f}x")
    if measured["measured_speedup"] <= floor:
        raise SystemExit(
            f"instrumentation overhead detected: measured speedup "
            f"{measured['measured_speedup']}x <= {floor:.2f}x "
            f"({args.min_ratio} x baseline {recorded}x)"
        )
    print("  OK: NullTracer path within noise of the recorded baseline")


if __name__ == "__main__":
    main()
