"""E24 — sharded pipeline runtime: scaling and shuffle cost.

The sharded runtime (:mod:`repro.dist.runtime`) partitions the
canonical candidate-pair list across entity-sharded workers, each
running the serial resilient engine on its slice, and reconciles the
per-shard results back to the serial output byte for byte. This
experiment measures, for shard counts 1/2/4/8 over the standard
linkage corpus:

* **wall** — coordinator wall-clock of the whole sharded resolve.
  On a single-core container this *degrades* with shard count (the
  shards time-slice one CPU plus pay coordination overhead), which is
  itself a finding worth recording honestly.
* **makespan** — the simulated-parallel completion time: every
  worker's matching time is measured inside the worker
  (``ShardResult.elapsed``); the makespan charges the slowest shard
  plus all coordinator-side time (partitioning, merging,
  reconciliation), which stays serial. This is the quantity that
  scales, and the one ``check_sharded_scaling.py`` gates (>= 1.8x at
  4 shards).
* **skew** — max/mean per-shard pair count: how evenly hash
  partitioning by smaller-id spreads the workload.
* **spanning** — pairs whose two records live on different home
  shards (the shuffle volume a real cluster would pay).

Every shard count must reproduce the serial match pairs, scored
edges, and clusters exactly — asserted here. Machine-readable results
land in ``BENCH_sharded.json`` at the repo root.

Run standalone (no pytest-benchmark kernel) with::

    PYTHONPATH=src python benchmarks/bench_e24_sharded.py --no-bench
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit
from bench_e20_engine import THRESHOLD, _corpus_pairs

from repro.dist import sharded_resolve
from repro.linkage import (
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    resolve,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"

SHARD_COUNTS = (1, 2, 4, 8)


def _serial_baseline(records, by_id, pairs, repeats: int):
    """Full serial resolve: identity reference + wall time.

    The baseline is the whole serial pipeline (canonical pair
    ordering, matching, clustering, result assembly) — the same work
    the sharded coordinator + workers share — so the makespan ratio
    compares like with like.
    """
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(THRESHOLD)
    reference = None
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        reference = resolve(
            records,
            TokenBlocker(max_block_size=60),
            comparator,
            classifier,
            candidate_pairs=[frozenset(pair) for pair in pairs],
        )
        best = min(best, time.perf_counter() - start)
    return reference, best


def _measure_sharded(records, pairs, n_shards: int, repeats: int):
    """Best-of-N sharded resolve; returns (row metrics, run)."""
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(THRESHOLD)
    best = None
    wall_best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        run = sharded_resolve(
            records,
            TokenBlocker(max_block_size=60),
            comparator,
            classifier,
            candidate_pairs=[frozenset(pair) for pair in pairs],
            n_shards=n_shards,
            backend="inline",
        )
        wall = time.perf_counter() - start
        if wall < wall_best:
            wall_best, best = wall, run
    worker_times = [shard.elapsed for shard in best.shards]
    coordinator = max(0.0, wall_best - sum(worker_times))
    makespan = coordinator + max(worker_times)
    counts = [shard.n_pairs for shard in best.shards]
    mean = sum(counts) / len(counts) if counts else 0.0
    skew = (max(counts) / mean) if mean else 1.0
    return {
        "n_shards": n_shards,
        "wall_seconds": round(wall_best, 4),
        "makespan_seconds": round(makespan, 4),
        "coordinator_seconds": round(coordinator, 4),
        "max_shard_seconds": round(max(worker_times), 4),
        "skew": round(skew, 3),
        "spanning_pairs": best.n_spanning_pairs,
    }, best


def run_experiment(records, by_id, pairs, repeats: int = 1):
    reference, serial_match = _serial_baseline(records, by_id, pairs, repeats)
    rows = []
    for n_shards in SHARD_COUNTS:
        row, run = _measure_sharded(records, pairs, n_shards, repeats)
        result = run.result
        assert result.match_pairs == reference.match_pairs
        assert result.scored_edges == reference.scored_edges
        assert result.clusters == reference.clusters
        row["identical"] = True
        row["speedup_makespan"] = round(
            serial_match / row["makespan_seconds"], 2
        ) if row["makespan_seconds"] else float("inf")
        rows.append(row)
    return serial_match, rows


HEADERS = [
    "shards", "wall s", "makespan s", "speedup", "skew", "spanning",
]


def _table_rows(rows):
    return [
        [
            row["n_shards"],
            row["wall_seconds"],
            row["makespan_seconds"],
            row["speedup_makespan"],
            row["skew"],
            row["spanning_pairs"],
        ]
        for row in rows
    ]


def _write_json(serial_match, rows, n_entities, n_sources, path=RESULT_PATH):
    payload = {
        "experiment": "E24 sharded pipeline runtime scaling",
        "corpus": {
            "n_entities": n_entities,
            "n_sources": n_sources,
            "categories": ["camera", "notebook"],
        },
        "threshold": THRESHOLD,
        "serial_resolve_seconds": round(serial_match, 4),
        "methodology": (
            "makespan = coordinator time (serial) + slowest shard's "
            "worker-measured matching time; wall-clock parallelism is "
            "not available on a single-core container, so the gate "
            "holds the simulated-parallel makespan to the floor while "
            "asserting byte-identical output"
        ),
        "unix_time": round(time.time(), 1),
        "shard_counts": rows,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_e24_sharded(benchmark, capsys):
    n_entities, n_sources = 60, 12
    records, by_id, pairs = _corpus_pairs(n_entities, n_sources)
    serial_match, rows = run_experiment(records, by_id, pairs)
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(THRESHOLD)
    benchmark(
        lambda: sharded_resolve(
            records,
            TokenBlocker(max_block_size=60),
            comparator,
            classifier,
            candidate_pairs=[frozenset(pair) for pair in pairs],
            n_shards=4,
            backend="inline",
        )
    )
    _write_json(serial_match, rows, n_entities, n_sources)
    emit(
        capsys,
        "E24: sharded runtime scaling "
        f"({len(pairs)} candidate pairs, serial resolve "
        f"{serial_match:.3f} s)",
        HEADERS,
        _table_rows(rows),
        note=(
            "Expected shape: makespan speedup grows with shard count "
            "(>= 1.8x at 4 shards, the CI gate) while wall-clock on one "
            "core stays flat-to-worse; skew near 1.0 means hash "
            "partitioning spread the pairs evenly."
        ),
    )
    by_count = {row["n_shards"]: row for row in rows}
    assert by_count[4]["speedup_makespan"] >= 1.8


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-bench",
        action="store_true",
        help="table-only mode (this entry point never runs the "
        "pytest-benchmark kernel anyway)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus smoke run; does not overwrite "
        "BENCH_sharded.json",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="where to write machine-readable results "
        "(default: BENCH_sharded.json at the repo root; "
        "--quick writes nowhere unless --json is given)",
    )
    args = parser.parse_args(argv)
    n_entities, n_sources = (20, 6) if args.quick else (60, 12)
    records, by_id, pairs = _corpus_pairs(n_entities, n_sources)
    serial_match, rows = run_experiment(records, by_id, pairs, args.repeats)
    if args.json is not None:
        path = _write_json(serial_match, rows, n_entities, n_sources, args.json)
        print(f"wrote {path}")
    elif not args.quick:
        path = _write_json(serial_match, rows, n_entities, n_sources)
        print(f"wrote {path}")
    from repro.quality import render_table

    print(
        render_table(
            HEADERS,
            _table_rows(rows),
            title="E24: sharded runtime scaling "
            f"({len(pairs)} pairs, serial resolve {serial_match:.3f} s)",
            float_digits=3,
        )
    )


if __name__ == "__main__":
    main()
