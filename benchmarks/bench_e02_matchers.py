"""E2 — Attribute-matcher families: name vs instance vs hybrid.

The tutorial's schema-alignment section contrasts name-based matching
(cheap, synonym-blind) with instance-based matching (synonym-aware,
vocabulary-confusable); hybrid matching dominates both. This bench
reports correspondence precision/recall/F1 per matcher across two
heterogeneity levels.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus

from repro.quality import correspondence_quality
from repro.schema import (
    HybridMatcher,
    InstanceMatcher,
    NameMatcher,
    profile_attributes,
    score_all_pairs,
    select_correspondences,
)
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)

MATCHERS = {
    "name": NameMatcher(),
    "instance": InstanceMatcher(),
    "hybrid": HybridMatcher(),
}


def corpus(dialect_noise: float):
    world = generate_world(
        WorldConfig(
            categories=("camera", "notebook"),
            entities_per_category=50,
            seed=2,
        )
    )
    return generate_dataset(
        world,
        CorpusConfig(n_sources=12, dialect_noise=dialect_noise, seed=5),
    )


def bench_e02_attribute_matchers(benchmark, capsys):
    rows = []
    best_f1 = {}
    for noise in (0.4, 0.8):
        dataset = corpus(noise)
        profiles = profile_attributes(dataset)
        for name, matcher in MATCHERS.items():
            scored = score_all_pairs(profiles, matcher, min_score=0.3)
            selected = select_correspondences(scored, threshold=0.6)
            quality = correspondence_quality(
                [(c.left, c.right) for c in selected], dataset
            )
            rows.append(
                [
                    noise,
                    name,
                    quality.precision,
                    quality.recall,
                    quality.f1,
                    len(selected),
                ]
            )
            best_f1.setdefault(noise, {})[name] = quality.f1
    dataset = corpus(0.8)
    profiles = profile_attributes(dataset)
    benchmark(
        lambda: score_all_pairs(profiles, MATCHERS["hybrid"], min_score=0.3)
    )
    emit(
        capsys,
        "E2: attribute correspondence quality by matcher family",
        ["dialect-noise", "matcher", "P", "R", "F1", "selected"],
        rows,
        note="Expected shape: hybrid F1 ≥ max(name, instance) per noise level.",
    )
    for noise, scores in best_f1.items():
        assert scores["hybrid"] >= max(
            scores["name"], scores["instance"]
        ) - 0.02, f"hybrid should dominate at noise={noise}"
