"""E15 (ablation) — Match classifiers: threshold vs rules vs
Fellegi-Sunter EM.

DESIGN.md's ablation list: how much does the classifier choice matter
given one comparator? A hand-tuned threshold is the usual strawman;
hand-written rules encode domain knowledge; Fellegi-Sunter fits its
decision boundary *unsupervised* via EM over agreement patterns. The
expected shape: FS-EM lands within a few F1 points of the best
hand-tuned threshold without seeing a single label, and beats
badly-tuned thresholds outright.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_common import emit, linkage_corpus

from repro.linkage import (
    RuleBasedClassifier,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    fit_fellegi_sunter,
    resolve,
    rule_for,
)
from repro.quality import pairwise_cluster_quality


def bench_e15_classifier_ablation(benchmark, capsys):
    dataset = linkage_corpus(n_entities=60, n_sources=12)
    records = list(dataset.records())
    truth = dataset.ground_truth
    comparator = default_product_comparator()
    blocker = TokenBlocker(max_block_size=60)

    # Fit Fellegi-Sunter unsupervised on the candidate vectors.
    candidates = blocker.block(records).candidate_pairs()
    by_id = {record.record_id: record for record in records}
    vectors = [
        comparator.compare(by_id[a], by_id[b])
        for a, b in (sorted(pair) for pair in sorted(candidates, key=sorted))
    ]
    fs_model = fit_fellegi_sunter(vectors, agreement_threshold=0.8)

    rules = RuleBasedClassifier(
        [
            rule_for(comparator, label="same-id", product_id=0.99),
            rule_for(
                comparator, label="name+brand", name=0.92, brand=0.9
            ),
        ]
    )
    classifiers = [
        ("threshold(0.60) [too loose]", ThresholdClassifier(0.60)),
        ("threshold(0.72) [tuned]", ThresholdClassifier(0.72)),
        ("threshold(0.90) [too strict]", ThresholdClassifier(0.90)),
        ("rules(id | name+brand)", rules),
        ("fellegi-sunter (EM, unsupervised)", fs_model),
    ]
    rows = []
    f1_by_name = {}
    for name, classifier in classifiers:
        result = resolve(
            records,
            blocker,
            comparator,
            classifier,
            candidate_pairs=candidates,
        )
        quality = pairwise_cluster_quality(result.clusters, truth)
        rows.append(
            [name, quality.precision, quality.recall, quality.f1]
        )
        f1_by_name[name] = quality.f1
    benchmark(lambda: fit_fellegi_sunter(vectors, agreement_threshold=0.8))
    emit(
        capsys,
        "E15 (ablation): match classifier comparison on one comparator "
        f"({len(candidates)} candidate pairs)",
        ["classifier", "P", "R", "F1"],
        rows,
        note=(
            "Expected shape: unsupervised Fellegi-Sunter within a few "
            "points of the hand-tuned threshold; mistuned thresholds and "
            "narrow rules pay in recall or precision."
        ),
    )
    tuned = f1_by_name["threshold(0.72) [tuned]"]
    fs = f1_by_name["fellegi-sunter (EM, unsupervised)"]
    assert fs > tuned - 0.08, "unsupervised FS must approach the tuned threshold"
    assert fs > f1_by_name["threshold(0.90) [too strict]"]
