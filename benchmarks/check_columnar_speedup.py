"""Gate: the columnar engine stays >= 2x the scalar early-exit path.

The columnar representation exists for one reason — throughput — so CI
holds it to a measured floor: ``representation="columnar"`` through
``ParallelComparisonEngine.match_pairs`` (block build included) must
sustain at least ``--min-speedup`` times the pairs/second of the
scalar early-exit engine on the same corpus and pair list, while
producing the identical match-pair set and scored edges. Both sides
are timed best-of-N in the same process, so the ratio is machine
independent the same way the other overhead gates are.

Run:  PYTHONPATH=src python benchmarks/check_columnar_speedup.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_e20_engine import THRESHOLD, _corpus_pairs

from repro.linkage import (
    ParallelComparisonEngine,
    ThresholdClassifier,
    default_product_comparator,
)


def measure(by_id, pairs, repeats: int) -> dict:
    """Scalar early-exit vs columnar ``match_pairs``, best-of-N."""
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(THRESHOLD)

    scalar_best = float("inf")
    for __ in range(repeats):
        engine = ParallelComparisonEngine(comparator, execution="serial")
        start = time.perf_counter()
        scalar_run = engine.match_pairs(by_id, pairs, classifier)
        scalar_best = min(scalar_best, time.perf_counter() - start)

    columnar_best = float("inf")
    for __ in range(repeats):
        engine = ParallelComparisonEngine(
            comparator, execution="serial", representation="columnar"
        )
        start = time.perf_counter()
        columnar_run = engine.match_pairs(by_id, pairs, classifier)
        columnar_best = min(columnar_best, time.perf_counter() - start)

    if columnar_run.match_pairs != scalar_run.match_pairs:
        raise SystemExit("columnar changed the match-pair set")
    if columnar_run.scored_edges != scalar_run.scored_edges:
        raise SystemExit("columnar changed the scored edges")

    return {
        "scalar_best": scalar_best,
        "columnar_best": columnar_best,
        "speedup": round(scalar_best / columnar_best, 2),
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus (CI smoke); the ratio gate is corpus-robust",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="columnar must beat scalar early-exit by this factor",
    )
    args = parser.parse_args(argv)

    n_entities, n_sources = (20, 6) if args.quick else (60, 12)
    __, by_id, pairs = _corpus_pairs(n_entities, n_sources)
    result = measure(by_id, pairs, args.repeats)

    print("Columnar speedup gate")
    print(f"  corpus:             {n_entities} entities x {n_sources}"
          f" sources -> {len(pairs)} pairs")
    print(f"  scalar early-exit:  {result['scalar_best']:.4f} s "
          f"({len(pairs) / result['scalar_best']:.0f} pairs/sec)")
    print(f"  columnar:           {result['columnar_best']:.4f} s "
          f"({len(pairs) / result['columnar_best']:.0f} pairs/sec)")
    print(f"  speedup:            {result['speedup']}x "
          f"(required >= {args.min_speedup}x)")
    if result["speedup"] < args.min_speedup:
        raise SystemExit(
            f"columnar regression: {result['speedup']}x < "
            f"{args.min_speedup}x over the scalar early-exit engine"
        )
    print("  OK: identical output, columnar keeps its speedup")


if __name__ == "__main__":
    main()
