"""Gate: checkpointing costs nothing when off, under 10% when on.

The recovery layer (`repro.recovery`) threads an optional checkpoint
store through the comparison engine's chunk loop. Two promises guard
the E20 hot path (`BENCH_engine.json`):

1. **Disabled is free.** With ``checkpoint=None`` the engine takes the
   exact pre-recovery code path, so the early-exit speedup over naive
   scoring must stay where the baseline recorded it. As in
   ``check_obs_overhead.py``, the gate compares the machine-independent
   *ratio*, not absolute pairs/sec, and passes while the measured
   speedup stays above half the recorded one.
2. **Enabled is cheap.** With a live ``RunStore`` the engine routes
   through the chunked executor and durably pickles each completed
   chunk; best-of-N wall time may cost at most 10% (plus a small noise
   allowance) over the identical run without a store.

Both gates assert output equality along the way — a checkpointed run
that got faster by computing something else would be a bug, not a win.

Run:  PYTHONPATH=src python benchmarks/check_recovery_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_e20_engine import THRESHOLD, _corpus_pairs

from repro.linkage import (
    ParallelComparisonEngine,
    ThresholdClassifier,
    default_product_comparator,
)
from repro.recovery import RunStore

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _engine(checkpoint=None):
    return ParallelComparisonEngine(
        default_product_comparator(), checkpoint=checkpoint
    )


def measure_disabled_speedup(by_id, pairs, repeats: int) -> dict:
    """Early-exit (checkpoint=None) vs naive, best-of-N."""
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(THRESHOLD)

    naive_best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        naive_matches = {
            frozenset(pair)
            for pair in pairs
            if comparator.compare(by_id[pair[0]], by_id[pair[1]]).score
            >= THRESHOLD
        }
        naive_best = min(naive_best, time.perf_counter() - start)

    plain_best = float("inf")
    for __ in range(repeats):
        engine = _engine()
        start = time.perf_counter()
        run = engine.match_pairs(by_id, pairs, classifier)
        plain_best = min(plain_best, time.perf_counter() - start)
    if run.match_pairs != naive_matches:
        raise SystemExit("engine disagrees with naive on match pairs")

    return {
        "naive_best": naive_best,
        "plain_best": plain_best,
        "measured_speedup": round(naive_best / plain_best, 2),
    }


def measure_enabled_overhead(by_id, pairs, repeats: int) -> dict:
    """Checkpointed vs plain wall time, best-of-N, fresh store each run."""
    classifier = ThresholdClassifier(THRESHOLD)

    plain_best = float("inf")
    for __ in range(repeats):
        engine = _engine()
        start = time.perf_counter()
        plain = engine.match_pairs(by_id, pairs, classifier)
        plain_best = min(plain_best, time.perf_counter() - start)

    enabled_best = float("inf")
    for __ in range(repeats):
        with tempfile.TemporaryDirectory() as root:
            engine = _engine(checkpoint=RunStore(root))
            start = time.perf_counter()
            checkpointed = engine.match_pairs(by_id, pairs, classifier)
            enabled_best = min(enabled_best, time.perf_counter() - start)
    if checkpointed.match_pairs != plain.match_pairs:
        raise SystemExit("checkpointed run changed the match pairs")
    if checkpointed.scored_edges != plain.scored_edges:
        raise SystemExit("checkpointed run changed the scored edges")

    return {
        "plain_best": plain_best,
        "enabled_best": enabled_best,
        "overhead": round(enabled_best / plain_best - 1.0, 4),
    }


def baseline_speedup(path: Path = BASELINE_PATH) -> float:
    payload = json.loads(path.read_text())
    by_mode = {row["mode"]: row for row in payload["modes"]}
    return by_mode["early-exit"]["speedup_vs_naive"]


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus (CI smoke); both gates are corpus-robust",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.5,
        help="disabled speedup must exceed this fraction of the baseline",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.10,
        help="enabled overhead budget from the issue (fraction)",
    )
    parser.add_argument(
        "--noise-allowance",
        type=float,
        default=0.05,
        help="extra fraction tolerated for machine noise on tiny runs",
    )
    args = parser.parse_args(argv)

    n_entities, n_sources = (20, 6) if args.quick else (60, 12)
    __, by_id, pairs = _corpus_pairs(n_entities, n_sources)

    disabled = measure_disabled_speedup(by_id, pairs, args.repeats)
    recorded = baseline_speedup()
    floor = args.min_ratio * recorded
    print("Recovery overhead gate")
    print(f"  corpus:              {n_entities} entities x {n_sources}"
          f" sources -> {len(pairs)} pairs")
    print(f"  [disabled] speedup:  {disabled['measured_speedup']}x"
          f" (baseline {recorded}x, required > {floor:.2f}x)")
    if disabled["measured_speedup"] <= floor:
        raise SystemExit(
            f"disabled-path regression: measured speedup "
            f"{disabled['measured_speedup']}x <= {floor:.2f}x"
        )

    enabled = measure_enabled_overhead(by_id, pairs, args.repeats)
    budget = args.max_overhead + args.noise_allowance
    print(f"  [enabled]  overhead: {enabled['overhead'] * 100:.1f}%"
          f" (budget {args.max_overhead * 100:.0f}%"
          f" + {args.noise_allowance * 100:.0f}% noise)")
    if enabled["overhead"] > budget:
        raise SystemExit(
            f"checkpointing overhead {enabled['overhead'] * 100:.1f}% "
            f"exceeds {budget * 100:.0f}% budget"
        )
    print("  OK: disabled within noise, enabled within the 10% budget")


if __name__ == "__main__":
    main()
