"""Fault-tolerance walkthrough: survive a poison pair, keep the run.

At web scale partial failure is the norm: one pathological record pair
can crash or hang a worker and, without a recovery layer, take the
whole linkage run down with it. This example injects exactly that
failure deterministically — a *poison pair* that crashes every attempt
it participates in — and shows the three :data:`FailurePolicy`
contracts side by side:

- ``"retry"`` — transient faults are retried with exponential backoff
  and the output is byte-identical to a fault-free run;
- ``"skip"``  — persistent faults are bisected down to the poison pair
  and quarantined into a dead-letter log; the run completes with
  partial results instead of aborting;
- ``"fail"``  — the run aborts on the first failure, naming the chunk.

Everything is deterministic: the fault injector fires on declarative
rules, and backoff sleeps consume simulated time on a
:class:`~repro.obs.ManualClock` (``sleep=clock.advance``), so the
walkthrough runs instantly and identically every time.

Run:  python examples/resilience.py [--json PATH]
      (--json writes the dead-letter log artifact to PATH)
"""

import argparse

from repro.core import Record
from repro.linkage import (
    FieldComparator,
    ParallelComparisonEngine,
    RecordComparator,
    ThresholdClassifier,
)
from repro.obs import ManualClock, Tracer
from repro.resilience import (
    ChunkExecutionError,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.testing import FaultInjector, crash


def build_workload():
    """Eight records (two per entity) and all 28 unordered pairs."""
    records = [
        Record(
            f"r{i}", f"s{i % 2}",
            {"name": f"canon powershot {i // 2}", "brand": "canon"},
        )
        for i in range(8)
    ]
    ids = [record.record_id for record in records]
    pairs = [
        (ids[i], ids[j])
        for i in range(len(ids))
        for j in range(i + 1, len(ids))
    ]
    return records, pairs


def comparator():
    from repro.text import exact_similarity

    return RecordComparator(
        fields=[
            FieldComparator("name", exact_similarity, weight=2.0),
            FieldComparator("brand", exact_similarity, weight=1.0),
        ]
    )


def engine(resilience=None, tracer=None):
    # chunk_size=7 → four chunks of seven pairs.
    return ParallelComparisonEngine(
        comparator(), n_workers=1, chunk_size=7,
        tracer=tracer, resilience=resilience,
    )


def config(failure, poison):
    """A fully deterministic resilience config: the poison pair crashes
    every chunk (and every bisected sub-chunk) that contains it."""
    clock = ManualClock(tick=0.0)
    return ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, base_delay=1.0, multiplier=2.0),
        failure=failure,
        clock=clock,
        sleep=clock.advance,
        fault_injector=FaultInjector(crash(item=poison)),
    ), clock


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the dead-letter log JSON artifact to PATH",
    )
    args = parser.parse_args()

    records, pairs = build_workload()
    classifier = ThresholdClassifier(0.9)
    poison = pairs[0]  # ("r0", "r1") — a true match, and a poison pair

    # 1. The fault-free baseline every recovery must be judged against.
    clean = engine().match_pairs(records, pairs, classifier)
    print(f"fault-free run:  {len(clean.match_pairs)} matches "
          f"from {clean.n_pairs} pairs")

    # 2. failure="retry" with a *transient* fault: chunk 0 crashes on
    #    its first attempt only, the retry succeeds, and the output is
    #    byte-identical to the baseline.
    clock = ManualClock(tick=0.0)
    transient = ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, base_delay=1.0),
        failure="retry",
        clock=clock,
        sleep=clock.advance,
        fault_injector=FaultInjector(crash(chunk=0, attempts=1)),
    )
    run = engine(transient).match_pairs(records, pairs, classifier)
    assert run.match_pairs == clean.match_pairs
    assert run.scored_edges == clean.scored_edges
    print(f'failure="retry": transient crash retried after '
          f'{clock.now():.0f}s backoff — output identical')

    # 3. failure="skip" with a *persistent* poison pair: the crashing
    #    chunk is retried, bisected down to the single poison pair, and
    #    that pair alone is quarantined. 27 of 28 pairs survive.
    skip_config, clock = config("skip", poison)
    tracer = Tracer()
    run = engine(skip_config, tracer=tracer).match_pairs(
        records, pairs, classifier
    )
    assert run.quarantined_pairs == (poison,)
    assert run.match_pairs == clean.match_pairs - {frozenset(poison)}
    print(f'failure="skip":  poison pair {poison} isolated by bisection '
          f"and quarantined; {run.completed_chunks}/{run.n_chunks} chunks "
          f"clean, {len(run.match_pairs)} matches kept")

    # 4. The dead-letter log names exactly what was lost and why — the
    #    run report's resilience counters tell the recovery story.
    [entry] = run.dead_letters
    print(f"dead letter:     chunk {entry.chunk_id} ({entry.kind}) "
          f"after {entry.attempts} attempts: {entry.error}")
    counters = tracer.metrics.snapshot()["counters"]
    for name in (
        "resilience.attempts",
        "resilience.retries",
        "resilience.bisections",
        "resilience.backoff_seconds",
        "resilience.quarantined_items",
    ):
        print(f"  {name:35s} {counters[name]:g}")

    # 5. failure="fail" aborts on the first failure, naming the chunk.
    fail_config, __ = config("fail", poison)
    try:
        engine(fail_config).match_pairs(records, pairs, classifier)
    except ChunkExecutionError as error:
        print(f'failure="fail":  aborted — chunk {error.chunk_id} '
              f"({error.kind})")

    # 6. The machine view: the dead-letter log is a lossless JSON
    #    artifact (DeadLetterLog.from_json round-trips).
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(run.dead_letters.to_json())
        print(f"\nwrote dead-letter log JSON to {args.json}")


if __name__ == "__main__":
    main()
