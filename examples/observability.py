"""Observability walkthrough: trace a full pipeline run.

Runs the big data integration pipeline with a real
:class:`repro.obs.Tracer` instead of the default no-op, then renders
the resulting :class:`repro.obs.RunReport` both ways it ships: the
plain-text span tree with metric tables (for humans), and the JSON
artifact (for CI and dashboards).

The report answers the questions a run leaves behind: where did the
time go (span tree), how hard did the comparison engine work (pair /
early-exit / prepared-cache counters, match-score histogram), how
skewed was the blocking (block-size histogram), and did the iterative
fusion solver converge (per-iteration deltas on the fusion span).

Run:  python examples/observability.py [--json PATH]
"""

import argparse

from repro import BDIPipeline, FourVKnobs, PipelineConfig, build_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the RunReport JSON artifact to PATH",
    )
    args = parser.parse_args()

    # 1. A corpus worth watching: enough records for the engine's
    #    early-exit and cache counters to mean something.
    corpus = build_corpus(
        FourVKnobs(volume=0.08, variety=0.5, veracity=0.4, seed=7)
    )

    # 2. One call: run with a fresh tracer, get (result, report).
    #    Equivalently: tracer = Tracer(); pipeline.run(dataset,
    #    tracer=tracer); tracer.report().
    pipeline = BDIPipeline(PipelineConfig(fusion="truthfinder"))
    result, report = pipeline.run_instrumented(corpus.dataset)

    # 3. The human view: span tree + counters/gauges/histograms.
    print(report.render())

    # 4. Pull single facts out programmatically.
    engine_span = report.find_span("engine.match_pairs")
    fusion_span = report.find_span("fusion.truthfinder")
    counters = report.metrics["counters"]
    print()
    print(f"entities fused:     {len(result.entity_table)}")
    print(f"pairs compared:     {counters['engine.pairs_total']}")
    print(f"early-exit rate:    {engine_span.attributes['early_exit_rate']}")
    print(f"fusion iterations:  {fusion_span.attributes['iterations']}")
    print(f"fusion deltas:      {fusion_span.attributes['deltas']}")

    # 5. The machine view: lossless JSON (RunReport.from_json round-trips).
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"\nwrote RunReport JSON to {args.json}")


if __name__ == "__main__":
    main()
