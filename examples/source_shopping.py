"""Source shopping: how many sources are worth integrating?

Integration is not free — each new source costs crawling, wrapper
maintenance, and cleaning. This example profiles a pool of sources,
ranks them by marginal fusion gain, and shows the "less is more"
curve: accuracy saturates after a handful of well-chosen sources while
cumulative profit (gain − cost) peaks and then *declines*.

Run:  python examples/source_shopping.py
"""

from repro.fusion import VotingFuser
from repro.quality import render_kv, render_table
from repro.selection import (
    GreedySourceSelector,
    baseline_order,
    profile_sources,
    true_accuracy,
)
from repro.synth import ClaimWorldConfig, generate_claims


def main() -> None:
    planted = generate_claims(
        ClaimWorldConfig(
            n_items=200,
            n_independent=18,
            accuracy_range=(0.35, 0.95),
            coverage=0.7,
            n_false_values=4,
            seed=77,
        )
    )
    claims = planted.claims

    # Profile the pool (accuracy bootstrap: agreement with the vote).
    stats = profile_sources(claims)
    preview = sorted(
        stats.values(), key=lambda s: -s.expected_correct_items
    )[:5]
    print(render_table(
        ["source", "coverage", "est. accuracy", "utility"],
        [
            [s.source_id, s.coverage, s.accuracy_estimate,
             s.expected_correct_items]
            for s in preview
        ],
        title="top-5 sources by standalone utility",
    ))

    # Greedy selection with an integration cost per source.
    cost_weight = 0.012
    selector = GreedySourceSelector(
        VotingFuser(), cost_weight=cost_weight
    )
    selection = selector.select(claims)
    profits = selection.cumulative_profit()
    random_order = baseline_order(claims, "random", seed=5)

    rows = []
    for k in (1, 2, 4, 6, 9, 12, 18):
        rows.append([
            k,
            true_accuracy(claims, list(selection.order[:k]),
                          VotingFuser(), planted.truth),
            true_accuracy(claims, random_order[:k],
                          VotingFuser(), planted.truth),
            profits[k - 1],
        ])
    print()
    print(render_table(
        ["k sources", "greedy accuracy", "random accuracy", "greedy profit"],
        rows,
        title=f"less is more (integration cost {cost_weight}/source)",
    ))

    peak = max(range(len(profits)), key=profits.__getitem__) + 1
    print()
    print(render_kv(
        [
            ("profit-optimal stopping point", f"{peak} sources"),
            ("accuracy at stopping point",
             round(true_accuracy(claims, list(selection.order[:peak]),
                                 VotingFuser(), planted.truth), 3)),
            ("accuracy integrating everything",
             round(true_accuracy(claims, list(selection.order),
                                 VotingFuser(), planted.truth), 3)),
        ],
        title="the less-is-more decision",
    ))


if __name__ == "__main__":
    main()
