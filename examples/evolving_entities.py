"""Evolving entities: linkage when the world won't hold still.

Two velocity problems in one walkthrough:

1. **Temporal linkage** — a stream of observations of researchers whose
   affiliation/city/topic drift over the years, plus namesakes. A
   static matcher splits the movers and merges the namesakes; decayed
   matching follows entities through their changes.
2. **Corpus maintenance** — successive snapshots of a product corpus
   where sources and pages churn. Incremental maintenance folds each
   re-crawl in at a fraction of the recompute cost.

Run:  python examples/evolving_entities.py
"""

from repro.linkage import (
    TemporalField,
    TemporalMatcher,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    link_temporal_stream,
)
from repro.quality import pairwise_cluster_quality, render_kv, render_table
from repro.synth import (
    CorpusConfig,
    EvolvingWorldConfig,
    TemporalStreamConfig,
    WorldConfig,
    evolve_world,
    generate_temporal_dataset,
    generate_world,
)
from repro.text import exact_similarity, jaro_winkler_similarity, normalize_value, word_tokens
from repro.velocity import (
    SnapshotConfig,
    SnapshotMaintainer,
    diff_datasets,
    render_snapshots,
)


def temporal_part() -> None:
    stream = generate_temporal_dataset(
        TemporalStreamConfig(
            n_entities=40,
            n_epochs=5,
            evolution_rate=0.35,
            namesake_fraction=0.2,
            missing_rate=0.1,
            seed=9,
        )
    )
    records = list(stream.records())
    truth = stream.ground_truth
    fields = [
        TemporalField("name", jaro_winkler_similarity, weight=2.0, mutable=False),
        TemporalField("affiliation", exact_similarity),
        TemporalField("city", exact_similarity),
        TemporalField("topic", exact_similarity),
    ]
    static = TemporalMatcher(fields, 0.0, 0.0, match_threshold=0.8)
    decayed = TemporalMatcher(
        fields, disagreement_decay=0.8, agreement_decay=0.05,
        match_threshold=0.8,
    )
    static_quality = pairwise_cluster_quality(
        link_temporal_stream(records, static), truth
    )
    decayed_quality = pairwise_cluster_quality(
        link_temporal_stream(records, decayed), truth
    )
    print(render_kv(
        [
            ("observations", len(records)),
            ("epochs", 5),
            ("static matcher F1", round(static_quality.f1, 3)),
            ("decayed matcher F1", round(decayed_quality.f1, 3)),
        ],
        title="part 1 — temporal linkage of evolving researchers",
    ))


def all_value_tokens(record):
    tokens = set()
    for value in record.attributes.values():
        tokens.update(
            t for t in word_tokens(normalize_value(value)) if len(t) >= 2
        )
    return tokens


def velocity_part() -> None:
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=40, seed=5)
    )
    worlds = evolve_world(
        world,
        EvolvingWorldConfig(n_snapshots=5, change_rate=0.15, death_rate=0.08),
    )
    snapshots = render_snapshots(
        worlds,
        CorpusConfig(n_sources=8, min_source_size=10, max_source_size=30, seed=7),
        SnapshotConfig(seed=8),
    )
    maintainer = SnapshotMaintainer(
        [all_value_tokens],
        default_product_comparator(),
        ThresholdClassifier(0.72),
    )
    rows = []
    for index, snapshot in enumerate(snapshots):
        cost = maintainer.process_snapshot(snapshot)
        __, full = SnapshotMaintainer.full_recompute(
            snapshot,
            TokenBlocker(),
            default_product_comparator(),
            ThresholdClassifier(0.72),
        )
        survival = (
            diff_datasets(snapshots[index - 1], snapshot).record_survival
            if index
            else 1.0
        )
        f1 = pairwise_cluster_quality(
            maintainer.clusters(), snapshot.ground_truth
        ).f1
        rows.append(
            [index, snapshot.n_records, round(survival, 2),
             cost.comparisons, full, round(f1, 3)]
        )
    print()
    print(render_table(
        ["snapshot", "pages", "survival", "incr cmp", "full cmp", "F1"],
        rows,
        title="part 2 — maintaining linkage across re-crawls",
    ))
    print("(incremental comparisons track churn; "
          "full recompute re-pays the whole corpus)")


if __name__ == "__main__":
    temporal_part()
    velocity_part()
