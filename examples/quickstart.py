"""Quickstart: integrate a messy multi-source product corpus in ~20 lines.

Builds a synthetic web-like corpus (heterogeneous schemas, unit
variation, typos, wrong values, copier sites), runs the full big data
integration pipeline — schema alignment → record linkage → data
fusion — and prints the fused entity table plus per-stage quality
against the generator's ground truth.

Run:  python examples/quickstart.py
"""

from repro import BDIPipeline, FourVKnobs, PipelineConfig, build_corpus
from repro.quality import render_kv, render_table


def main() -> None:
    # 1. A corpus dialed by the four big-data dimensions.
    corpus = build_corpus(
        FourVKnobs(volume=0.08, variety=0.5, veracity=0.4, seed=7)
    )
    dataset = corpus.dataset
    print(
        render_kv(
            [
                ("sources", len(dataset)),
                ("records", dataset.n_records),
                ("distinct attribute names", len(dataset.attribute_usage())),
                ("copier sites planted", len(corpus.copier_of)),
            ],
            title="corpus",
        )
    )

    # 2. The pipeline: schema alignment, linkage (similarity +
    #    identifier joins), accuracy-aware fusion.
    pipeline = BDIPipeline(PipelineConfig(fusion="accuvote"))
    result = pipeline.run(dataset)

    # 3. A peek at the fused entity table. The mediated schema names
    #    attributes by their most common source dialect, so look them
    #    up by keyword rather than by an assumed canonical name.
    def lookup(attributes: dict[str, str], *keywords: str) -> str:
        for key, value in attributes.items():
            if any(keyword in key for keyword in keywords):
                return value
        return "?"

    print("\nfused entities (first 5):")
    rows = []
    for cluster_id, attributes in list(result.entity_table.items())[:5]:
        rows.append(
            [
                cluster_id.split("/")[-1],
                lookup(attributes, "name", "title", "model"),
                lookup(attributes, "brand", "manufacturer", "make"),
                lookup(attributes, "color", "colour", "finish"),
            ]
        )
    print(render_table(["cluster", "name", "brand", "color"], rows))

    # 4. Exact quality, thanks to the generator's ground truth.
    report = pipeline.evaluate(dataset, result)
    print()
    print(
        render_kv(
            [
                ("schema alignment F1", round(report.schema_f1, 3)),
                ("linkage pairwise F1", round(report.linkage_pairwise_f1, 3)),
                ("linkage B-cubed F1", round(report.linkage_bcubed_f1, 3)),
                ("fusion accuracy", round(report.fusion_accuracy, 3)),
                ("entities found", report.n_clusters),
            ],
            title="pipeline quality",
        )
    )


if __name__ == "__main__":
    main()
