"""Price comparison: the classic motivating application, stage by stage.

A price-comparison engine needs exactly the pipeline this library
implements: discover which differently-named attributes mean the same
thing across shops, figure out which listings are the same product,
and reconcile the conflicting spec values the shops report. This
example drives each stage *explicitly* (rather than through
``BDIPipeline``) to show the intermediate artifacts a real application
would inspect.

Run:  python examples/price_comparison.py
"""

from repro.linkage import (
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    detect_identifier_attributes,
    link_by_identifier,
    meta_block,
    resolve,
)
from repro.fusion import AccuVote, Claim, ClaimSet
from repro.quality import (
    bcubed_quality,
    blocking_quality,
    pairwise_cluster_quality,
    render_kv,
    render_table,
)
from repro.schema import build_mediated_schema, profile_attributes
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)
from repro.text import canonical_value


def main() -> None:
    # A camera-shop world: 80 products, 14 shops, heavy heterogeneity.
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=80, seed=17)
    )
    dataset = generate_dataset(
        world,
        CorpusConfig(
            n_sources=14,
            dialect_noise=0.7,
            format_noise=0.5,
            typo_rate=0.04,
            error_rate=0.05,
            seed=18,
        ),
    )
    records = list(dataset.records())
    truth = dataset.ground_truth

    # --- Stage 1: schema alignment --------------------------------
    schema = build_mediated_schema(dataset, threshold=0.6)
    print(render_kv(
        [
            ("source attributes", sum(len(m.members) for m in schema.attributes)),
            ("mediated attributes", len(schema)),
        ],
        title="stage 1 — schema alignment",
    ))
    biggest = max(schema.attributes, key=len)
    print(f"largest cluster: {biggest.name!r} ← "
          f"{sorted({a for _, a in biggest.members})[:6]} ...")

    # --- Stage 2: record linkage ----------------------------------
    blocks = TokenBlocker(max_block_size=60).block(records)
    candidates = meta_block(blocks, weight="cbs", pruning="wep")
    bq = blocking_quality(candidates, truth, len(records))
    result = resolve(
        records,
        TokenBlocker(max_block_size=60),
        default_product_comparator(),
        ThresholdClassifier(0.72),
        candidate_pairs=candidates,
    )
    # Fortify with identifier joins — shops publish SKUs for the
    # shopping engines, so use them.
    detections = detect_identifier_attributes(profile_attributes(dataset))
    id_clusters = link_by_identifier(records, detections)
    from repro.linkage import connected_components
    from repro.quality import clusters_to_pairs

    clusters = connected_components(
        clusters_to_pairs(result.clusters) | clusters_to_pairs(id_clusters),
        [r.record_id for r in records],
    )
    lq = pairwise_cluster_quality(clusters, truth)
    b3 = bcubed_quality(clusters, truth)
    print()
    print(render_kv(
        [
            ("candidates after meta-blocking", len(candidates)),
            ("blocking pairs-completeness", round(bq.pairs_completeness, 3)),
            ("identifier attributes found", len(detections)),
            ("product clusters", len(clusters)),
            ("pairwise F1", round(lq.f1, 3)),
            ("B-cubed F1", round(b3.f1, 3)),
        ],
        title="stage 2 — record linkage",
    ))

    # --- Stage 3: data fusion -------------------------------------
    claims = ClaimSet()
    seen = set()
    for cluster in clusters:
        item_prefix = min(cluster)
        for record_id in cluster:
            record = dataset.record(record_id)
            for attribute, value in schema.translate(record).items():
                key = (record.source_id, f"{item_prefix}::{attribute}")
                if key in seen:
                    continue
                seen.add(key)
                claims.add(Claim(key[0], key[1], canonical_value(value)))
    fused = AccuVote(n_false_values=8).fuse(claims)
    ranked = sorted(
        fused.source_accuracy.items(), key=lambda kv: -kv[1]
    )
    print()
    print(render_kv(
        [
            ("data items fused", len(fused.chosen)),
            ("most trusted shop", f"{ranked[0][0]} ({ranked[0][1]:.2f})"),
            ("least trusted shop", f"{ranked[-1][0]} ({ranked[-1][1]:.2f})"),
        ],
        title="stage 3 — data fusion",
    ))

    # A spot-check: one product's reconciled spec sheet.
    cluster = max(clusters, key=len)
    item_prefix = min(cluster)
    rows = []
    for item, value in sorted(fused.chosen.items()):
        if item.startswith(item_prefix + "::"):
            attribute = item.split("::", 1)[1]
            rows.append([attribute, value, round(fused.confidence[item], 2)])
    print("\nreconciled spec sheet of the most-listed product "
          f"({len(cluster)} listings):")
    print(render_table(["attribute", "fused value", "confidence"], rows[:8]))


if __name__ == "__main__":
    main()
