"""Out-of-core walkthrough: resolve a corpus under a tiny memory budget.

The volume axis of big data integration eventually crosses the line
where the working set — blocking index, candidate pairs, prepared
records, claim groups — no longer fits in memory. ``repro.outofcore``
moves every one of those structures onto a spill-to-disk path whose
output is **byte-identical** to the in-memory run. This example shows
the whole surface:

1. A synthetic product corpus is written to JSONL and reopened as an
   :class:`~repro.outofcore.IndexedRecordStore` — record lookups seek
   into the file through a budget-bounded LRU instead of holding the
   corpus resident.
2. ``resolve(..., memory_budget=...)`` streams blocks through a
   spillable index, dedups candidate pairs with an external merge
   sort, and feeds the comparison engine chunk by chunk.
3. The full ``BDIPipeline.run(memory_budget=...)`` does the same end
   to end, including streamed claim grouping and AccuVote fusion.
4. Every output is asserted equal to the unbounded in-memory run, and
   the budget's spill statistics (peak tracked bytes, spill count,
   spilled bytes) are printed and optionally written as a JSON
   artifact.

Run:  python examples/outofcore.py [--json PATH]
      (--json writes the spill-stats artifact to PATH)
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.core.pipeline import BDIPipeline, PipelineConfig
from repro.io import save_dataset
from repro.linkage import (
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    resolve,
)
from repro.obs import Tracer
from repro.outofcore import IndexedRecordStore, MemoryBudget
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)

BUDGET = 32 * 1024  # 32 KiB of tracked bytes — far below the corpus.


def build_dataset():
    world = generate_world(WorldConfig(entities_per_category=20, seed=21))
    return generate_dataset(
        world, CorpusConfig(n_sources=6, seed=21)
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", type=Path, default=None,
        help="write the spill-stats artifact to this path",
    )
    args = parser.parse_args(argv)

    dataset = build_dataset()
    records = list(dataset.records())
    blocker = TokenBlocker(max_block_size=40)
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(0.6)

    print(f"corpus: {len(records)} records from "
          f"{len(dataset.sources)} sources")
    print(f"budget: {BUDGET} tracked bytes")

    with tempfile.TemporaryDirectory(prefix="repro-outofcore-") as root:
        # 1. Records on disk, random access through a bounded cache.
        stem = Path(root) / "corpus"
        save_dataset(dataset, stem)
        budget = MemoryBudget(BUDGET)
        store = IndexedRecordStore(
            stem.with_suffix(".records.jsonl"), budget
        )
        print(f"indexed {len(store)} records "
              f"({store.path.stat().st_size} bytes on disk)")

        # 2. Streamed linkage vs the in-memory reference.
        reference = resolve(records, blocker, comparator, classifier)
        streamed = resolve(
            store, blocker, comparator, classifier,
            memory_budget=budget, spill_dir=Path(root) / "spill",
        )
        assert streamed.clusters == reference.clusters
        assert streamed.match_pairs == reference.match_pairs
        assert streamed.scored_edges == reference.scored_edges
        assert streamed.n_candidates == reference.n_candidates
        assert budget.peak <= BUDGET
        print(f"resolve: {streamed.n_clusters} clusters from "
              f"{streamed.n_candidates} candidate pairs — identical to "
              "the in-memory run")
        resolve_stats = budget.stats()
        print(f"  peak tracked: {resolve_stats['peak_tracked_bytes']} B, "
              f"spills: {resolve_stats['spill_count']} "
              f"({resolve_stats['spill_bytes']} B)")

        # 3. The full pipeline under the same budget.
        config = PipelineConfig(fusion="accuvote")
        base = BDIPipeline(config).run(dataset)
        tracer = Tracer()
        result = BDIPipeline(config).run(
            dataset, tracer=tracer,
            memory_budget=BUDGET, spill_dir=Path(root) / "pipeline",
        )
        assert result.clusters == base.clusters
        assert dict(result.fusion.chosen) == dict(base.fusion.chosen)
        assert dict(result.fusion.confidence) == dict(base.fusion.confidence)
        assert result.entity_table == base.entity_table
        gauges = tracer.report().metrics.get("gauges", {})
        assert gauges["outofcore.peak_tracked_bytes"] <= BUDGET
        assert gauges["outofcore.spill_count"] > 0
        print(f"pipeline: {len(result.clusters)} entities, "
              f"{result.claims.n_claims} claims fused over "
              f"{result.fusion.iterations} AccuVote iterations — "
              "identical to the in-memory run")
        pipeline_stats = {
            "peak_tracked_bytes": gauges["outofcore.peak_tracked_bytes"],
            "spill_count": gauges["outofcore.spill_count"],
            "spill_bytes": gauges["outofcore.spill_bytes"],
            "budget_limit_bytes": gauges["outofcore.budget_limit_bytes"],
        }
        print(f"  peak tracked: {pipeline_stats['peak_tracked_bytes']} B, "
              f"spills: {pipeline_stats['spill_count']} "
              f"({pipeline_stats['spill_bytes']} B)")

    if args.json is not None:
        artifact = {
            "budget_limit_bytes": BUDGET,
            "n_records": len(records),
            "resolve": resolve_stats,
            "pipeline": pipeline_stats,
        }
        args.json.write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"spill-stats artifact -> {args.json}")

    print("OK: out-of-core output is byte-identical under a "
          f"{BUDGET}-byte budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
