"""Continuous ingestion walkthrough: windowed linkage under drift.

A batch pipeline integrates a corpus; a streaming deployment
integrates a *firehose* — and while it runs, the world drifts: a
trusted source's feed breaks mid-stream and starts publishing garbage.
This example stands up a :class:`repro.streaming.StreamingResolver`
over a seeded drifting stream and walks the loop:

1. **Windowed ingestion**: records flow through event-time tumbling
   windows; each close runs incremental linkage over the window and
   re-fuses every touched entity.
2. **Drift tracking**: entities fuse under exponentially-decayed
   source-accuracy posteriors, so when ``src00`` flips from planted
   accuracy 0.9 to 0.2 the estimates follow within a few windows —
   an undecayed baseline run side by side stays anchored to stale
   history.
3. **Monitoring**: the accuracy-shift monitor watches the estimates
   and fires once per sustained shift; the event log is the audit
   trail a re-resolution trigger (or a paged human) works from.
4. **Re-resolution**: the drift event invokes a windowed batch
   re-resolve through the ``on_drift`` hook — the heavyweight answer
   when linkage itself is suspect.

Run:  PYTHONPATH=src python examples/streaming_drift.py [--json PATH]
      (--json writes the monitor event log and final estimates to PATH)
"""

import argparse
import itertools
import json

from repro.linkage import (
    StandardBlocker,
    ThresholdClassifier,
    default_product_comparator,
)
from repro.linkage.blocking import first_token_key
from repro.streaming import (
    CONFLICT_ATTRIBUTES,
    DriftStreamConfig,
    DriftWorld,
    StreamingResolver,
    WindowConfig,
    projection_accuracy,
)

#: The planted world: five sources over ten entities; the most
#: accurate source flips to near-garbage at event time 12.
STREAM = DriftStreamConfig(
    n_entities=10,
    n_sources=5,
    flip_at=12.0,
    flip_source=0,
    flip_to=0.2,
    seed=11,
)
N_WINDOWS = 16


def build_resolver(world, decay, on_drift=None) -> StreamingResolver:
    return StreamingResolver(
        key_functions=[first_token_key("name")],
        comparator=default_product_comparator(),
        classifier=ThresholdClassifier(0.72),
        source_accuracies=world.accuracies_at(0.0),
        window=WindowConfig(size=2.0),
        decay=decay,
        tracked_attributes=CONFLICT_ATTRIBUTES,
        on_drift=on_drift,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None)
    args = parser.parse_args()

    world = DriftWorld(STREAM)
    flip_window = int(STREAM.flip_at // 2.0)
    print(
        f"stream: {STREAM.n_sources} sources x {STREAM.n_entities} "
        f"entities; src00 flips 0.9 -> {STREAM.flip_to} at window "
        f"{flip_window}"
    )

    # 1 + 2. Run the decayed resolver and the undecayed baseline over
    # the same stream, watching src00's estimate per window.
    blocker = StandardBlocker(first_token_key("name"))
    re_resolutions = []

    def on_drift(event, resolver):
        re_resolutions.append(event.window)
        resolver.re_resolve(blocker)

    decayed = build_resolver(world, decay=0.7, on_drift=on_drift)
    undecayed = build_resolver(world, decay=1.0)

    print(f"\n{'window':>6} {'decayed src00':>14} {'undecayed src00':>16}")
    for tracked, stale in zip(
        decayed.process(world.stream()),
        undecayed.process(DriftWorld(STREAM).stream()),
    ):
        marker = " <- flip" if tracked.index == flip_window else ""
        if tracked.events:
            marker += " ".join(
                f" [{event.monitor}: {event.subject}]"
                for event in tracked.events
            )
        print(
            f"{tracked.index:>6} "
            f"{tracked.accuracies['src00']:>14.3f} "
            f"{stale.accuracies['src00']:>16.3f}{marker}"
        )
        if tracked.index + 1 >= N_WINDOWS:
            break

    # 3. The monitor event log: one event per sustained shift.
    print("\nmonitor events (the re-resolution audit trail):")
    for event in decayed.events:
        print(
            f"  window {event.window}: {event.monitor} on "
            f"{event.subject}: {event.baseline:.3f} -> {event.value:.3f}"
        )

    # 4. Each event re-resolved the projection from scratch.
    print(
        f"\nre-resolutions fired: {decayed.re_resolutions} "
        f"(at windows {re_resolutions})"
    )

    tick = N_WINDOWS * 2.0 - 1.0
    scored = {
        "decayed": projection_accuracy(
            world, decayed.snapshot()["entities"], tick
        ),
        "undecayed": projection_accuracy(
            world, undecayed.snapshot()["entities"], tick
        ),
    }
    print(
        f"fused-value accuracy vs planted truth: "
        f"decayed {scored['decayed']:.3f}, "
        f"undecayed {scored['undecayed']:.3f}"
    )
    print(
        f"final src00 estimate: decayed "
        f"{decayed.estimates()['src00']:.3f} (planted "
        f"{world.accuracy_at('src00', tick):.2f}), undecayed "
        f"{undecayed.estimates()['src00']:.3f}"
    )
    assert decayed.events, "the monitor never fired"
    assert decayed.re_resolutions >= 1

    if args.json:
        payload = {
            "events": [event.to_json() for event in decayed.events],
            "estimates": {
                "decayed": decayed.estimates(),
                "undecayed": undecayed.estimates(),
            },
            "planted": world.accuracies_at(tick),
            "projection_accuracy": scored,
            "re_resolutions": decayed.re_resolutions,
            "windows": N_WINDOWS,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nwrote streaming drift log to {args.json}")


if __name__ == "__main__":
    main()
