"""Serving walkthrough: a live entity-resolution API that survives kill -9.

The batch pipeline answers "what are the entities?" once; a serving
deployment answers it continuously while records keep arriving. This
example stands up a :class:`repro.serve.ResolutionService` and walks
the full lifecycle:

1. **Ingest** a stream of product records from three disagreeing
   sources — each ingest is durably logged, incrementally linked, and
   its entity re-fused online (never the batch pipeline).
2. **Query** it: ``match`` routes a never-seen record to its entity,
   ``get`` returns fused attributes with per-attribute provenance and
   confidence.
3. **Refresh**: full batch re-resolution runs into a new generation
   and readers swap atomically; the projection is unchanged
   (incremental ≡ batch), but the generation is now durable.
4. **Kill**: a sacrificial subprocess resumes the same store and is
   murdered via ``os._exit(137)`` mid-ingest — after the durable log
   append, before linking. No unwinding, no cleanup.
5. **Restart + query**: reopening the store replays the log tail past
   the published generation's watermark; the acknowledged-but-unlinked
   record is served as if the crash never happened.

Run:  python examples/serving.py [--json PATH]
      (--json writes the serve.* counters and final state to PATH)
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

from repro.core import Record
from repro.linkage import (
    StandardBlocker,
    ThresholdClassifier,
    default_product_comparator,
)
from repro.linkage.blocking import first_token_key
from repro.obs import Tracer
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.resilience.testing import KILL_EXIT_CODE, FaultInjector, kill
from repro.serve import ResolutionService

CATALOG = [
    ("canon", "powershot a560", "4x"),
    ("nikon", "coolpix p50", "3.6x"),
    ("sony", "cybershot w80", "3x"),
    ("kodak", "easyshare z712", "12x"),
]


def build_records():
    """Three sources describing four cameras, with the third source
    habitually sloppy about brand casing — fusion's job to clean up."""
    records = []
    for index, (brand, model, zoom) in enumerate(CATALOG):
        for s, source in enumerate(("retail", "feed", "scraper")):
            records.append(
                Record(
                    f"{source}/{index}",
                    source,
                    {
                        "name": f"{brand} {model}",
                        "brand": brand.upper() if source == "scraper" else brand,
                        "zoom": zoom,
                    },
                )
            )
    return records


def build_service(root, doomed_at=None, tracer=None):
    resilience = None
    if doomed_at is not None:
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1),
            fault_injector=FaultInjector(kill(chunk=doomed_at)),
        )
    return ResolutionService(
        root,
        key_functions=[first_token_key("name")],
        comparator=default_product_comparator(),
        classifier=ThresholdClassifier(0.72),
        refresh_blocker=StandardBlocker(first_token_key("name")),
        source_accuracies={"retail": 0.9, "feed": 0.8, "scraper": 0.6},
        resilience=resilience,
        tracer=tracer,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write counters and final state to PATH",
    )
    parser.add_argument(
        "--doomed",
        metavar="STORE",
        help=argparse.SUPPRESS,  # internal: the sacrificial run
    )
    args = parser.parse_args()

    if args.doomed:
        # The sacrificial subprocess: the next ingest is durably
        # appended, then the process dies before linking it.
        service = build_service(
            args.doomed, doomed_at=service_log_length(args.doomed)
        )
        service.ingest(
            Record(
                "late/0",
                "late",
                {"name": "canon powershot a560", "zoom": "4x"},
            )
        )
        raise SystemExit("unreachable: the kill fault should have fired")

    tracer = Tracer()
    with tempfile.TemporaryDirectory(prefix="repro-serving-") as root:
        service = build_service(root, tracer=tracer)

        # 1. Ingest the live stream.
        records = build_records()
        for record in records:
            service.ingest(record)
        print(
            f"ingested:   {len(records)} records -> "
            f"{len(service.entities())} entities "
            f"(log fsynced per ingest)"
        )

        # 2. Query it.
        probe = Record("q/0", "q", {"name": "canon powershot a560"})
        entity_id = service.match(probe)
        entity = service.get(entity_id)
        print(f"match:      {probe.attributes['name']!r} -> {entity_id}")
        print(
            f"get:        members={list(entity.members)} "
            f"brand={entity.attributes['brand']!r} "
            f"(confidence {entity.confidence['brand']:.2f}, "
            f"claimed by {list(entity.provenance['brand'])})"
        )

        # 3. Refresh: batch re-resolution, atomic generation swap.
        before = service.snapshot()
        generation = service.refresh()
        assert service.snapshot()["entities"] == before["entities"]
        print(
            f"refresh:    generation {generation} published "
            "(batch == incremental, swap atomic, cache invalidated "
            "by construction)"
        )

        # 4. Murder a resumed deployment mid-ingest.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH", "")])
        )
        process = subprocess.run(
            [sys.executable, __file__, "--doomed", root],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        assert process.returncode == KILL_EXIT_CODE, process.returncode
        print(
            f"killed:     os._exit({KILL_EXIT_CODE}) mid-ingest — the "
            "record was acknowledged (fsynced) but never linked"
        )

        # 5. Restart: the log tail replays through the same
        # incremental path; the orphaned ingest is served.
        restarted = build_service(root, tracer=tracer)
        late_entity = restarted.match(
            Record("q/1", "q", {"name": "canon powershot a560"})
        )
        members = restarted.get(late_entity).members
        assert "late/0" in members, members
        assert restarted.generation == generation
        print(
            f"restarted:  generation {generation} reloaded, log tail "
            f"replayed -> {late_entity} now serves "
            f"members={list(members)}"
        )

        counters = {
            name: counter.value
            for name, counter in sorted(tracer.metrics._counters.items())
            if name.startswith("serve.")
        }
        state = {
            "generation": restarted.generation,
            "log_length": restarted.store.log_length,
            "entities": len(restarted.entities()),
            "counters": counters,
        }
    for name, value in counters.items():
        print(f"  {name:30s} {value:g}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(state, handle, indent=2, sort_keys=True)
        print(f"\nwrote serving stats to {args.json}")


def service_log_length(root) -> int:
    """Log position the doomed ingest will land on (kill target)."""
    from repro.serve import EntityStore

    return EntityStore(root).log_length


if __name__ == "__main__":
    main()
