"""Self-healing walkthrough: workers die, the run completes anyway.

The chaos-soak drill for the supervision layer
(:mod:`repro.supervision`), deterministic end to end:

1. A sharded linkage run executes under a :class:`Supervisor` while a
   ``flap`` fault matrix kills workers on schedule — one shard's
   worker dies on launch *and* on its first restart (the canonical
   flapping worker), another shard's worker dies once. The supervisor
   restarts every victim from its checkpoint namespace, within a
   bounded backoff-governed budget, and the final output is asserted
   **byte-identical** to a serial run that never saw a fault. Zero
   unhandled worker deaths: every ``death`` event is followed by a
   ``restart``, and no shard escalates to ``exhausted``.
2. The serving side demonstrates degraded mode: quarantined ingests
   trip the circuit breaker, writes are shed into the dead-letter log
   while reads keep answering from the last published generation, and
   one successful trial write re-arms the breaker automatically.

Run:  python examples/supervision.py [--json PATH]
      (--json writes the supervisor event-log artifact to PATH)
"""

import argparse
import json

from repro.core import Record
from repro.dist import sharded_resolve
from repro.linkage import (
    StandardBlocker,
    ThresholdClassifier,
    default_product_comparator,
    resolve,
)
from repro.linkage.blocking import first_token_key
from repro.obs import ManualClock, Tracer, observe_supervisor
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.resilience.testing import FaultInjector, crash, flap
from repro.serve import ResolutionService
from repro.supervision import OverloadPolicy, SupervisionPolicy, Supervisor
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


def build_corpus():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=12, seed=7)
    )
    dataset = generate_dataset(world, CorpusConfig(n_sources=4, seed=8))
    return list(dataset.records())


def blocker():
    return StandardBlocker(first_token_key("name", aliases=("item name",)))


def supervised_run(records):
    """The flap matrix: shard A dies twice, shard 2 dies once."""
    injector = FaultInjector(
        # Canonical flapping worker: dead on launch, dead on the first
        # restart, clean on the second (incarnation 3).
        flap(chunk=0, incarnations=(1, 2), max_fires=2),
        # A second, shard-targeted victim: one death, one restart.
        flap(shard=2, chunk=0, incarnations=(1,), max_fires=1),
    )
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        failure="retry",
        fault_injector=injector,
    )
    tracer = Tracer()
    supervisor = Supervisor(
        SupervisionPolicy(max_restarts=2, sleep=lambda seconds: None),
        tracer=tracer,
    )
    run = sharded_resolve(
        records,
        blocker(),
        default_product_comparator(),
        ThresholdClassifier(0.72),
        n_shards=3,
        backend="inline",
        resilience=resilience,
        supervisor=supervisor,
    )
    observe_supervisor(tracer, supervisor)
    return run, supervisor, tracer


def check_zero_unhandled_deaths(supervisor):
    """Every death healed: death -> restart, and nobody exhausted."""
    kinds = [event.kind for event in supervisor.events]
    assert "exhausted" not in kinds, "a shard exceeded its restart budget"
    assert kinds.count("death") == kinds.count("restart"), (
        "a worker death was not answered with a restart"
    )
    per_shard = {}
    for event in supervisor.events:
        per_shard.setdefault(event.shard, []).append(event.kind)
    for shard, timeline in per_shard.items():
        if "death" in timeline:
            assert timeline[-1] == "recovered", (
                f"shard {shard} died but never recovered: {timeline}"
            )


def degraded_serving(root):
    """Trip the breaker, shed writes, keep reading, re-arm."""
    clock = ManualClock(tick=0.0)
    injector = FaultInjector(crash(chunk=2), crash(chunk=3))
    tracer = Tracer()
    service = ResolutionService(
        root,
        key_functions=[first_token_key("name")],
        comparator=default_product_comparator(),
        classifier=ThresholdClassifier(0.72),
        refresh_blocker=StandardBlocker(first_token_key("name")),
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
            failure="skip",
            clock=clock,
            sleep=clock.advance,
            fault_injector=injector,
        ),
        overload=OverloadPolicy(
            max_pending_writes=4,
            failure_threshold=2,
            reset_timeout=5.0,
            shed="dead_letter",
            clock=clock,
        ),
        tracer=tracer,
        durable=False,
    )
    service.ingest(Record("g1", "s0", {"name": "canon eos r5"}))
    service.ingest(Record("g2", "s1", {"name": "canon eos r5"}))
    # Two quarantined links trip the breaker: degraded mode.
    service.ingest(Record("q1", "s0", {"name": "nikon z6"}))
    service.ingest(Record("q2", "s1", {"name": "sony a7"}))
    health = service.health()
    assert health["status"] == "degraded" and health["breaker"] == "open"

    shed = service.ingest(Record("w1", "s2", {"name": "leica q3"}))
    assert shed.shed, "degraded-mode write was not shed"
    probe = service.match(Record("probe", "s9", {"name": "canon eos r5"}))
    assert probe is not None, "reads stopped answering while degraded"

    clock.advance(5.0)  # the breaker's window closes -> half-open
    trial = service.ingest(Record("t1", "s0", {"name": "fuji xt5"}))
    assert trial.entity_id and service.health()["status"] == "ok"
    counters = tracer.metrics.snapshot()["counters"]
    return health, shed, counters


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the supervisor event-log artifact to PATH",
    )
    args = parser.parse_args()

    records = build_corpus()

    # 1. The unfaulted serial baseline the healed run must reproduce.
    serial = resolve(
        records,
        blocker(),
        default_product_comparator(),
        ThresholdClassifier(0.72),
    )
    print(
        f"serial baseline: {len(serial.match_pairs)} matches, "
        f"{len(serial.clusters)} clusters"
    )

    # 2. The supervised run under the flap matrix.
    run, supervisor, tracer = supervised_run(records)
    result = run.result
    assert result.match_pairs == serial.match_pairs
    assert result.scored_edges == serial.scored_edges
    assert result.clusters == serial.clusters
    check_zero_unhandled_deaths(supervisor)
    deaths = sum(1 for e in supervisor.events if e.kind == "death")
    restarts = sum(1 for e in supervisor.events if e.kind == "restart")
    print(
        f"supervised run:  {deaths} worker deaths, {restarts} restarts, "
        f"0 unhandled — output byte-identical to serial"
    )
    for event in supervisor.events:
        detail = f"  ({event.detail})" if event.detail else ""
        print(
            f"  [shard {event.shard} inc {event.incarnation}] "
            f"{event.kind}{detail}"
        )

    # 3. Degraded-mode serving: shed writes, live reads, auto re-arm.
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-supervise-eg-") as root:
        health, shed, serve_counters = degraded_serving(root)
    print(
        "degraded mode:   breaker opened after "
        f"{health['dead_letters']} quarantines; write {shed.record_id!r} "
        "shed to the dead-letter log; reads kept answering; one trial "
        "write re-armed the breaker"
    )
    for name in ("serve.shed", "serve.breaker.opened", "serve.breaker.rearmed"):
        print(f"  {name:30s} {serve_counters.get(name, 0):g}")

    # 4. The machine view: the full supervision event timeline plus the
    #    healing gauges, as one CI artifact.
    if args.json:
        gauges = tracer.metrics.snapshot()["gauges"]
        payload = {
            "events": [event.to_dict() for event in supervisor.events],
            "deaths": deaths,
            "restarts": restarts,
            "unhandled_deaths": 0,
            "healed_shards": gauges["supervision.healed_shards"],
            "max_shard_restarts": gauges["supervision.max_shard_restarts"],
            "serve_counters": serve_counters,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote supervisor event log to {args.json}")


if __name__ == "__main__":
    main()
