"""Flight-status veracity: copy detection against a misinformation cabal.

The canonical fusion war story: dozens of flight-status sites, many of
them scraping each other, some replicating a wrong departure gate. A
traveller checking "enough" websites gets the wrong gate *more*
confidently. This example plants exactly that scenario in the claim
generator and shows majority voting being flipped by the cabal while
copy-aware fusion recovers both the truth and the copying structure.

Run:  python examples/flight_status_veracity.py
"""

from repro.fusion import AccuCopy, AccuVote, VotingFuser
from repro.quality import (
    copy_detection_quality,
    fusion_accuracy,
    render_kv,
    render_table,
)
from repro.synth import ClaimWorldConfig, generate_claims


def main() -> None:
    # 6 honest-but-imperfect feeds; one sloppy aggregator (35% accurate)
    # scraped nearly verbatim by 7 mirror sites.
    planted = generate_claims(
        ClaimWorldConfig(
            n_items=200,          # flight × attribute data items
            n_independent=7,
            n_copiers=7,
            accuracy_range=(0.6, 0.9),
            parent_pool=1,
            parent_accuracy=0.35,
            copy_rate=0.95,
            n_false_values=3,     # few plausible wrong gates/times
            seed=23,
        )
    )
    claims = planted.claims
    print(render_kv(
        [
            ("data items", len(claims.items())),
            ("sources", len(claims.sources())),
            ("planted mirrors", len(planted.copier_of)),
            ("mirrored parent accuracy", 0.35),
        ],
        title="scenario",
    ))

    rows = []
    results = {}
    for fuser in (VotingFuser(), AccuVote(n_false_values=3),
                  AccuCopy(n_false_values=3)):
        result = fuser.fuse(claims)
        results[fuser.name] = result
        rows.append([fuser.name, fusion_accuracy(result, planted.truth)])
    print()
    print(render_table(["method", "accuracy"], rows,
                       title="who gets the gates right?"))

    accucopy = results["accucopy"]
    detection = copy_detection_quality(
        accucopy.copy_probability, planted.copier_of, include_siblings=True
    )
    flagged = sorted(
        (pair for pair, p in accucopy.copy_probability.items() if p >= 0.5),
        key=lambda pair: -accucopy.copy_probability[pair],
    )
    print()
    print(render_kv(
        [
            ("dependence pairs flagged", len(flagged)),
            ("copy detection precision", round(detection.precision, 3)),
            ("copy detection recall", round(detection.recall, 3)),
            ("top flagged pair", " ~ ".join(flagged[0]) if flagged else "-"),
        ],
        title="unmasking the mirrors",
    ))

    # Estimated accuracies: the cabal should be rated low by AccuCopy.
    mirror_estimates = [
        accucopy.source_accuracy[s] for s in planted.copier_of
    ]
    honest = [
        s for s in claims.sources()
        if s not in planted.copier_of
        and s not in set(planted.copier_of.values())
    ]
    honest_estimates = [accucopy.source_accuracy[s] for s in honest]
    print()
    print(render_kv(
        [
            ("mean estimated accuracy, mirrors",
             round(sum(mirror_estimates) / len(mirror_estimates), 3)),
            ("mean estimated accuracy, honest feeds",
             round(sum(honest_estimates) / len(honest_estimates), 3)),
        ],
        title="trust assignment",
    ))


if __name__ == "__main__":
    main()
