"""Crash-recovery walkthrough: kill a real run, resume it, lose nothing.

A long integration run dies for boring reasons — OOM killer, deploy
restart, spot-instance reclaim — and without checkpointing the only
remedy is recomputing from scratch. This example murders a real
pipeline run and brings it back:

1. A sacrificial subprocess runs ``BDIPipeline.run(checkpoint=...)``
   with an injected ``kill`` fault: at comparison chunk 2 of the
   linkage stage the process dies via ``os._exit(137)`` — no stack
   unwinding, no cleanup, the faithful model of ``kill -9``.
2. The run store it left behind is inspected: the manifest's stage
   ledger shows which stages completed, and the chunk artifacts show
   exactly how much linkage work survived.
3. The *same* configuration resumes from the store in this process:
   completed stages are skipped, completed chunks are replayed, and
   the result is identical to a run that never died (asserted).
4. A *different* configuration is refused: the store's config
   fingerprint does not match, and resuming raises
   :class:`~repro.recovery.CheckpointMismatchError` instead of
   silently mixing two runs' artifacts.

Run:  python examples/recovery.py [--json PATH]
      (--json writes the run-store manifest artifact to PATH)
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

from repro.core import Dataset, Record, Source
from repro.core.pipeline import BDIPipeline, PipelineConfig
from repro.obs import Tracer
from repro.recovery import CheckpointMismatchError, RunStore
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.resilience.testing import KILL_EXIT_CODE, FaultInjector, kill

KILL_CHUNK = 2


def build_dataset():
    """Three sources, twelve records each, six entities — enough pairs
    for the linkage stage to cut several comparison chunks."""
    sources = []
    for s in range(3):
        records = [
            Record(
                f"s{s}r{i}",
                f"src{s}",
                {
                    "title": f"widget model {i % 6} deluxe",
                    "brand": ["acme", "acme", "bolt"][s],
                    "price": str(10 + (i % 6)),
                },
            )
            for i in range(12)
        ]
        sources.append(Source(f"src{s}", records))
    return Dataset(sources)


def pipeline_config(doomed: bool) -> PipelineConfig:
    """The run configuration — identical either way, because the fault
    injector (like the clock) is non-semantic and excluded from the
    config fingerprint: the killed run and the resuming run must
    fingerprint the same or resume would be refused."""
    injector = (
        FaultInjector(kill(chunk=KILL_CHUNK, attempts=1))
        if doomed
        else None
    )
    return PipelineConfig(
        fusion="truthfinder",
        n_workers=4,  # deterministic chunk boundaries
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            failure="retry",
            fault_injector=injector,
        ),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the run-store manifest artifact to PATH",
    )
    parser.add_argument(
        "--doomed",
        metavar="STORE",
        help=argparse.SUPPRESS,  # internal: the sacrificial run
    )
    args = parser.parse_args()

    if args.doomed:
        # The sacrificial subprocess: dies at chunk 2, mid-linkage.
        BDIPipeline(pipeline_config(doomed=True)).run(
            build_dataset(), checkpoint=args.doomed
        )
        raise SystemExit("unreachable: the kill fault should have fired")

    dataset = build_dataset()
    baseline = BDIPipeline(pipeline_config(doomed=False)).run(dataset)
    print(f"fault-free run:  {len(baseline.entity_table)} entities fused")

    with tempfile.TemporaryDirectory() as root:
        # 1. Murder a real run at a deterministic chunk boundary.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH", "")])
        )
        process = subprocess.run(
            [sys.executable, __file__, "--doomed", root],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        assert process.returncode == KILL_EXIT_CODE, process.returncode
        print(f"killed run:      os._exit({KILL_EXIT_CODE}) at linkage "
              f"chunk {KILL_CHUNK} — no unwinding, no cleanup")

        # 2. What the corpse left behind: a durable ledger + artifacts.
        store = RunStore(root)
        chunks = [key for key in store.keys() if ".chunk." in key]
        print(f"run store:       stages {list(store.completed_stages())} "
              f"complete, {len(chunks)} linkage chunks checkpointed, "
              f"completed={store.completed}")

        # 3. Resume under the same config: skip, replay, finish.
        tracer = Tracer()
        resumed = BDIPipeline(pipeline_config(doomed=False)).run(
            dataset, tracer=tracer, checkpoint=root
        )
        assert resumed.entity_table == baseline.entity_table
        assert resumed.fusion.chosen == baseline.fusion.chosen
        assert sorted(map(sorted, resumed.clusters)) == sorted(
            map(sorted, baseline.clusters)
        )
        counters = tracer.report().metrics.get("counters", {})
        print("resumed run:     output identical to the fault-free run")
        for name in (
            "recovery.stages_skipped",
            "recovery.chunks_replayed",
            "recovery.loads",
            "recovery.saves",
        ):
            if name in counters:
                print(f"  {name:30s} {counters[name]:g}")
        manifest = RunStore(root).manifest

        # 4. A different run is refused — checkpoints never mix.
        try:
            BDIPipeline(
                PipelineConfig(fusion="vote", n_workers=4)
            ).run(dataset, checkpoint=root)
        except CheckpointMismatchError as error:
            print(f"changed config:  refused — {error}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        print(f"\nwrote run-store manifest to {args.json}")


if __name__ == "__main__":
    main()
