"""Legacy setup shim: the offline environment lacks the `wheel` package,
so editable installs go through `setup.py develop` instead of PEP 660."""

from setuptools import setup

setup()
