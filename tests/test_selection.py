"""Tests for source profiling, marginal gain, and greedy selection."""

import pytest

from repro.core import ConfigurationError
from repro.fusion import AccuVote, VotingFuser
from repro.selection import (
    GreedySourceSelector,
    baseline_order,
    expected_accuracy,
    marginal_gain,
    profile_sources,
    true_accuracy,
)
from repro.synth import ClaimWorldConfig, generate_claims


@pytest.fixture(scope="module")
def world():
    return generate_claims(
        ClaimWorldConfig(
            n_items=150,
            n_independent=12,
            accuracy_range=(0.4, 0.95),
            coverage=0.8,
            n_false_values=4,
            seed=31,
        )
    )


class TestProfiles:
    def test_coverage_reflects_claims(self, world):
        stats = profile_sources(world.claims)
        for source, stat in stats.items():
            assert stat.coverage == pytest.approx(
                len(world.claims.claims_by(source)) / 150
            )

    def test_accuracy_against_reference(self, world):
        stats = profile_sources(world.claims, reference_truth=world.truth)
        for source, stat in stats.items():
            assert stat.accuracy_estimate == pytest.approx(
                world.accuracies[source], abs=0.15
            )

    def test_majority_bootstrap_correlates_with_truth(self, world):
        bootstrap = profile_sources(world.claims)
        sources = sorted(world.accuracies, key=world.accuracies.get)
        worst, best = sources[0], sources[-1]
        assert (
            bootstrap[best].accuracy_estimate
            > bootstrap[worst].accuracy_estimate
        )


class TestGain:
    def test_expected_accuracy_empty_is_zero(self, world):
        assert expected_accuracy(world.claims, [], VotingFuser()) == 0.0

    def test_expected_accuracy_grows_with_good_sources(self, world):
        fuser = AccuVote(n_false_values=4)
        ordered = baseline_order(
            world.claims, "accuracy", reference_truth=world.truth
        )
        few = expected_accuracy(world.claims, ordered[:2], fuser)
        more = expected_accuracy(world.claims, ordered[:6], fuser)
        assert more > few

    def test_marginal_gain_definition(self, world):
        fuser = VotingFuser()
        sources = list(world.claims.sources())
        gain = marginal_gain(world.claims, sources[:2], sources[2], fuser)
        before = expected_accuracy(world.claims, sources[:2], fuser)
        after = expected_accuracy(world.claims, sources[:3], fuser)
        assert gain == pytest.approx(after - before)

    def test_true_accuracy_counts_coverage(self, world):
        fuser = VotingFuser()
        single = true_accuracy(
            world.claims, [world.claims.sources()[0]], fuser, world.truth
        )
        # One 80%-coverage source can answer at most 80% of items.
        assert single <= 0.85


class TestGreedy:
    def test_selects_all_without_stopping(self, world):
        selector = GreedySourceSelector(VotingFuser())
        result = selector.select(world.claims)
        assert len(result.order) == 12
        assert not result.stopped_early

    def test_first_pick_is_high_value(self, world):
        selector = GreedySourceSelector(AccuVote(n_false_values=4))
        result = selector.select(world.claims)
        first = result.order[0]
        utility = {
            s: world.accuracies[s]
            * len(world.claims.claims_by(s))
            for s in world.claims.sources()
        }
        ranked = sorted(utility, key=utility.get, reverse=True)
        assert first in ranked[:4]

    def test_stops_when_unprofitable(self, world):
        selector = GreedySourceSelector(
            VotingFuser(),
            cost_weight=0.05,
            stop_when_unprofitable=True,
        )
        result = selector.select(world.claims)
        assert result.stopped_early
        assert len(result.order) < 12

    def test_max_sources_cap(self, world):
        selector = GreedySourceSelector(VotingFuser(), max_sources=3)
        result = selector.select(world.claims)
        assert len(result.order) == 3

    def test_cumulative_profit_shape(self, world):
        selector = GreedySourceSelector(VotingFuser(), cost_weight=0.03)
        result = selector.select(world.claims)
        profits = result.cumulative_profit()
        # Profit peaks somewhere strictly before the end (less is more).
        assert max(profits) > profits[-1] - 1e-12

    def test_invalid_cost_weight(self):
        with pytest.raises(ConfigurationError):
            GreedySourceSelector(VotingFuser(), cost_weight=-1)


class TestBaselines:
    def test_random_is_permutation(self, world):
        order = baseline_order(world.claims, "random", seed=3)
        assert sorted(order) == sorted(world.claims.sources())

    def test_random_seed_deterministic(self, world):
        assert baseline_order(world.claims, "random", seed=3) == (
            baseline_order(world.claims, "random", seed=3)
        )

    def test_coverage_order(self, world):
        order = baseline_order(world.claims, "coverage")
        coverages = [len(world.claims.claims_by(s)) for s in order]
        assert coverages == sorted(coverages, reverse=True)

    def test_accuracy_order_with_reference(self, world):
        order = baseline_order(
            world.claims, "accuracy", reference_truth=world.truth
        )
        # The ordering follows each source's *empirical* accuracy
        # against the reference truth, not the planted probability.
        def empirical(source):
            claims = world.claims.claims_by(source)
            correct = sum(
                1 for c in claims if world.truth[c.item_id] == c.value
            )
            return correct / len(claims)

        accuracies = [empirical(s) for s in order]
        assert accuracies == sorted(accuracies, reverse=True)

    def test_unknown_strategy(self, world):
        with pytest.raises(ConfigurationError):
            baseline_order(world.claims, "zap")
