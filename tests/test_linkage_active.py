"""Tests for active-learning match classification."""

import pytest

from repro.core import ConfigurationError, EmptyInputError
from repro.linkage import (
    ActiveThresholdLearner,
    ComparisonVector,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    noisy_oracle,
)
from repro.quality import pair_quality
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


def vector(a, b, score):
    return ComparisonVector(a, b, (score,), score)


@pytest.fixture(scope="module")
def corpus_vectors():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=40, seed=3)
    )
    dataset = generate_dataset(
        world, CorpusConfig(n_sources=8, typo_rate=0.05, seed=5)
    )
    records = list(dataset.records())
    by_id = {r.record_id: r for r in records}
    comparator = default_product_comparator()
    candidates = TokenBlocker(max_block_size=50).block(records)
    vectors = [
        comparator.compare(by_id[a], by_id[b])
        for a, b in (
            sorted(pair)
            for pair in sorted(candidates.candidate_pairs(), key=sorted)
        )
    ]
    return dataset, vectors


class TestNoisyOracle:
    def test_zero_noise_is_truth(self):
        oracle = noisy_oracle(lambda a, b: a == b, 0.0)
        assert oracle("x", "x") is True
        assert oracle("x", "y") is False

    def test_noise_flips_deterministically(self):
        oracle = noisy_oracle(lambda a, b: True, 0.4, seed=7)
        answers = {oracle(f"a{i}", f"b{i}") for i in range(50)}
        assert answers == {True, False}
        # Repeat queries agree with themselves.
        assert all(
            oracle(f"a{i}", f"b{i}") == oracle(f"a{i}", f"b{i}")
            for i in range(20)
        )

    def test_invalid_noise(self):
        with pytest.raises(ConfigurationError):
            noisy_oracle(lambda a, b: True, 0.6)


class TestLearnerMechanics:
    def test_requires_vectors(self):
        with pytest.raises(EmptyInputError):
            ActiveThresholdLearner([])

    def test_invalid_params(self):
        vectors = [vector("a", "b", 0.5)]
        with pytest.raises(ConfigurationError):
            ActiveThresholdLearner(vectors, batch_size=0)
        with pytest.raises(ConfigurationError):
            ActiveThresholdLearner(vectors, strategy="psychic")
        with pytest.raises(ConfigurationError):
            ActiveThresholdLearner(vectors, exploration=1.5)

    def test_never_relabels_a_pair(self):
        vectors = [vector(f"a{i}", f"b{i}", i / 10) for i in range(10)]
        learner = ActiveThresholdLearner(vectors, batch_size=4)
        oracle = lambda a, b: True
        assert learner.run_round(oracle) == 4
        assert learner.run_round(oracle) == 4
        assert learner.run_round(oracle) == 2  # only 2 left
        assert learner.run_round(oracle) == 0
        keys = [(p.left_id, p.right_id) for p in learner.labeled]
        assert len(keys) == len(set(keys)) == 10

    def test_learns_clean_separation(self):
        vectors = [vector(f"m{i}", f"m{i}'", 0.9) for i in range(10)]
        vectors += [vector(f"u{i}", f"u{i}'", 0.1) for i in range(10)]
        truth = {frozenset((v.left_id, v.right_id)) for v in vectors[:10]}
        learner = ActiveThresholdLearner(vectors, batch_size=6, seed=1)
        oracle = lambda a, b: frozenset((a, b)) in truth
        for __ in range(3):
            learner.run_round(oracle)
        assert 0.1 < learner.threshold < 0.9
        assert learner.predict_matches() == truth

    def test_one_class_labels_move_threshold_conservatively(self):
        vectors = [vector(f"u{i}", f"u{i}'", 0.3 + i / 100) for i in range(8)]
        learner = ActiveThresholdLearner(
            vectors, batch_size=4, initial_threshold=0.5
        )
        learner.run_round(lambda a, b: False)  # everything non-match
        assert learner.predict_matches() == set()


class TestLearnerQuality:
    def test_uncertainty_beats_random_under_budget(self, corpus_vectors):
        dataset, vectors = corpus_vectors
        truth = dataset.ground_truth
        oracle = noisy_oracle(truth.are_match, noise_rate=0.05, seed=1)

        def final_f1(strategy):
            f1s = []
            for seed in (2, 3, 4):
                learner = ActiveThresholdLearner(
                    vectors, batch_size=10, strategy=strategy, seed=seed
                )
                for __ in range(4):
                    learner.run_round(oracle)
                f1s.append(
                    pair_quality(learner.predict_matches(), truth).f1
                )
            return sum(f1s) / len(f1s)

        assert final_f1("uncertainty") >= final_f1("random") - 0.01

    def test_approaches_oracle_tuned_threshold(self, corpus_vectors):
        dataset, vectors = corpus_vectors
        truth = dataset.ground_truth
        oracle = noisy_oracle(truth.are_match, noise_rate=0.0, seed=1)
        learner = ActiveThresholdLearner(vectors, batch_size=15, seed=2)
        for __ in range(4):
            learner.run_round(oracle)
        learned = pair_quality(learner.predict_matches(), truth).f1
        # Sweep thresholds for the best achievable with this comparator.
        best = max(
            pair_quality(
                {
                    frozenset((v.left_id, v.right_id))
                    for v in vectors
                    if v.score >= threshold
                },
                truth,
            ).f1
            for threshold in [t / 20 for t in range(1, 20)]
        )
        assert learned > best - 0.06
