"""Unit tests for tokenizers and phonetic codes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import qgrams, shingles, soundex, word_tokens


class TestWordTokens:
    def test_splits_on_punctuation(self):
        assert word_tokens("Canon-EOS 5D!") == ["canon", "eos", "5d"]

    def test_empty(self):
        assert word_tokens("") == []
        assert word_tokens("!!!") == []


class TestQgrams:
    def test_padded_bigrams(self):
        assert qgrams("abc", q=2) == ["#a", "ab", "bc", "c$"]

    def test_unpadded(self):
        assert qgrams("abcd", q=3, pad=False) == ["abc", "bcd"]

    def test_q1_equals_characters(self):
        assert qgrams("ab", q=1) == ["a", "b"]

    def test_short_string(self):
        assert qgrams("a", q=3, pad=False) == ["a"]

    def test_empty_string(self):
        assert qgrams("", q=3, pad=False) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    @given(st.text(max_size=20), st.integers(min_value=1, max_value=5))
    def test_count_formula_unpadded(self, text, q):
        grams = qgrams(text, q=q, pad=False)
        lowered = text.lower()
        if len(lowered) >= q:
            assert len(grams) == len(lowered) - q + 1


class TestShingles:
    def test_bigrams(self):
        assert shingles("big data integration", n=2) == [
            "big data",
            "data integration",
        ]

    def test_short_input(self):
        assert shingles("big", n=2) == ["big"]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            shingles("a b", n=0)


class TestSoundex:
    @pytest.mark.parametrize(
        "word,code",
        [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"),
            ("Tymczak", "T522"),
            ("Pfister", "P236"),
            ("Honeyman", "H555"),
        ],
    )
    def test_reference_values(self, word, code):
        assert soundex(word) == code

    def test_sound_alikes_collide(self):
        assert soundex("smith") == soundex("smyth")

    def test_non_alpha(self):
        assert soundex("123") == "0000"
        assert soundex("") == "0000"

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=1, max_size=12))
    def test_always_four_characters(self, word):
        code = soundex(word)
        assert len(code) == 4
        assert code[0].isalpha() and code[0].isupper()
