"""Tests for the observability subsystem (repro.obs).

Covers span nesting and injectable-clock determinism, the metrics
instruments (counters, gauges, fixed-bucket histograms), the
cross-worker snapshot/merge collection protocol, RunReport JSON
round-trips and text rendering, NullTracer inertness, the engine's
zeroed-report edge cases, and an end-to-end pipeline run asserting a
span per stage with nonzero engine counters.
"""

import json

import pytest

from repro.core.pipeline import BDIPipeline, PipelineConfig
from repro.linkage import (
    ParallelComparisonEngine,
    ThresholdClassifier,
    default_product_comparator,
)
from repro.obs import (
    NULL_TRACER,
    ManualClock,
    MetricsRegistry,
    NullTracer,
    RunReport,
    Tracer,
    observe_block_collection,
    observe_candidate_pruning,
    observe_text_caches,
)
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


@pytest.fixture(scope="module")
def dataset():
    world = generate_world(
        WorldConfig(
            categories=("camera",), entities_per_category=10, seed=11
        )
    )
    return generate_dataset(
        world, CorpusConfig(n_sources=4, typo_rate=0.05, seed=12)
    )


class TestManualClock:
    def test_readings_advance_by_tick(self):
        clock = ManualClock(start=100.0, tick=0.5)
        assert clock.now() == 100.0
        assert clock.now() == 100.5
        clock.advance(10.0)
        assert clock.now() == 111.0

    def test_span_durations_exact(self):
        tracer = Tracer(clock=ManualClock(start=0.0, tick=1.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        # Clock reads: outer start=0, inner start=1, inner end=2,
        # outer end=3 — durations are exact, not flaky wall time.
        assert outer.start == 0.0 and outer.end == 3.0
        assert outer.duration == 3.0
        assert inner.start == 1.0 and inner.end == 2.0
        assert inner.duration == 1.0


class TestSpans:
    def test_nesting_and_attributes(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a", mode="x") as a:
            assert tracer.current() is a
            with tracer.span("b") as b:
                b.set("n", 3)
            with tracer.span("c"):
                pass
        assert tracer.current() is None
        assert [span.name for span in tracer.roots] == ["a"]
        assert [child.name for child in tracer.roots[0].children] == [
            "b",
            "c",
        ]
        assert tracer.roots[0].attributes == {"mode": "x"}
        assert tracer.roots[0].find("b").attributes == {"n": 3}

    def test_span_closes_on_exception(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(RuntimeError):
            with tracer.span("fails"):
                raise RuntimeError("boom")
        assert tracer.current() is None
        assert tracer.roots[0].end is not None


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("x") is counter
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("ratio")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.value == 0.75

    def test_histogram_bucket_placement(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", buckets=(2, 4, 8))
        histogram.observe_many([1, 2, 3, 8, 9])
        # bounds are inclusive upper edges; the extra slot is overflow
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == 23
        assert histogram.min == 1 and histogram.max == 9
        assert histogram.mean == pytest.approx(4.6)

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(3, 1, 2))
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())

    def test_histogram_re_registration_requires_same_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1, 2))
        assert registry.histogram("h") is registry.histogram("h")
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1, 2, 3))


class TestCollectionProtocol:
    def test_snapshot_is_plain_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1, 2)).observe(1)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_adds_counters_and_buckets(self):
        worker = MetricsRegistry()
        worker.counter("pairs").inc(10)
        worker.gauge("load").set(0.9)
        worker.histogram("scores", buckets=(0.5, 1.0)).observe_many(
            [0.4, 0.9]
        )
        parent = MetricsRegistry()
        parent.counter("pairs").inc(5)
        parent.gauge("load").set(0.1)
        parent.histogram("scores", buckets=(0.5, 1.0)).observe(0.2)
        parent.merge(worker.snapshot())
        merged = parent.snapshot()
        assert merged["counters"]["pairs"] == 15
        assert merged["gauges"]["load"] == 0.9  # last writer wins
        histogram = merged["histograms"]["scores"]
        assert histogram["counts"] == [2, 1, 0]
        assert histogram["count"] == 3
        assert histogram["min"] == 0.2 and histogram["max"] == 0.9

    def test_merge_rejects_mismatched_buckets(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1, 2)).observe(1)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(5, 10))
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())

    def test_merge_counters_degenerate_form(self):
        parent = MetricsRegistry()
        parent.counter("engine.hits").inc(1)
        parent.merge_counters({"engine.hits": 4, "engine.misses": 2})
        snapshot = parent.snapshot()
        assert snapshot["counters"]["engine.hits"] == 5
        assert snapshot["counters"]["engine.misses"] == 2


class TestRunReport:
    @pytest.fixture()
    def report(self):
        tracer = Tracer(clock=ManualClock(start=0.0, tick=0.25))
        with tracer.span("pipeline.run", n_records=40):
            with tracer.span("pipeline.schema_alignment"):
                pass
            with tracer.span("pipeline.record_linkage") as span:
                span.set("n_clusters", 7)
        tracer.counter("engine.pairs_total").inc(100)
        tracer.gauge("text.cache.hit_ratio").set(0.875)
        tracer.histogram("engine.match_score", (0.5, 1.0)).observe_many(
            [0.6, 0.8, 0.9]
        )
        return tracer.report(name="demo")

    def test_json_round_trip_lossless(self, report):
        clone = RunReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()
        assert clone.span_names() == report.span_names()

    def test_span_lookup(self, report):
        assert report.span_names() == [
            "pipeline.run",
            "pipeline.schema_alignment",
            "pipeline.record_linkage",
        ]
        linkage = report.find_span("pipeline.record_linkage")
        assert linkage.attributes["n_clusters"] == 7
        assert report.find_span("nope") is None

    def test_render_tree_and_metrics(self, report):
        text = report.render()
        assert "run report: demo" in text
        assert "└─ pipeline.run" in text
        assert "├─ pipeline.schema_alignment" in text
        assert "└─ pipeline.record_linkage" in text
        assert "n_clusters=7" in text
        assert "engine.pairs_total" in text
        assert "engine.match_score" in text
        assert "count=3" in text


class TestNullTracer:
    def test_everything_is_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("anything", n=1) as span:
            span.set("ignored", True)
            assert tracer.current() is None
        tracer.counter("c").inc(5)
        tracer.gauge("g").set(1.0)
        tracer.histogram("h").observe(3.0)
        assert tracer.time() == 0.0
        report = tracer.report()
        assert report.spans == [] and report.metrics == {}

    def test_shared_singletons(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")
        assert tracer.counter("a") is tracer.histogram("b")
        assert NULL_TRACER.enabled is False


class TestInstrumentHelpers:
    def test_observe_candidate_pruning(self):
        tracer = Tracer(clock=ManualClock())
        observe_candidate_pruning(tracer, 100, 40)
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["metablocking.pairs_before"] == 100
        assert counters["metablocking.pairs_retained"] == 40
        assert counters["metablocking.pairs_pruned"] == 60

    def test_observe_text_caches_reports_ratio(self):
        from repro.text import MEMO_CACHES, normalize_value

        normalize_value.cache_clear()
        normalize_value("Some Value")
        normalize_value("Some Value")  # hit
        tracer = Tracer(clock=ManualClock())
        observe_text_caches(tracer)
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["text.normalize_value.cache_hits"] >= 1
        assert gauges["text.normalize_value.cache_misses"] >= 1
        assert 0.0 < gauges["text.normalize_value.cache_hit_ratio"] <= 1.0
        assert set(MEMO_CACHES) == {"normalize_value", "word_tokens"}


class TestEngineEdgeCases:
    def test_empty_pair_list_zeroed_report(self):
        tracer = Tracer(clock=ManualClock())
        engine = ParallelComparisonEngine(
            default_product_comparator(), tracer=tracer
        )
        run = engine.match_pairs({}, [], ThresholdClassifier(0.7))
        assert run.n_pairs == 0 and run.match_pairs == set()
        counters = tracer.metrics.snapshot()["counters"]
        for name in (
            "engine.pairs_total",
            "engine.pairs_matched",
            "engine.pairs_early_exit",
            "engine.prepared_cache_hits",
            "engine.prepared_cache_misses",
        ):
            assert counters[name] == 0

    def test_empty_pair_list_process_backend(self):
        tracer = Tracer(clock=ManualClock())
        engine = ParallelComparisonEngine(
            default_product_comparator(),
            execution="process",
            n_workers=2,
            tracer=tracer,
        )
        run = engine.match_pairs({}, [], ThresholdClassifier(0.7))
        assert run.n_pairs == 0
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["engine.pairs_total"] == 0
        assert counters["engine.chunks"] == 0

    @pytest.mark.slow
    def test_fewer_pairs_than_workers(self, dataset):
        records = list(dataset.records())[:4]
        by_id = {record.record_id: record for record in records}
        ids = sorted(by_id)
        pairs = [(ids[0], ids[1]), (ids[2], ids[3])]
        tracer = Tracer(clock=ManualClock())
        engine = ParallelComparisonEngine(
            default_product_comparator(),
            execution="process",
            n_workers=4,
            tracer=tracer,
        )
        run = engine.match_pairs(by_id, pairs, ThresholdClassifier(0.7))
        assert run.n_pairs == 2
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["engine.pairs_total"] == 2
        assert 1 <= counters["engine.chunks"] <= 2
        assert (
            counters["engine.prepared_cache_hits"]
            + counters["engine.prepared_cache_misses"]
            == 4
        )


class TestPipelineInstrumented:
    STAGES = (
        "pipeline.run",
        "pipeline.schema_alignment",
        "pipeline.record_linkage",
        "pipeline.claims",
        "pipeline.fusion",
        "pipeline.entity_table",
    )

    def test_span_per_stage_with_counts(self, dataset):
        tracer = Tracer()
        pipeline = BDIPipeline(PipelineConfig(fusion="truthfinder"))
        result = pipeline.run(dataset, tracer=tracer)
        report = tracer.report(name="pipeline")
        names = report.span_names()
        for stage in self.STAGES:
            assert stage in names
        run_span = report.find_span("pipeline.run")
        assert run_span.attributes["n_records"] == len(
            list(dataset.records())
        )
        assert run_span.attributes["n_clusters"] == len(result.clusters)
        linkage = report.find_span("pipeline.record_linkage")
        assert linkage.attributes["n_clusters"] == len(result.clusters)
        # engine spans nest under the linkage stage
        assert linkage.find("engine.match_pairs") is not None
        fusion = report.find_span("fusion.truthfinder")
        assert fusion is not None
        assert len(fusion.attributes["deltas"]) >= 1

    def test_counters_nonzero_and_json_round_trip(self, dataset):
        result, report = BDIPipeline().run_instrumented(dataset)
        assert result.entity_table
        counters = report.metrics["counters"]
        assert counters["engine.pairs_total"] > 0
        assert counters["engine.pairs_early_exit"] > 0
        assert counters["engine.prepared_cache_hits"] > 0
        assert counters["blocking.blocks_built"] > 0
        assert counters["pipeline.records"] > 0
        gauges = report.metrics["gauges"]
        assert "text.normalize_value.cache_hit_ratio" in gauges
        clone = RunReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()

    def test_default_run_is_uninstrumented(self, dataset):
        # No tracer: the NullTracer path must not grow any state.
        result = BDIPipeline().run(dataset)
        assert result.entity_table
