"""Tests for dataset/claims persistence round-trips."""

import json

import pytest

from repro.core import DataModelError, Dataset, GroundTruth, Record, Source
from repro.fusion import Claim, ClaimSet
from repro.io import (
    load_claims,
    load_dataset,
    load_truth,
    save_claims,
    save_dataset,
    save_truth,
)
from repro.synth import FourVKnobs, build_corpus


@pytest.fixture
def dataset():
    source = Source(
        "shop.example",
        [
            Record("shop.example/0", "shop.example",
                   {"name": "canon x", "prix": "12,50 €"}, timestamp=2.0),
            Record("shop.example/1", "shop.example", {"name": "nikon y"}),
        ],
        cost=1.5,
        metadata={"category": "camera"},
    )
    truth = GroundTruth(
        {"shop.example/0": "e0", "shop.example/1": "e1"},
        true_values={("e0", "name"): "canon x"},
        attribute_to_mediated={("shop.example", "prix"): "price"},
    )
    return Dataset([source], truth, name="round-trip")


class TestDatasetRoundTrip:
    def test_exact_round_trip(self, dataset, tmp_path):
        save_dataset(dataset, tmp_path / "corpus")
        loaded = load_dataset(tmp_path / "corpus")
        assert loaded.name == dataset.name
        assert loaded.source_ids == dataset.source_ids
        assert loaded.source("shop.example").cost == 1.5
        assert loaded.source("shop.example").metadata == {
            "category": "camera"
        }
        for record in dataset.records():
            restored = loaded.record(record.record_id)
            assert restored == record

    def test_ground_truth_round_trip(self, dataset, tmp_path):
        save_dataset(dataset, tmp_path / "corpus")
        loaded = load_dataset(tmp_path / "corpus")
        truth = loaded.ground_truth
        assert truth.entity_of("shop.example/0") == "e0"
        assert truth.true_value("e0", "name") == "canon x"
        assert truth.mediated_attribute("shop.example", "prix") == "price"

    def test_unicode_survives(self, dataset, tmp_path):
        save_dataset(dataset, tmp_path / "corpus")
        loaded = load_dataset(tmp_path / "corpus")
        assert loaded.record("shop.example/0")["prix"] == "12,50 €"

    def test_dataset_without_truth(self, tmp_path):
        bare = Dataset(
            [Source("s", [Record("s/0", "s", {"a": "1"})])], name="bare"
        )
        save_dataset(bare, tmp_path / "bare")
        loaded = load_dataset(tmp_path / "bare")
        assert loaded.ground_truth is None
        assert loaded.n_records == 1

    def test_missing_files(self, tmp_path):
        with pytest.raises(DataModelError):
            load_dataset(tmp_path / "ghost")

    def test_bad_version_rejected(self, dataset, tmp_path):
        __, meta_path = save_dataset(dataset, tmp_path / "corpus")
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(DataModelError):
            load_dataset(tmp_path / "corpus")

    def test_corrupt_jsonl_reported_with_line(self, dataset, tmp_path):
        records_path, __ = save_dataset(dataset, tmp_path / "corpus")
        records_path.write_text(
            records_path.read_text() + "{not json\n"
        )
        with pytest.raises(DataModelError, match=":3"):
            load_dataset(tmp_path / "corpus")

    def test_synthetic_corpus_round_trip(self, tmp_path):
        corpus = build_corpus(FourVKnobs(volume=0.02, seed=9))
        save_dataset(corpus.dataset, tmp_path / "synth")
        loaded = load_dataset(tmp_path / "synth")
        assert loaded.n_records == corpus.dataset.n_records
        assert (
            loaded.ground_truth.record_to_entity
            == corpus.dataset.ground_truth.record_to_entity
        )


class TestClaimsRoundTrip:
    def test_round_trip(self, tmp_path):
        claims = ClaimSet(
            [Claim("s1", "i1", "a,b"), Claim("s2", "i1", "c")]
        )
        path = save_claims(claims, tmp_path / "claims.csv")
        loaded = load_claims(path)
        assert [
            (c.source_id, c.item_id, c.value) for c in loaded
        ] == [(c.source_id, c.item_id, c.value) for c in claims]

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DataModelError):
            load_claims(path)

    def test_bad_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("source,item,value\nonly,two\n")
        with pytest.raises(DataModelError):
            load_claims(path)

    def test_truth_round_trip(self, tmp_path):
        truth = {"i1": "x", "i2": "y"}
        path = save_truth(truth, tmp_path / "truth.csv")
        assert load_truth(path) == truth

    def test_truth_duplicate_item_rejected(self, tmp_path):
        path = tmp_path / "truth.csv"
        path.write_text("item,value\ni1,x\ni1,y\n")
        with pytest.raises(DataModelError):
            load_truth(path)
