"""Tests for the blocking graph and meta-blocking pruning schemes."""

import pytest

from repro.core import ConfigurationError
from repro.linkage import Block, BlockCollection, build_blocking_graph, meta_block


@pytest.fixture
def blocks():
    # r1/r2 co-occur in three blocks (strong); r3 brushes past r1 once.
    return BlockCollection(
        [
            Block("k1", ("r1", "r2")),
            Block("k2", ("r1", "r2")),
            Block("k3", ("r1", "r2", "r3")),
            Block("k4", ("r3", "r4")),
        ]
    )


class TestBlockingGraph:
    def test_cbs_weights(self, blocks):
        graph = build_blocking_graph(blocks, weight="cbs")
        weights = graph.weights
        assert weights[frozenset(("r1", "r2"))] == 3.0
        assert weights[frozenset(("r1", "r3"))] == 1.0

    def test_js_weights(self, blocks):
        graph = build_blocking_graph(blocks, weight="js")
        weights = graph.weights
        # r1 in 3 blocks, r2 in 3 blocks, shared 3 → 3/(3+3-3) = 1.
        assert weights[frozenset(("r1", "r2"))] == pytest.approx(1.0)
        # r1 (3 blocks) vs r3 (2 blocks), shared 1 → 1/4.
        assert weights[frozenset(("r1", "r3"))] == pytest.approx(0.25)

    def test_arcs_weights_discount_big_blocks(self, blocks):
        graph = build_blocking_graph(blocks, weight="arcs")
        weights = graph.weights
        assert weights[frozenset(("r1", "r2"))] > weights[
            frozenset(("r1", "r3"))
        ]

    def test_unknown_scheme(self, blocks):
        with pytest.raises(ConfigurationError):
            build_blocking_graph(blocks, weight="nope")

    def test_neighbors(self, blocks):
        graph = build_blocking_graph(blocks)
        assert set(graph.neighbors("r1")) == {"r2", "r3"}


class TestPruning:
    def test_wep_keeps_strong_edges(self, blocks):
        kept = meta_block(blocks, pruning="wep")
        assert frozenset(("r1", "r2")) in kept
        assert frozenset(("r1", "r3")) not in kept

    def test_cep_budget(self, blocks):
        kept = meta_block(blocks, pruning="cep", cardinality_ratio=0.25)
        assert kept == {frozenset(("r1", "r2"))}

    def test_cep_invalid_ratio(self, blocks):
        with pytest.raises(ConfigurationError):
            meta_block(blocks, pruning="cep", cardinality_ratio=0.0)

    def test_wnp_local_threshold(self, blocks):
        kept = meta_block(blocks, pruning="wnp")
        assert frozenset(("r1", "r2")) in kept
        # r3's local mean keeps its best edge(s) alive.
        assert any("r3" in edge for edge in kept)

    def test_cnp_degree_one(self, blocks):
        kept = meta_block(blocks, pruning="cnp", node_degree=1)
        assert frozenset(("r1", "r2")) in kept
        for node in ("r1", "r2", "r3", "r4"):
            degree = sum(1 for edge in kept if node in edge)
            # CNP keeps each node's top-k but an edge survives if either
            # endpoint retains it, so degree can exceed k slightly.
            assert degree <= 2

    def test_unknown_pruning(self, blocks):
        with pytest.raises(ConfigurationError):
            meta_block(blocks, pruning="zap")

    def test_pruning_reduces_candidates(self, blocks):
        full = blocks.candidate_pairs()
        for scheme in ("wep", "cep", "wnp", "cnp"):
            kept = meta_block(blocks, pruning=scheme)
            assert kept <= full
