"""Unit tests for source/corpus generation."""

import pytest

from repro.core import ConfigurationError
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)
from repro.text import parse_measurement


@pytest.fixture(scope="module")
def world():
    return generate_world(
        WorldConfig(
            categories=("camera", "notebook"), entities_per_category=40, seed=3
        )
    )


@pytest.fixture(scope="module")
def dataset(world):
    return generate_dataset(
        world,
        CorpusConfig(
            n_sources=12,
            min_source_size=5,
            max_source_size=40,
            typo_rate=0.05,
            error_rate=0.05,
            seed=9,
        ),
    )


class TestGeneration:
    def test_source_count(self, dataset):
        assert len(dataset) == 12

    def test_deterministic(self, world):
        config = CorpusConfig(n_sources=5, seed=21)
        d1 = generate_dataset(world, config)
        d2 = generate_dataset(world, config)
        records_1 = [
            (r.record_id, dict(r.attributes)) for r in d1.records()
        ]
        records_2 = [
            (r.record_id, dict(r.attributes)) for r in d2.records()
        ]
        assert records_1 == records_2

    def test_head_sources_bigger_than_tail(self, dataset):
        sizes = [len(source) for source in dataset.sources]
        assert max(sizes) > min(sizes)

    def test_ground_truth_covers_every_record(self, dataset):
        truth = dataset.ground_truth
        for record in dataset.records():
            assert truth.entity_of(record.record_id).startswith(
                ("camera:", "notebook:")
            )

    def test_attribute_map_covers_every_attribute(self, dataset):
        truth = dataset.ground_truth
        for record in dataset.records():
            for attribute in record.attributes:
                mediated = truth.mediated_attribute(
                    record.source_id, attribute
                )
                assert mediated is not None

    def test_schema_heterogeneity_exists(self, dataset):
        # With dialect noise, multiple distinct names should render the
        # same mediated attribute across sources.
        truth = dataset.ground_truth
        names_for_screen = {
            attribute
            for (source, attribute), mediated
            in truth.attribute_to_mediated.items()
            if mediated == "screen size"
        }
        assert len(names_for_screen) >= 2

    def test_redundancy_exists(self, dataset):
        # Head entities must appear in multiple sources — the premise of
        # the redundancy-as-a-friend approach.
        truth = dataset.ground_truth
        best = max(
            len(truth.records_of(entity)) for entity in truth.entities
        )
        assert best >= 3


class TestValueRendering:
    def test_unit_variation_preserves_semantics(self, world):
        config = CorpusConfig(
            n_sources=10,
            format_noise=1.0,
            typo_rate=0.0,
            error_rate=0.0,
            missing_rate=0.0,
            source_accuracy_range=(1.0, 1.0),
            seed=33,
        )
        dataset = generate_dataset(world, config)
        truth = dataset.ground_truth
        checked = 0
        for record in dataset.records():
            for attribute, value in record.attributes.items():
                mediated = truth.mediated_attribute(
                    record.source_id, attribute
                )
                if mediated != "weight":
                    continue
                entity = truth.entity_of(record.record_id)
                true_value = truth.true_value(entity, "weight")
                rendered = parse_measurement(value.lower().replace(",", "."))
                expected = parse_measurement(true_value)
                if rendered is None or rendered.unit is None:
                    continue
                base_rendered = rendered.in_base_unit()
                base_expected = expected.in_base_unit()
                assert base_rendered.value == pytest.approx(
                    base_expected.value, rel=0.01
                )
                checked += 1
        assert checked > 10

    def test_zero_noise_renders_truth(self, world):
        config = CorpusConfig(
            n_sources=4,
            dialect_noise=0.0,
            format_noise=0.0,
            typo_rate=0.0,
            error_rate=0.0,
            missing_rate=0.0,
            source_accuracy_range=(1.0, 1.0),
            seed=4,
        )
        dataset = generate_dataset(world, config)
        truth = dataset.ground_truth
        for record in dataset.records():
            entity = truth.entity_of(record.record_id)
            for attribute, value in record.attributes.items():
                mediated = truth.mediated_attribute(
                    record.source_id, attribute
                )
                expected = truth.true_value(entity, mediated)
                if value.isupper():
                    assert value.lower() == expected.lower()
                else:
                    assert value == expected


class TestConfigValidation:
    def test_bad_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            CorpusConfig(typo_rate=1.5)
        with pytest.raises(ConfigurationError):
            CorpusConfig(error_rate=-0.1)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            CorpusConfig(min_source_size=10, max_source_size=5)
        with pytest.raises(ConfigurationError):
            CorpusConfig(n_sources=0)

    def test_bad_accuracy_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CorpusConfig(source_accuracy_range=(0.9, 0.5))
        with pytest.raises(ConfigurationError):
            CorpusConfig(source_accuracy_range=(0.0, 0.5))
