"""Self-healing supervision and overload protection (repro.supervision).

Four contracts anchor this file:

1. **Byte-identity healing** — a supervised sharded run whose workers
   die (``flap`` faults inline, real ``os._exit`` kills under the
   process backend) or hang (frozen heartbeat tokens) produces output
   byte-identical to an unfaulted serial run, with no operator
   intervention.
2. **Bounded escalation** — a shard that keeps dying past
   ``SupervisionPolicy.max_restarts`` raises
   :class:`SupervisionExhaustedError` instead of crash-looping, and
   every decision lands on the ``supervisor.events`` timeline.
3. **Degraded-mode serving** — once the circuit breaker trips, reads
   keep answering from the last published generation while writes are
   shed (``Overloaded`` or dead-lettered), and one successful trial
   write (or refresh) re-arms the breaker automatically.
4. **Deterministic chaos** — every timeline above is exact: manual
   clocks, injected sleeps, declarative fault specs, monotonic
   heartbeat tokens instead of wall-clock staleness.
"""

import functools
import json
import threading

import pytest

from repro.core import ConfigurationError, Record
from repro.core.pipeline import BDIPipeline, PipelineConfig
from repro.dist import sharded_resolve
from repro.linkage import (
    FieldComparator,
    RecordComparator,
    ThresholdClassifier,
    resolve,
)
from repro.linkage.blocking.keys import first_token_key
from repro.linkage.blocking.standard import StandardBlocker
from repro.linkage.comparison import default_product_comparator
from repro.linkage.engine import ParallelComparisonEngine
from repro.obs import ManualClock, Tracer, observe_supervisor
from repro.resilience import (
    DeadLetterEntry,
    DeadLetterLog,
    DeadlineExceededError,
    InjectedWorkerDeath,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.testing import (
    FaultInjector,
    crash,
    flap,
    kill,
    slow,
)
from repro.serve import ResolutionService
from repro.supervision import (
    AdmissionGate,
    CircuitBreaker,
    HeartbeatEmitter,
    Overloaded,
    OverloadPolicy,
    SupervisionExhaustedError,
    SupervisionPolicy,
    Supervisor,
    progress_token,
    read_heartbeat,
)
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)
from repro import FourVKnobs, build_corpus
from repro.text import exact_similarity


# --- shared workload ---------------------------------------------------


@functools.lru_cache(maxsize=None)
def _corpus():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=12, seed=7)
    )
    dataset = generate_dataset(world, CorpusConfig(n_sources=4, seed=8))
    return tuple(dataset.records())


def _blocker():
    return StandardBlocker(first_token_key("name", aliases=("item name",)))


@functools.lru_cache(maxsize=None)
def _serial():
    return resolve(
        list(_corpus()),
        _blocker(),
        default_product_comparator(),
        ThresholdClassifier(0.72),
    )


def assert_identical(run):
    serial = _serial()
    result = run.result
    assert result.match_pairs == serial.match_pairs
    assert result.scored_edges == serial.scored_edges
    assert result.clusters == serial.clusters
    assert result.n_candidates == serial.n_candidates


def _supervised_run(
    injector,
    policy=None,
    tracer=None,
    backend="inline",
    checkpoint=None,
    chunk_size=2048,
    max_attempts=2,
):
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.0),
        failure="retry",
        fault_injector=injector,
    )
    if policy is None:
        policy = SupervisionPolicy(max_restarts=2, sleep=lambda seconds: None)
    supervisor = Supervisor(policy, tracer=tracer)
    run = sharded_resolve(
        list(_corpus()),
        _blocker(),
        default_product_comparator(),
        ThresholdClassifier(0.72),
        n_shards=3,
        backend=backend,
        chunk_size=chunk_size,
        resilience=resilience,
        checkpoint=checkpoint,
        supervisor=supervisor,
    )
    return run, supervisor


def _kinds(supervisor, shard=None):
    return [
        event.kind
        for event in supervisor.events
        if shard is None or event.shard == shard
    ]


def camera(record_id, source, name):
    return Record(record_id, source, {"name": name})


def _service(
    root, tracer=None, resilience=None, overload=None, refresh_blocker=None
):
    if refresh_blocker is None:
        refresh_blocker = StandardBlocker(first_token_key("name"))
    return ResolutionService(
        root,
        key_functions=[first_token_key("name")],
        comparator=default_product_comparator(),
        classifier=ThresholdClassifier(0.72),
        refresh_blocker=refresh_blocker,
        resilience=resilience,
        tracer=tracer,
        durable=False,
        overload=overload,
    )


# --- circuit breaker ---------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, tracer=None, threshold=2, reset=10.0, hook=None):
        clock = ManualClock(start=0.0, tick=0.0)
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout=reset,
            clock=clock,
            tracer=tracer,
            name="b",
            on_state_change=hook,
        )
        return breaker, clock

    def test_full_trip_trial_rearm_timeline(self):
        tracer = Tracer()
        breaker, clock = self._breaker(tracer=tracer)
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.retry_after() == 0.0
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after() == 10.0
        clock.advance(4.0)
        assert breaker.retry_after() == 6.0
        assert breaker.state == "open"
        clock.advance(6.0)
        assert breaker.state == "half_open"
        # Exactly one trial slot.
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        counters = tracer.report().metrics["counters"]
        assert counters["b.opened"] == 1
        assert counters["b.rearmed"] == 1
        assert counters["b.failures"] == 2

    def test_failed_trial_reopens_for_full_window(self):
        breaker, clock = self._breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        assert breaker.allow()  # the half-open trial
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after() == 5.0  # full window again

    def test_successes_reset_the_failure_count(self):
        breaker, _ = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two consecutive

    def test_state_gauge_and_callback(self):
        tracer = Tracer()
        transitions = []
        breaker, clock = self._breaker(
            tracer=tracer, threshold=1, hook=lambda old, new: transitions.append((old, new))
        )
        gauges = lambda: tracer.metrics.snapshot()["gauges"]  # noqa: E731
        assert gauges()["b.state"] == 0.0
        breaker.record_failure()
        assert gauges()["b.state"] == 2.0
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert gauges()["b.state"] == 1.0
        breaker.record_success()
        assert gauges()["b.state"] == 0.0
        assert transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout=0.0)


# --- admission gate ----------------------------------------------------


class TestAdmissionGate:
    def test_bounded_inflight_with_shed_accounting(self):
        tracer = Tracer()
        gate = AdmissionGate(2, retry_after=0.25, tracer=tracer, name="g")
        gate.acquire()
        gate.acquire()
        assert gate.depth == 2
        with pytest.raises(Overloaded) as rejected:
            gate.acquire()
        assert rejected.value.retry_after == 0.25
        gate.release()
        assert gate.depth == 1
        gate.acquire()  # slot freed, admitted again
        counters = tracer.report().metrics["counters"]
        assert counters["g.shed"] == 1
        assert counters["g.shed_admission"] == 1
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["g.pending_writes"] == 2.0

    def test_admit_context_manager_always_releases(self):
        gate = AdmissionGate(1)
        with pytest.raises(RuntimeError):
            with gate.admit():
                assert gate.depth == 1
                raise RuntimeError("boom")
        assert gate.depth == 0

    def test_release_never_goes_negative(self):
        gate = AdmissionGate(1)
        gate.release()
        assert gate.depth == 0

    def test_invalid_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(0)


class TestPolicyValidation:
    def test_overload_policy_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(max_pending_writes=0)
        with pytest.raises(ConfigurationError):
            OverloadPolicy(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            OverloadPolicy(admission_retry_after=-1.0)
        with pytest.raises(ConfigurationError):
            OverloadPolicy(reset_timeout=0.0)
        with pytest.raises(ConfigurationError):
            OverloadPolicy(shed="explode")
        with pytest.raises(ConfigurationError):
            OverloadPolicy(deadline=0.0)

    def test_supervision_policy_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(max_restarts=-1)
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(poll_interval=0.0)
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(stale_polls=0)

    def test_service_rejects_non_policy_overload(self, tmp_path):
        with pytest.raises(ConfigurationError):
            _service(tmp_path, overload={"max_pending_writes": 4})


# --- heartbeats --------------------------------------------------------


class TestHeartbeat:
    def test_beats_are_monotonic_within_an_incarnation(self, tmp_path):
        path = tmp_path / "hb"
        emitter = HeartbeatEmitter(path, incarnation=1)
        assert read_heartbeat(path) is None
        assert progress_token(read_heartbeat(path)) == (0, 0)
        tokens = []
        for chunk in range(3):
            emitter.beat(chunk=chunk, attempt=1)
            tokens.append(progress_token(read_heartbeat(path)))
        assert tokens == [(1, 1), (1, 2), (1, 3)]
        beat = read_heartbeat(path)
        assert beat["chunk"] == 2 and beat["attempt"] == 1

    def test_tokens_stay_monotonic_across_restarts(self, tmp_path):
        path = tmp_path / "hb"
        first = HeartbeatEmitter(path, incarnation=1)
        for _ in range(5):
            first.beat()
        before = progress_token(read_heartbeat(path))
        # A restarted worker's seq resets to zero; the incarnation
        # component keeps the token strictly increasing anyway.
        second = HeartbeatEmitter(path, incarnation=2)
        second.beat()
        after = progress_token(read_heartbeat(path))
        assert before == (1, 5)
        assert after == (2, 1)
        assert after > before

    def test_unreadable_beats_read_as_no_beat(self, tmp_path):
        path = tmp_path / "hb"
        path.write_text("not json", encoding="utf-8")
        assert read_heartbeat(path) is None
        path.write_text("[1, 2]", encoding="utf-8")
        assert read_heartbeat(path) is None

    def test_invalid_incarnation_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            HeartbeatEmitter(tmp_path / "hb", incarnation=0)

    def test_executor_beats_the_configured_emitter(self, tmp_path):
        path = tmp_path / "hb"
        emitter = HeartbeatEmitter(path, incarnation=3)
        tracer = Tracer()
        engine = ParallelComparisonEngine(
            RecordComparator(
                fields=[FieldComparator("name", exact_similarity)]
            ),
            chunk_size=2,
            tracer=tracer,
            resilience=ResilienceConfig(heartbeat=emitter),
        )
        records = [
            Record(f"r{i}", "s0", {"name": f"thing {i // 2}"})
            for i in range(6)
        ]
        pairs = [(f"r{i}", f"r{i + 1}") for i in range(5)]
        engine.match_pairs(records, pairs, ThresholdClassifier(0.9))
        beat = read_heartbeat(path)
        assert beat is not None
        # One beat per attempt: 5 pairs at chunk_size=2 is 3 chunks.
        assert progress_token(beat) == (3, 3)
        assert emitter.seq == 3
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["resilience.heartbeat_seq"] == 3.0


# --- fault specs (slow / flap) -----------------------------------------


class TestChaosSpecs:
    def test_slow_fault_injects_latency_then_proceeds(self):
        naps = []
        injector = FaultInjector(
            slow(chunk=1, delay=2.5), sleeper=naps.append
        )
        injector.on_attempt(0, ["a"], 1)  # wrong chunk: no delay
        injector.on_attempt(1, ["a"], 1)  # delayed, not raised
        assert naps == [2.5]
        assert injector.fired("slow") == 1

    def test_slow_fault_rejects_bad_delay(self):
        with pytest.raises(ConfigurationError):
            slow(delay=-1.0)

    def test_flap_fault_is_a_base_exception_with_identity(self):
        injector = FaultInjector(flap(chunk=0))
        injector.bind_shard(4)
        injector.bind_incarnation(2)
        with pytest.raises(InjectedWorkerDeath) as death:
            injector.on_attempt(0, ["a"], 1)
        assert not isinstance(death.value, Exception)
        assert death.value.shard == 4
        assert death.value.incarnation == 2

    def test_incarnation_filter_lets_restarts_run_clean(self):
        injector = FaultInjector(flap(chunk=0, incarnations=(1, 2)))
        for incarnation in (1, 2):
            injector.bind_incarnation(incarnation)
            with pytest.raises(InjectedWorkerDeath):
                injector.on_attempt(0, ["a"], 1)
        injector.bind_incarnation(3)
        injector.on_attempt(0, ["a"], 1)  # clean on the third launch
        assert injector.fired("flap") == 2
        assert [event.incarnation for event in injector.history] == [1, 2]

    def test_bind_incarnation_validates(self):
        with pytest.raises(ConfigurationError):
            FaultInjector().bind_incarnation(0)


# --- dead-letter rotation (satellite regression) -----------------------


def _entry(index, padding=""):
    return DeadLetterEntry(
        scope="test",
        chunk_id=str(index),
        kind="crash",
        error_type="RuntimeError",
        error=f"boom {index}{padding}",
        attempts=1,
        items=((f"a{index}", f"b{index}"),),
        quarantined_at=float(index),
    )


class TestDeadLetterRotation:
    def test_max_entries_keeps_the_newest_tail(self):
        log = DeadLetterLog(max_entries=3)
        for index in range(5):
            log.add(_entry(index))
        assert [entry.chunk_id for entry in log.entries] == ["2", "3", "4"]
        assert log.dropped == 2
        assert log.rotations == 2
        assert len(log) == 3

    def test_max_bytes_keeps_the_newest_fitting_suffix(self):
        line = len(
            json.dumps(_entry(0).to_dict(), sort_keys=True, ensure_ascii=False)
            .encode("utf-8")
        ) + 1
        log = DeadLetterLog(max_bytes=2 * line)
        for index in range(5):
            log.add(_entry(index))
        assert [entry.chunk_id for entry in log.entries] == ["3", "4"]
        assert log.dropped == 3

    def test_oversized_latest_entry_is_always_retained(self):
        log = DeadLetterLog(max_bytes=10)
        log.add(_entry(0, padding="x" * 500))
        log.add(_entry(1, padding="y" * 500))
        assert len(log) == 1
        assert log.entries[0].chunk_id == "1"

    def test_durable_sink_is_rewritten_to_the_retained_tail(self, tmp_path):
        path = str(tmp_path / "dead_letters.jsonl")
        log = DeadLetterLog(path=path, max_entries=2)
        for index in range(5):
            log.add(_entry(index))
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        assert len(lines) == 2
        reloaded = DeadLetterLog.from_jsonl("\n".join(lines))
        assert [entry.chunk_id for entry in reloaded.entries] == ["3", "4"]
        assert reloaded.entries == log.entries

    def test_restore_and_constructor_also_rotate(self):
        log = DeadLetterLog(entries=[_entry(i) for i in range(4)], max_entries=2)
        assert [entry.chunk_id for entry in log.entries] == ["2", "3"]
        assert log.dropped == 2
        log.restore([_entry(4), _entry(5)])
        assert [entry.chunk_id for entry in log.entries] == ["4", "5"]
        assert log.dropped == 4

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            DeadLetterLog(max_entries=0)
        with pytest.raises(ValueError):
            DeadLetterLog(max_bytes=0)

    def test_serve_ingest_storm_stays_bounded(self, tmp_path):
        injector = FaultInjector(crash())
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
            failure="skip",
            fault_injector=injector,
            dead_letter_max_entries=2,
        )
        service = _service(tmp_path, resilience=resilience)
        for index in range(5):
            result = service.ingest(camera(f"c{index}", "s0", f"cam {index}"))
            assert result.quarantined
        assert len(service.dead_letters) == 2
        assert service.dead_letters.dropped == 3
        assert [
            entry.items[0] for entry in service.dead_letters.entries
        ] == ["c3", "c4"]


# --- the supervisor: inline backend ------------------------------------


class TestSupervisorInline:
    def test_flapping_shard_heals_to_byte_identical_output(self):
        tracer = Tracer()
        injector = FaultInjector(
            flap(chunk=0, incarnations=(1, 2), max_fires=2)
        )
        run, supervisor = _supervised_run(injector, tracer=tracer)
        assert_identical(run)
        flapped = supervisor.events[1].shard
        assert _kinds(supervisor, shard=flapped) == [
            "start", "death", "restart", "death", "restart", "recovered",
        ]
        deaths = [e for e in supervisor.events if e.kind == "death"]
        assert [e.incarnation for e in deaths] == [1, 2]
        assert _kinds(supervisor).count("start") == 3
        assert "exhausted" not in _kinds(supervisor)
        counters = tracer.report().metrics["counters"]
        assert counters["supervision.deaths"] == 2
        assert counters["supervision.restarts"] == 2
        assert counters["supervision.recovereds"] == 1

    def test_unsupervised_flap_is_fatal(self):
        # The contrast case: without a supervisor the worker death is a
        # BaseException the resilience layer must NOT absorb.
        injector = FaultInjector(flap(chunk=0, max_fires=1))
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            failure="retry",
            fault_injector=injector,
        )
        with pytest.raises(InjectedWorkerDeath):
            sharded_resolve(
                list(_corpus()),
                _blocker(),
                default_product_comparator(),
                ThresholdClassifier(0.72),
                n_shards=3,
                backend="inline",
                resilience=resilience,
            )

    def test_restart_budget_exhaustion_escalates(self):
        injector = FaultInjector(flap(chunk=0))  # dies every incarnation
        policy = SupervisionPolicy(max_restarts=1, sleep=lambda s: None)
        with pytest.raises(SupervisionExhaustedError) as escalated:
            _supervised_run(injector, policy=policy)
        assert escalated.value.restarts == 1
        assert "died 2 time(s)" in str(escalated.value)

    def test_zero_budget_escalates_on_first_death(self):
        injector = FaultInjector(flap(chunk=0))
        policy = SupervisionPolicy(max_restarts=0, sleep=lambda s: None)
        tracer = Tracer()
        supervisor = Supervisor(policy, tracer=tracer)
        with pytest.raises(SupervisionExhaustedError):
            sharded_resolve(
                list(_corpus()),
                _blocker(),
                default_product_comparator(),
                ThresholdClassifier(0.72),
                n_shards=2,
                backend="inline",
                resilience=ResilienceConfig(fault_injector=injector),
                supervisor=supervisor,
            )
        shard = supervisor.events[0].shard
        assert _kinds(supervisor, shard=shard) == [
            "start", "death", "exhausted",
        ]

    def test_restart_backoff_paces_each_restart(self):
        naps = []
        backoff = RetryPolicy(
            max_attempts=1, base_delay=0.2, multiplier=3.0, max_delay=10.0
        )
        policy = SupervisionPolicy(
            max_restarts=2, backoff=backoff, sleep=naps.append
        )
        injector = FaultInjector(
            flap(chunk=0, incarnations=(1, 2), max_fires=2)
        )
        run, supervisor = _supervised_run(injector, policy=policy)
        assert_identical(run)
        shard = supervisor.events[1].shard
        assert naps == [
            backoff.delay(1, salt=f"supervise.{shard}"),
            backoff.delay(2, salt=f"supervise.{shard}"),
        ]

    def test_event_timeline_exports_to_json(self):
        injector = FaultInjector(flap(chunk=0, max_fires=1))
        run, supervisor = _supervised_run(injector)
        payload = json.dumps([e.to_dict() for e in supervisor.events])
        restored = json.loads(payload)
        assert restored[1]["kind"] == "death"
        assert restored[1]["incarnation"] == 1

    def test_observe_supervisor_publishes_healing_gauges(self):
        tracer = Tracer()
        injector = FaultInjector(
            flap(chunk=0, incarnations=(1, 2), max_fires=2)
        )
        run, supervisor = _supervised_run(injector)
        observe_supervisor(tracer, supervisor)
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["supervision.events"] == float(len(supervisor.events))
        assert gauges["supervision.healed_shards"] == 1.0
        assert gauges["supervision.max_shard_restarts"] == 2.0

    def test_supervisor_requires_sharded_execution(self):
        with pytest.raises(ConfigurationError):
            resolve(
                list(_corpus()),
                _blocker(),
                default_product_comparator(),
                ThresholdClassifier(0.72),
                supervisor=Supervisor(),
            )

    def test_process_supervision_requires_a_checkpoint_store(self):
        with pytest.raises(ConfigurationError):
            sharded_resolve(
                list(_corpus()),
                _blocker(),
                default_product_comparator(),
                ThresholdClassifier(0.72),
                n_shards=2,
                backend="process",
                supervisor=Supervisor(),
            )


class TestPipelineSupervision:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(supervision=SupervisionPolicy())  # serial
        with pytest.raises(ConfigurationError):
            PipelineConfig(
                execution="sharded", supervision={"max_restarts": 1}
            )

    def test_supervised_pipeline_matches_unfaulted_run(self):
        corpus = build_corpus(
            FourVKnobs(volume=0.0, variety=0.3, veracity=0.2, seed=11)
        )
        baseline = BDIPipeline(
            PipelineConfig(
                execution="sharded", n_shards=2, shard_backend="inline"
            )
        ).run(corpus.dataset)
        injector = FaultInjector(flap(chunk=0, incarnations=(1,), max_fires=1))
        tracer = Tracer()
        healed = BDIPipeline(
            PipelineConfig(
                execution="sharded",
                n_shards=2,
                shard_backend="inline",
                resilience=ResilienceConfig(fault_injector=injector),
                supervision=SupervisionPolicy(
                    max_restarts=1, sleep=lambda s: None
                ),
            )
        ).run(corpus.dataset, tracer=tracer)
        assert healed.clusters == baseline.clusters
        assert healed.entity_table == baseline.entity_table
        metrics = tracer.report().metrics
        assert metrics["counters"]["supervision.deaths"] == 1
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["supervision.healed_shards"] == 1.0


# --- the supervisor: real worker processes -----------------------------


@pytest.mark.slow
class TestSupervisorProcess:
    def test_killed_worker_restarts_twice_and_heals(self, tmp_path):
        injector = FaultInjector(kill(chunk=0, shard=1, incarnations=(1, 2)))
        policy = SupervisionPolicy(
            max_restarts=2,
            poll_interval=0.02,
            backoff=RetryPolicy(
                max_attempts=1, base_delay=0.01, multiplier=1.0,
                max_delay=0.05,
            ),
        )
        run, supervisor = _supervised_run(
            injector,
            policy=policy,
            backend="process",
            checkpoint=str(tmp_path / "store"),
        )
        assert_identical(run)
        deaths = [e for e in supervisor.events if e.kind == "death"]
        assert len(deaths) == 2
        assert all(e.shard == 1 for e in deaths)
        assert all("exit code" in e.detail for e in deaths)
        assert "exhausted" not in _kinds(supervisor)
        assert any(
            e.kind == "recovered" and e.shard == 1 for e in supervisor.events
        )

    def test_frozen_heartbeat_is_declared_hung_and_killed(self, tmp_path):
        # The worker stays alive but stops making progress: a slow
        # fault parks it for 60s mid-shard. Token-based staleness (not
        # wall clocks) detects the freeze, kills it, and the restarted
        # incarnation runs clean.
        injector = FaultInjector(
            slow(chunk=1, shard=0, incarnations=(1,), delay=60.0)
        )
        policy = SupervisionPolicy(
            max_restarts=1,
            poll_interval=0.05,
            stale_polls=4,
            backoff=RetryPolicy(
                max_attempts=1, base_delay=0.01, multiplier=1.0,
                max_delay=0.05,
            ),
        )
        run, supervisor = _supervised_run(
            injector,
            policy=policy,
            backend="process",
            checkpoint=str(tmp_path / "store"),
            chunk_size=6,
        )
        assert_identical(run)
        hangs = [e for e in supervisor.events if e.kind == "hang"]
        assert len(hangs) == 1
        assert hangs[0].shard == 0
        assert "heartbeat token" in hangs[0].detail
        assert any(
            e.kind == "recovered" and e.shard == 0 for e in supervisor.events
        )


# --- degraded-mode serving ---------------------------------------------


class TestServeOverload:
    def _degraded_service(self, tmp_path, tracer, shed="dead_letter"):
        clock = ManualClock(start=0.0, tick=0.0)
        injector = FaultInjector(crash(chunk=2), crash(chunk=3))
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
            failure="skip",
            clock=clock,
            sleep=clock.advance,
            fault_injector=injector,
        )
        overload = OverloadPolicy(
            max_pending_writes=4,
            admission_retry_after=0.1,
            failure_threshold=2,
            reset_timeout=5.0,
            shed=shed,
            clock=clock,
        )
        service = _service(
            tmp_path, tracer=tracer, resilience=resilience, overload=overload
        )
        # Two healthy writes (positions 0-1), then two quarantined
        # ones (positions 2-3) trip the breaker.
        assert service.ingest(camera("g1", "s0", "canon eos r5")).entity_id
        assert service.ingest(camera("g2", "s1", "canon eos r5")).entity_id
        assert service.ingest(camera("q1", "s0", "nikon z6")).quarantined
        assert service.ingest(camera("q2", "s1", "sony a7")).quarantined
        return service, clock

    def test_degraded_cycle_sheds_writes_serves_reads_and_rearms(
        self, tmp_path
    ):
        tracer = Tracer()
        service, clock = self._degraded_service(tmp_path, tracer)
        health = service.health()
        assert health["status"] == "degraded"
        assert health["breaker"] == "open"
        assert service.readiness() == {
            "ready": True, "generation": 0, "writes_accepted": False,
        }
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["serve.degraded"] == 1.0
        # Writes shed before the durable append, payload dead-lettered.
        log_before = service.store.log_length
        shed = service.ingest(camera("s1", "s2", "canon eos r5"))
        assert shed.shed and shed.quarantined and shed.position == -1
        assert service.store.log_length == log_before
        overloads = service.dead_letters.by_kind("overload")
        assert len(overloads) == 1
        assert overloads[0].items == ("s1",)
        assert overloads[0].scope == "serve.ingest.shed"
        # Reads keep answering from the last published generation.
        assert service.match(camera("probe", "s9", "canon eos r5"))
        assert len(service.entities()) >= 1
        assert service.generation == 0
        # Automatic re-arm: one successful trial write after the
        # breaker's window closes the circuit.
        clock.advance(5.0)
        trial = service.ingest(camera("t1", "s0", "fuji xt5"))
        assert trial.entity_id and not trial.quarantined
        health = service.health()
        assert health["status"] == "ok"
        assert health["breaker"] == "closed"
        counters = tracer.report().metrics["counters"]
        assert counters["serve.shed"] == 1
        assert counters["serve.shed_degraded"] == 1
        assert counters["serve.breaker.opened"] == 1
        assert counters["serve.breaker.rearmed"] == 1
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["serve.degraded"] == 0.0

    def test_reject_mode_raises_overloaded_with_retry_after(self, tmp_path):
        tracer = Tracer()
        service, clock = self._degraded_service(
            tmp_path, tracer, shed="reject"
        )
        clock.advance(1.5)
        with pytest.raises(Overloaded) as rejected:
            service.ingest(camera("s1", "s2", "canon eos r5"))
        assert rejected.value.retry_after == pytest.approx(3.5)
        assert len(service.dead_letters.by_kind("overload")) == 0

    def test_failed_trial_write_reopens_the_breaker(self, tmp_path):
        tracer = Tracer()
        clock = ManualClock(start=0.0, tick=0.0)
        injector = FaultInjector(crash(chunk=0), crash(chunk=1))
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
            failure="skip",
            clock=clock,
            sleep=clock.advance,
            fault_injector=injector,
        )
        service = _service(
            tmp_path,
            tracer=tracer,
            resilience=resilience,
            overload=OverloadPolicy(
                failure_threshold=1, reset_timeout=5.0,
                shed="dead_letter", clock=clock,
            ),
        )
        assert service.ingest(camera("q1", "s0", "nikon z6")).quarantined
        assert service.health()["breaker"] == "open"
        clock.advance(5.0)
        # The half-open trial itself crashes (chunk 1): reopen.
        assert service.ingest(camera("q2", "s1", "sony a7")).quarantined
        assert service.health()["breaker"] == "open"
        counters = tracer.report().metrics["counters"]
        assert counters["serve.breaker.opened"] == 2
        assert "serve.breaker.rearmed" not in counters

    def test_admission_gate_bounds_concurrent_writes(self, tmp_path):
        tracer = Tracer()
        service = _service(
            tmp_path,
            tracer=tracer,
            overload=OverloadPolicy(
                max_pending_writes=2, admission_retry_after=0.25,
                failure_threshold=50,
            ),
        )
        results = []
        # Hold the service lock so admitted writers queue behind it,
        # keeping the gate deterministically full.
        service._lock.acquire()
        try:
            threads = [
                threading.Thread(
                    target=lambda i=i: results.append(
                        service.ingest(camera(f"w{i}", "s0", f"cam {i}"))
                    ),
                )
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for _ in range(500):
                if service._gate.depth == 2:
                    break
                threading.Event().wait(0.01)
            assert service._gate.depth == 2
            assert service.readiness()["writes_accepted"] is False
            with pytest.raises(Overloaded) as rejected:
                service.ingest(camera("w9", "s0", "cam 9"))
            assert rejected.value.retry_after == 0.25
        finally:
            service._lock.release()
        for thread in threads:
            thread.join()
        assert len(results) == 2
        assert all(result.entity_id for result in results)
        assert service._gate.depth == 0
        assert service.readiness()["writes_accepted"] is True
        counters = tracer.report().metrics["counters"]
        assert counters["serve.shed_admission"] == 1

    def test_ingest_deadline_quarantines_as_deadline(self, tmp_path):
        tracer = Tracer()
        clock = ManualClock(start=0.0, tick=0.0)
        injector = FaultInjector(crash())
        resilience = ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=5, base_delay=1.0, multiplier=1.0
            ),
            failure="skip",
            clock=clock,
            sleep=clock.advance,
            fault_injector=injector,
        )
        service = _service(tmp_path, tracer=tracer, resilience=resilience)
        result = service.ingest(camera("d1", "s0", "cam"), deadline=2.5)
        assert result.quarantined
        entry = service.dead_letters.entries[-1]
        assert entry.kind == "deadline"
        assert entry.error_type == "DeadlineExceededError"
        assert entry.attempts == 3  # attempts that actually ran
        counters = tracer.report().metrics["counters"]
        assert counters["serve.deadline_exceeded"] == 1

    def test_ingest_deadline_raises_under_retry_policy(self, tmp_path):
        clock = ManualClock(start=0.0, tick=0.0)
        injector = FaultInjector(crash())
        resilience = ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=5, base_delay=1.0, multiplier=1.0
            ),
            failure="retry",
            clock=clock,
            sleep=clock.advance,
            fault_injector=injector,
        )
        service = _service(tmp_path, resilience=resilience)
        with pytest.raises(DeadlineExceededError):
            service.ingest(camera("d1", "s0", "cam"), deadline=1.5)

    def test_default_deadline_comes_from_the_policy(self, tmp_path):
        clock = ManualClock(start=0.0, tick=0.0)
        injector = FaultInjector(crash())
        resilience = ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=5, base_delay=1.0, multiplier=1.0
            ),
            failure="skip",
            clock=clock,
            sleep=clock.advance,
            fault_injector=injector,
        )
        service = _service(
            tmp_path,
            resilience=resilience,
            overload=OverloadPolicy(
                failure_threshold=50, deadline=2.5, clock=clock
            ),
        )
        result = service.ingest(camera("d1", "s0", "cam"))
        assert result.quarantined
        assert service.dead_letters.entries[-1].kind == "deadline"

    def test_refresh_deadline_propagates_into_the_engine(self, tmp_path):
        tracer = Tracer()
        clock = ManualClock(start=0.0, tick=1.0)  # time races forward
        service = _service(
            tmp_path,
            tracer=tracer,
            overload=OverloadPolicy(failure_threshold=50, clock=clock),
        )
        service.ingest(camera("a", "s0", "canon eos"))
        service.ingest(camera("b", "s1", "canon eos"))
        with pytest.raises(DeadlineExceededError):
            service.refresh(deadline=0.5)
        counters = tracer.report().metrics["counters"]
        assert counters["serve.refresh_failures"] == 1
        assert service.health()["last_refresh_error"].startswith(
            "DeadlineExceededError"
        )
        # Without the deadline the same refresh completes.
        assert service.refresh() == 1
        assert service.health()["last_refresh_error"] is None


# --- the ISSUE acceptance drill ----------------------------------------


class TestChaosAcceptance:
    def test_double_kill_and_ingest_flood_need_no_operator(self, tmp_path):
        # Part 1 — a supervised sharded run whose worker dies twice
        # completes on its own, byte-identical to the unfaulted run.
        tracer = Tracer()
        injector = FaultInjector(
            flap(chunk=0, incarnations=(1, 2), max_fires=2)
        )
        run, supervisor = _supervised_run(
            injector, tracer=tracer, checkpoint=str(tmp_path / "store")
        )
        assert_identical(run)
        assert _kinds(supervisor).count("death") == 2
        assert "exhausted" not in _kinds(supervisor)

        # Part 2 — the serving side floods past the admission limit
        # while degraded: reads answer throughout, every shed write is
        # accounted for, and the service re-arms itself.
        serve_tracer = Tracer()
        clock = ManualClock(start=0.0, tick=0.0)
        serve_injector = FaultInjector(crash(chunk=2), crash(chunk=3))
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
            failure="skip",
            clock=clock,
            sleep=clock.advance,
            fault_injector=serve_injector,
        )
        service = _service(
            tmp_path / "serve",
            tracer=serve_tracer,
            resilience=resilience,
            overload=OverloadPolicy(
                max_pending_writes=2,
                admission_retry_after=0.1,
                failure_threshold=2,
                reset_timeout=4.0,
                shed="dead_letter",
                clock=clock,
            ),
        )
        service.ingest(camera("g1", "s0", "canon eos r5"))
        service.ingest(camera("g2", "s1", "canon eos r5"))
        service.ingest(camera("q1", "s0", "nikon z6"))
        service.ingest(camera("q2", "s1", "sony a7"))
        assert service.health()["status"] == "degraded"

        # Degraded shed (breaker open) plus an admission flood.
        shed_results = []
        assert service.ingest(camera("f0", "s2", "leica q3")).shed
        service._lock.acquire()
        try:
            threads = [
                threading.Thread(
                    target=lambda i=i: shed_results.append(
                        service.ingest(camera(f"f{i}", "s2", "leica q3"))
                    ),
                )
                for i in (1, 2)
            ]
            for thread in threads:
                thread.start()
            for _ in range(500):
                if service._gate.depth == 2:
                    break
                threading.Event().wait(0.01)
            with pytest.raises(Overloaded):
                service.ingest(camera("f3", "s2", "leica q3"))
            # Reads answered while degraded AND flooded.
            assert service.match(camera("probe", "s9", "canon eos r5"))
            assert service.generation == 0
        finally:
            service._lock.release()
        for thread in threads:
            thread.join()
        assert all(result.shed for result in shed_results)

        # Accounting: every shed write is in the dead-letter log or
        # the admission counter; nothing hit the durable log.
        assert len(service.dead_letters.by_kind("overload")) == 3
        counters = serve_tracer.report().metrics["counters"]
        assert counters["serve.shed"] == 4  # 3 degraded + 1 admission
        assert counters["serve.shed_degraded"] == 3
        assert counters["serve.shed_admission"] == 1
        assert service.store.log_length == 4

        # Recovery without intervention.
        clock.advance(4.0)
        assert service.ingest(camera("t1", "s0", "fuji xt5")).entity_id
        assert service.health()["status"] == "ok"
