"""Tests for copy-detection direction inference."""

import pytest

from repro.fusion import CopyDetector, VotingFuser
from repro.synth import ClaimWorldConfig, generate_claims


@pytest.fixture(scope="module")
def planted():
    return generate_claims(
        ClaimWorldConfig(
            n_items=300,
            n_independent=6,
            n_copiers=4,
            accuracy_range=(0.55, 0.8),
            copy_rate=0.9,
            n_false_values=6,
            seed=43,
        )
    )


class TestDirection:
    def test_range(self, planted):
        detector = CopyDetector(n_false_values=6)
        truths = VotingFuser().fuse(planted.claims).chosen
        accuracies = {s: 0.7 for s in planted.claims.sources()}
        for copier, parent in planted.copier_of.items():
            value = detector.direction(
                planted.claims, copier, parent, truths, accuracies
            )
            assert -1.0 <= value <= 1.0

    def test_antisymmetric(self, planted):
        detector = CopyDetector(n_false_values=6)
        truths = VotingFuser().fuse(planted.claims).chosen
        accuracies = {s: 0.7 for s in planted.claims.sources()}
        copier, parent = next(iter(planted.copier_of.items()))
        forward = detector.direction(
            planted.claims, copier, parent, truths, accuracies
        )
        backward = detector.direction(
            planted.claims, parent, copier, truths, accuracies
        )
        assert forward == pytest.approx(-backward)

    def test_insufficient_overlap_neutral(self):
        from repro.fusion import Claim, ClaimSet

        claims = ClaimSet([Claim("a", "i", "x"), Claim("b", "i", "x")])
        detector = CopyDetector(min_overlap=5)
        assert detector.direction(
            claims, "a", "b", {"i": "x"}, {"a": 0.8, "b": 0.8}
        ) == 0.0

    def test_accuracy_asymmetry_orients_edges(self, planted):
        """With the pair's accuracies known, the fitted direction should
        more often point from the copier to the parent than the
        reverse (direction is weak evidence, not a guarantee)."""
        detector = CopyDetector(n_false_values=6)
        truths = dict(planted.truth)  # oracle truths isolate direction
        correct = 0
        for copier, parent in planted.copier_of.items():
            value = detector.direction(
                planted.claims,
                copier,
                parent,
                truths,
                planted.accuracies,
            )
            if value > 0:
                correct += 1
        assert correct >= len(planted.copier_of) / 2
