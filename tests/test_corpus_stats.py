"""Tests for corpus statistics and custom-attribute generation."""

import pytest

from repro.core import (
    ConfigurationError,
    Dataset,
    EmptyInputError,
    Record,
    Source,
)
from repro.quality import attribute_tail_statistics
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


class TestAttributeTailStatistics:
    def test_tiny_handmade_corpus(self):
        s1 = Source("s1", [Record("s1/0", "s1", {"a": "1", "b": "2"})])
        s2 = Source("s2", [Record("s2/0", "s2", {"a": "1", "c": "3"})])
        stats = attribute_tail_statistics(Dataset([s1, s2]))
        assert stats.n_sources == 2
        assert stats.n_attribute_names == 3
        assert stats.fraction_in_one_source == pytest.approx(2 / 3)
        assert stats.top_attribute == "a"
        assert stats.top_attribute_source_fraction == 1.0

    def test_empty_rejected(self):
        with pytest.raises(EmptyInputError):
            attribute_tail_statistics(Dataset([Source("s1")]))

    def test_rows_renderable(self):
        s1 = Source("s1", [Record("s1/0", "s1", {"a": "1"})])
        stats = attribute_tail_statistics(Dataset([s1]))
        assert len(stats.rows()) == 7


class TestCustomAttributes:
    @pytest.fixture(scope="class")
    def corpus(self):
        world = generate_world(
            WorldConfig(
                categories=("camera",), entities_per_category=30, seed=3
            )
        )
        return generate_dataset(
            world,
            CorpusConfig(
                n_sources=10, max_custom_attributes=5, seed=5
            ),
        )

    def test_custom_attributes_appear(self, corpus):
        truth = corpus.ground_truth
        custom = [
            key
            for key, mediated in truth.attribute_to_mediated.items()
            if mediated.startswith("custom::")
        ]
        assert custom, "expected at least one custom attribute"

    def test_custom_attributes_are_source_local_in_truth(self, corpus):
        truth = corpus.ground_truth
        for (source, attribute), mediated in (
            truth.attribute_to_mediated.items()
        ):
            if mediated.startswith("custom::"):
                assert mediated == f"custom::{source}::{attribute}"

    def test_custom_values_are_strings_on_records(self, corpus):
        truth = corpus.ground_truth
        seen = 0
        for record in corpus.records():
            for attribute, value in record.attributes.items():
                mediated = truth.mediated_attribute(
                    record.source_id, attribute
                )
                if mediated and mediated.startswith("custom::"):
                    assert value
                    seen += 1
        assert seen > 5

    def test_deepens_the_tail(self):
        world = generate_world(
            WorldConfig(
                categories=("camera",), entities_per_category=30, seed=3
            )
        )
        plain = generate_dataset(
            world, CorpusConfig(n_sources=10, seed=5)
        )
        custom = generate_dataset(
            world,
            CorpusConfig(n_sources=10, max_custom_attributes=5, seed=5),
        )
        assert (
            attribute_tail_statistics(custom).n_attribute_names
            > attribute_tail_statistics(plain).n_attribute_names
        )

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CorpusConfig(max_custom_attributes=-1)
