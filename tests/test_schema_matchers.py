"""Unit tests for attribute profiling and matchers."""

import pytest

from repro.core import Dataset, Record, Source
from repro.schema import (
    HybridMatcher,
    InstanceMatcher,
    NameMatcher,
    profile_attributes,
)


def source_with(source_id, rows):
    records = [
        Record(f"{source_id}/{i}", source_id, row)
        for i, row in enumerate(rows)
    ]
    return Source(source_id, records)


@pytest.fixture
def dataset():
    s1 = source_with(
        "s1",
        [
            {"color": "black", "weight": "200 g", "sku": "AB-1234"},
            {"color": "red", "weight": "350 g", "sku": "CD-5678"},
            {"color": "black", "weight": "410 g", "sku": "EF-9012"},
        ],
    )
    s2 = source_with(
        "s2",
        [
            {"colour": "black", "item weight": "0.2 kg", "mpn": "AB-1234"},
            {"colour": "silver", "item weight": "0.41 kg", "mpn": "EF-9012"},
        ],
    )
    s3 = source_with(
        "s3",
        [
            {"finish": "black", "screen size": "5.5 in"},
            {"finish": "red", "screen size": "6.1 in"},
        ],
    )
    return Dataset([s1, s2, s3])


class TestProfiles:
    def test_profile_counts(self, dataset):
        profiles = profile_attributes(dataset)
        assert ("s1", "color") in profiles
        assert profiles[("s1", "color")].n_records == 3
        assert profiles[("s1", "color")].distinct_values == 2

    def test_uniqueness_high_for_identifier(self, dataset):
        profiles = profile_attributes(dataset)
        assert profiles[("s1", "sku")].uniqueness == 1.0

    def test_numeric_fraction(self, dataset):
        profiles = profile_attributes(dataset)
        assert profiles[("s1", "weight")].numeric_fraction == 1.0
        assert profiles[("s1", "color")].numeric_fraction == 0.0

    def test_numeric_values_converted_to_base_units(self, dataset):
        profiles = profile_attributes(dataset)
        grams = profiles[("s2", "item weight")].numeric_values
        assert sorted(grams) == pytest.approx([200.0, 410.0])

    def test_source_restriction(self, dataset):
        profiles = profile_attributes(dataset, sources=["s1"])
        assert all(key[0] == "s1" for key in profiles)


class TestNameMatcher:
    def test_spelling_variant(self, dataset):
        profiles = profile_attributes(dataset)
        matcher = NameMatcher()
        score = matcher.score(
            profiles[("s1", "color")], profiles[("s2", "colour")]
        )
        assert score > 0.9

    def test_unrelated_names(self, dataset):
        profiles = profile_attributes(dataset)
        matcher = NameMatcher()
        score = matcher.score(
            profiles[("s1", "sku")], profiles[("s3", "screen size")]
        )
        assert score < 0.6

    def test_token_reordering(self, dataset):
        profiles = profile_attributes(dataset)
        matcher = NameMatcher()
        score = matcher.score(
            profiles[("s1", "weight")], profiles[("s2", "item weight")]
        )
        assert score > 0.8


class TestInstanceMatcher:
    def test_synonym_found_by_values(self, dataset):
        # 'finish' vs 'color' share the value vocabulary.
        profiles = profile_attributes(dataset)
        matcher = InstanceMatcher()
        score = matcher.score(
            profiles[("s1", "color")], profiles[("s3", "finish")]
        )
        assert score > 0.5

    def test_numeric_text_gate(self, dataset):
        profiles = profile_attributes(dataset)
        matcher = InstanceMatcher()
        score = matcher.score(
            profiles[("s1", "weight")], profiles[("s1", "color")]
        )
        assert score == 0.0

    def test_numeric_scale_agreement(self, dataset):
        # weights in g and kg land on the same base-unit scale.
        profiles = profile_attributes(dataset)
        matcher = InstanceMatcher()
        score = matcher.score(
            profiles[("s1", "weight")], profiles[("s2", "item weight")]
        )
        assert score > 0.4

    def test_different_scales_penalized(self, dataset):
        profiles = profile_attributes(dataset)
        matcher = InstanceMatcher()
        score = matcher.score(
            profiles[("s1", "weight")], profiles[("s3", "screen size")]
        )
        assert score < 0.5


class TestHybridMatcher:
    def test_hybrid_finds_synonym_with_shared_values(self, dataset):
        profiles = profile_attributes(dataset)
        hybrid = HybridMatcher()
        name_only = NameMatcher()
        synonym = hybrid.score(
            profiles[("s1", "color")], profiles[("s3", "finish")]
        )
        assert synonym > name_only.score(
            profiles[("s1", "color")], profiles[("s3", "finish")]
        )

    def test_invalid_weight(self):
        from repro.core import ConfigurationError

        with pytest.raises(ConfigurationError):
            HybridMatcher(name_weight=1.5)

    def test_score_in_range(self, dataset):
        profiles = profile_attributes(dataset)
        hybrid = HybridMatcher()
        keys = list(profiles)
        for a in keys:
            for b in keys:
                assert 0.0 <= hybrid.score(profiles[a], profiles[b]) <= 1.0
