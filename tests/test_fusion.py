"""Tests for all fusion algorithms and copy detection."""

import pytest

from repro.core import ConfigurationError, EmptyInputError
from repro.fusion import (
    AccuCopy,
    AccuVote,
    Claim,
    ClaimSet,
    CopyDetector,
    OnlineFusion,
    TruthFinder,
    VotingFuser,
)
from repro.quality import copy_detection_quality, fusion_accuracy
from repro.synth import ClaimWorldConfig, generate_claims


def claim_set(rows):
    return ClaimSet(Claim(s, i, v) for s, i, v in rows)


@pytest.fixture(scope="module")
def copier_world():
    return generate_claims(
        ClaimWorldConfig(
            n_items=250,
            n_independent=8,
            n_copiers=8,
            accuracy_range=(0.45, 0.75),
            copy_rate=0.9,
            n_false_values=3,
            parent_pool=2,
            parent_accuracy=0.35,
            seed=21,
        )
    )


@pytest.fixture(scope="module")
def clean_world():
    return generate_claims(
        ClaimWorldConfig(
            n_items=250,
            n_independent=10,
            accuracy_range=(0.55, 0.95),
            n_false_values=5,
            seed=22,
        )
    )


class TestVoting:
    def test_majority_wins(self):
        claims = claim_set(
            [("s1", "i", "x"), ("s2", "i", "x"), ("s3", "i", "y")]
        )
        result = VotingFuser().fuse(claims)
        assert result.chosen["i"] == "x"
        assert result.confidence["i"] == pytest.approx(2 / 3)

    def test_deterministic_tie_break(self):
        claims = claim_set([("s1", "i", "x"), ("s2", "i", "y")])
        assert VotingFuser().fuse(claims).chosen["i"] == "x"

    def test_empty_rejected(self):
        with pytest.raises(EmptyInputError):
            VotingFuser().fuse(ClaimSet())


class TestTruthFinder:
    def test_beats_voting_with_skewed_accuracy(self, clean_world):
        vote = fusion_accuracy(
            VotingFuser().fuse(clean_world.claims), clean_world.truth
        )
        tf = fusion_accuracy(
            TruthFinder().fuse(clean_world.claims), clean_world.truth
        )
        assert tf >= vote - 0.02

    def test_trust_ordering_tracks_planted_accuracy(self, clean_world):
        result = TruthFinder().fuse(clean_world.claims)
        sources = sorted(
            clean_world.accuracies,
            key=lambda s: clean_world.accuracies[s],
        )
        worst, best = sources[0], sources[-1]
        assert result.source_accuracy[best] > result.source_accuracy[worst]

    def test_converges(self, clean_world):
        result = TruthFinder(max_iterations=50).fuse(clean_world.claims)
        assert result.iterations < 50

    def test_implication_requires_similarity(self):
        with pytest.raises(ConfigurationError):
            TruthFinder(implication_weight=0.5)

    def test_implication_boosts_similar_values(self):
        from repro.text import levenshtein_similarity

        claims = claim_set(
            [
                ("s1", "i", "12.5 cm"),
                ("s2", "i", "12.5cm"),
                ("s3", "i", "99"),
                ("s4", "i", "99"),
            ]
        )
        plain = TruthFinder().fuse(claims)
        with_implication = TruthFinder(
            implication_weight=0.8, similarity=levenshtein_similarity
        ).fuse(claims)
        # The two near-identical readings support each other.
        assert (
            with_implication.confidence.get("i", 0.0) > 0.0
        )
        assert with_implication.chosen["i"] in {"12.5 cm", "12.5cm", "99"}


class TestAccuVote:
    def test_recovers_planted_accuracies(self, clean_world):
        result = AccuVote(n_false_values=5).fuse(clean_world.claims)
        errors = [
            abs(result.source_accuracy[s] - clean_world.accuracies[s])
            for s in clean_world.accuracies
        ]
        assert sum(errors) / len(errors) < 0.1

    def test_known_accuracies_skip_iteration(self, clean_world):
        result = AccuVote(
            n_false_values=5, known_accuracies=clean_world.accuracies
        ).fuse(clean_world.claims)
        assert result.iterations == 1
        assert fusion_accuracy(result, clean_world.truth) > 0.85

    def test_beats_voting(self, clean_world):
        vote = fusion_accuracy(
            VotingFuser().fuse(clean_world.claims), clean_world.truth
        )
        accu = fusion_accuracy(
            AccuVote(n_false_values=5).fuse(clean_world.claims),
            clean_world.truth,
        )
        assert accu >= vote

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            AccuVote(n_false_values=0)
        with pytest.raises(ConfigurationError):
            AccuVote(initial_accuracy=1.0)


class TestCopyDetection:
    def test_detects_planted_copiers(self, copier_world):
        accuracies = dict(copier_world.accuracies)
        detector = CopyDetector(n_false_values=3)
        detected = detector.detect(
            copier_world.claims, copier_world.truth, accuracies
        )
        quality = copy_detection_quality(
            detected, copier_world.copier_of, include_siblings=True
        )
        assert quality.recall > 0.8

    def test_independent_pairs_mostly_clear(self, clean_world):
        detector = CopyDetector(n_false_values=5)
        detected = detector.detect(
            clean_world.claims, clean_world.truth, clean_world.accuracies
        )
        flagged = [p for p, prob in detected.items() if prob >= 0.5]
        n_pairs = len(clean_world.claims.sources())
        n_pairs = n_pairs * (n_pairs - 1) // 2
        assert len(flagged) / n_pairs < 0.2

    def test_min_overlap_guard(self):
        detector = CopyDetector(min_overlap=5)
        claims = claim_set([("s1", "i", "x"), ("s2", "i", "x")])
        assert (
            detector.pair_probability(
                claims, "s1", "s2", {"i": "x"}, {"s1": 0.8, "s2": 0.8}
            )
            == 0.0
        )

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            CopyDetector(copy_rate=0.0)
        with pytest.raises(ConfigurationError):
            CopyDetector(prior=1.0)


class TestAccuCopy:
    def test_immune_to_copier_cabal(self, copier_world):
        vote = fusion_accuracy(
            VotingFuser().fuse(copier_world.claims), copier_world.truth
        )
        accuvote = fusion_accuracy(
            AccuVote(n_false_values=3).fuse(copier_world.claims),
            copier_world.truth,
        )
        accucopy = fusion_accuracy(
            AccuCopy(n_false_values=3).fuse(copier_world.claims),
            copier_world.truth,
        )
        assert accucopy > vote
        assert accucopy > accuvote
        assert accucopy > 0.8

    def test_copy_probabilities_reported(self, copier_world):
        result = AccuCopy(n_false_values=3).fuse(copier_world.claims)
        assert result.copy_probability
        quality = copy_detection_quality(
            result.copy_probability,
            copier_world.copier_of,
            include_siblings=True,
        )
        assert quality.recall > 0.7

    def test_no_copiers_matches_accuvote(self, clean_world):
        accuvote = AccuVote(n_false_values=5).fuse(clean_world.claims)
        accucopy = AccuCopy(n_false_values=5).fuse(clean_world.claims)
        agreement = sum(
            1
            for item in clean_world.claims.items()
            if accuvote.chosen[item] == accucopy.chosen[item]
        ) / len(clean_world.claims.items())
        assert agreement > 0.95


class TestOnlineFusion:
    def test_matches_batch_answers(self, clean_world):
        online = OnlineFusion(clean_world.accuracies, n_false_values=5)
        result, trace = online.run(clean_world.claims)
        batch = AccuVote(
            n_false_values=5, known_accuracies=clean_world.accuracies
        ).fuse(clean_world.claims)
        agreement = sum(
            1
            for item in clean_world.claims.items()
            if result.chosen[item] == batch.chosen[item]
        ) / len(clean_world.claims.items())
        assert agreement > 0.97

    def test_termination_monotone(self, clean_world):
        online = OnlineFusion(clean_world.accuracies, n_false_values=5)
        __, trace = online.run(clean_world.claims)
        assert list(trace.terminated) == sorted(trace.terminated)
        assert trace.terminated[-1] > 0.9

    def test_probe_order_by_accuracy(self, clean_world):
        online = OnlineFusion(clean_world.accuracies)
        order = online.probe_order(clean_world.claims)
        accuracies = [clean_world.accuracies[s] for s in order]
        assert accuracies == sorted(accuracies, reverse=True)

    def test_early_expected_correctness_rises(self, clean_world):
        online = OnlineFusion(clean_world.accuracies, n_false_values=5)
        __, trace = online.run(clean_world.claims)
        assert trace.expected_correctness[-1] >= trace.expected_correctness[0]

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            OnlineFusion({})
        with pytest.raises(ConfigurationError):
            OnlineFusion({"s": 0.9}, stop_posterior=0.3)


class TestOnlineFusionSparseClaims:
    """Degenerate claim sets the serving layer feeds per entity:
    single-source entities and sources that abstain on most items."""

    def test_single_source_takes_every_claim(self):
        claims = claim_set(
            [("s1", "brand", "canon"), ("s1", "zoom", "4x")]
        )
        online = OnlineFusion({"s1": 0.8})
        result, trace = online.run(claims)
        assert result.chosen == {"brand": "canon", "zoom": "4x"}
        # An unopposed claim still carries real (sub-certain) posterior.
        assert all(0.5 < result.confidence[i] <= 1.0 for i in result.chosen)
        assert trace.probe_order == ("s1",)

    def test_single_claim_single_item(self):
        online = OnlineFusion({"only": 0.9})
        result, __ = online.run(claim_set([("only", "item", "value")]))
        assert result.chosen == {"item": "value"}

    def test_mostly_abstaining_sources(self):
        # Three sources, three items, but each source claims only one
        # item — every item is effectively single-source.
        claims = claim_set(
            [("s1", "a", "1"), ("s2", "b", "2"), ("s3", "c", "3")]
        )
        online = OnlineFusion({"s1": 0.9, "s2": 0.8, "s3": 0.7})
        result, __ = online.run(claims)
        assert result.chosen == {"a": "1", "b": "2", "c": "3"}

    def test_abstention_does_not_vote(self):
        # s2 abstains on "a": s1's unopposed claim must win even though
        # s2 is the more accurate source overall.
        claims = claim_set(
            [
                ("s1", "a", "canon"),
                ("s1", "b", "4x"),
                ("s2", "b", "9x"),
            ]
        )
        online = OnlineFusion({"s1": 0.6, "s2": 0.95})
        result, __ = online.run(claims)
        assert result.chosen["a"] == "canon"
        assert result.chosen["b"] == "9x"

    def test_empty_claim_set_rejected(self):
        online = OnlineFusion({"s1": 0.8})
        with pytest.raises(EmptyInputError):
            online.run(ClaimSet())
