"""Unit and property-based tests for the similarity toolbox."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    cosine_similarity,
    damerau_levenshtein_distance,
    dice_similarity,
    exact_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    measurement_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
)

short_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=12
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        d = levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )


class TestDamerau:
    def test_transposition_counts_one(self):
        assert damerau_levenshtein_distance("ab", "ba") == 1
        assert levenshtein_distance("ab", "ba") == 2

    @given(short_text, short_text)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_classic_example(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_winkler_boosts_prefix(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted > plain

    def test_winkler_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.5)

    @given(short_text, short_text)
    def test_jaro_range_and_symmetry(self, a, b):
        s = jaro_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(jaro_similarity(b, a))


class TestTokenSimilarities:
    def test_jaccard(self):
        assert jaccard_similarity("big data", "big data tools") == pytest.approx(2 / 3)

    def test_dice(self):
        assert dice_similarity("big data", "big data tools") == pytest.approx(4 / 5)

    def test_overlap(self):
        assert overlap_coefficient("big data", "big data tools") == 1.0

    def test_empty_both_is_one(self):
        assert jaccard_similarity("", "") == 1.0
        assert dice_similarity("", "") == 1.0

    def test_empty_one_is_zero(self):
        assert jaccard_similarity("a", "") == 0.0

    def test_accepts_pretokenized(self):
        assert jaccard_similarity(["a", "b"], ["a", "b"]) == 1.0

    @given(short_text, short_text)
    def test_dice_geq_jaccard(self, a, b):
        assert dice_similarity(a, b) >= jaccard_similarity(a, b) - 1e-12


class TestCosine:
    def test_identical_distribution(self):
        assert cosine_similarity("a a b", "a a b") == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity("a", "b") == 0.0


class TestMongeElkan:
    def test_tolerates_token_typos(self):
        sim = monge_elkan_similarity("canon powershot", "cannon powershot")
        assert sim > 0.9

    def test_empty(self):
        assert monge_elkan_similarity("", "") == 1.0
        assert monge_elkan_similarity("a", "") == 0.0


class TestNumericAndMeasurement:
    def test_numeric_identical(self):
        assert numeric_similarity(5.0, 5.0) == 1.0

    def test_numeric_beyond_tolerance(self):
        assert numeric_similarity(100.0, 150.0, tolerance=0.1) == 0.0

    def test_numeric_within_tolerance(self):
        assert 0.0 < numeric_similarity(100.0, 104.0, tolerance=0.1) < 1.0

    def test_numeric_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            numeric_similarity(1.0, 2.0, tolerance=0.0)

    def test_measurement_unit_conversion(self):
        assert measurement_similarity("5.5 in", "13.97 cm") == pytest.approx(
            1.0, abs=0.01
        )

    def test_measurement_different_dimension(self):
        assert measurement_similarity("5 kg", "5 cm") == 0.0

    def test_measurement_falls_back_to_string(self):
        assert measurement_similarity("black", "black") == 1.0

    def test_exact(self):
        assert exact_similarity("a", "a") == 1.0
        assert exact_similarity("a", "b") == 0.0


@pytest.mark.parametrize(
    "function",
    [
        levenshtein_similarity,
        jaro_similarity,
        jaro_winkler_similarity,
        jaccard_similarity,
        dice_similarity,
        overlap_coefficient,
        monge_elkan_similarity,
    ],
)
class TestCommonProperties:
    @given(a=short_text)
    @settings(max_examples=25)
    def test_self_similarity_is_one(self, function, a):
        assert function(a, a) == pytest.approx(1.0)

    @given(a=short_text, b=short_text)
    @settings(max_examples=25)
    def test_range(self, function, a, b):
        assert 0.0 <= function(a, b) <= 1.0 + 1e-9
