"""Tests for identifier-based and incremental linkage."""

import pytest

from repro.core import ConfigurationError, Record
from repro.linkage import (
    IncrementalLinker,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    detect_identifier_attributes,
    link_by_identifier,
    normalize_identifier,
)
from repro.linkage.blocking import first_token_key, token_set_key
from repro.quality import pairwise_cluster_quality
from repro.schema import profile_attributes
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


@pytest.fixture(scope="module")
def corpus():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=50, seed=1)
    )
    return generate_dataset(
        world,
        CorpusConfig(n_sources=10, identifier_probability=1.0, seed=2),
    )


class TestNormalizeIdentifier:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("AB-1234", "ab1234"),
            ("ab 1234", "ab1234"),
            ("AB.12/34", "ab1234"),
        ],
    )
    def test_examples(self, raw, expected):
        assert normalize_identifier(raw) == expected


class TestDetection:
    def test_detects_identifier_attribute_per_source(self, corpus):
        profiles = profile_attributes(corpus)
        detections = detect_identifier_attributes(profiles)
        truth = corpus.ground_truth
        assert detections
        for detection in detections:
            mediated = truth.mediated_attribute(
                detection.source_id, detection.attribute
            )
            assert mediated == "product id"

    def test_min_score_excludes_low(self, corpus):
        profiles = profile_attributes(corpus)
        nothing = detect_identifier_attributes(profiles, min_score=1.01)
        assert nothing == []


class TestIdentifierLinkage:
    def test_links_by_shared_identifier(self, corpus):
        profiles = profile_attributes(corpus)
        detections = detect_identifier_attributes(profiles)
        clusters = link_by_identifier(
            list(corpus.records()), detections
        )
        quality = pairwise_cluster_quality(clusters, corpus.ground_truth)
        assert quality.precision > 0.99
        assert quality.recall > 0.5  # missing-rate holes cost some recall

    def test_short_identifiers_ignored(self):
        records = [
            Record("a", "s1", {"id": "12"}),
            Record("b", "s2", {"id": "12"}),
        ]
        detections = []
        clusters = link_by_identifier(records, detections)
        assert clusters == [["a"], ["b"]]


def all_value_tokens(record):
    """Every ≥2-char token of any value — mirrors TokenBlocker's keys."""
    from repro.text import normalize_value, word_tokens

    tokens = set()
    for value in record.attributes.values():
        tokens.update(
            t for t in word_tokens(normalize_value(value)) if len(t) >= 2
        )
    return tokens


class TestIncrementalLinker:
    def _make(self):
        return IncrementalLinker(
            [all_value_tokens],
            default_product_comparator(),
            ThresholdClassifier(0.72),
            max_candidates_per_record=10_000,
        )

    def test_requires_keys(self):
        with pytest.raises(ConfigurationError):
            IncrementalLinker(
                [], default_product_comparator(), ThresholdClassifier()
            )

    def test_duplicate_record_rejected(self):
        linker = self._make()
        record = Record("a", "s", {"name": "canon x 1"})
        linker.add_batch([record])
        with pytest.raises(ConfigurationError):
            linker.add_batch([record])

    def test_incremental_equals_batch_exactly(self, corpus):
        # With identical candidate generation (all-value-token keys vs
        # TokenBlocker) and a deterministic classifier, incremental
        # union-find must reproduce batch connected components exactly.
        records = list(corpus.records())
        linker = self._make()
        for start in range(0, len(records), 60):
            linker.add_batch(records[start : start + 60])
        batch = linker.batch_equivalent(TokenBlocker())
        assert sorted(map(sorted, linker.clusters())) == sorted(
            map(sorted, batch)
        )

    def test_batch_cost_scales_with_batch_not_corpus(self, corpus):
        records = list(corpus.records())
        linker = self._make()
        first = linker.add_batch(records[:200])
        second = linker.add_batch(records[200:220])
        # 20 new records against an index of 200 should cost far less
        # than re-running the first 200.
        assert second.comparisons < first.comparisons

    def test_clusters_cover_all_added(self, corpus):
        records = list(corpus.records())[:50]
        linker = self._make()
        linker.add_batch(records)
        flattened = [m for c in linker.clusters() for m in c]
        assert sorted(flattened) == sorted(r.record_id for r in records)
