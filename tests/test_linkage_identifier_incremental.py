"""Tests for identifier-based and incremental linkage."""

import pytest

from repro.core import ConfigurationError, Record
from repro.linkage import (
    IncrementalLinker,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    detect_identifier_attributes,
    link_by_identifier,
    normalize_identifier,
)
from repro.linkage.blocking import first_token_key, token_set_key
from repro.quality import pairwise_cluster_quality
from repro.schema import profile_attributes
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


@pytest.fixture(scope="module")
def corpus():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=50, seed=1)
    )
    return generate_dataset(
        world,
        CorpusConfig(n_sources=10, identifier_probability=1.0, seed=2),
    )


class TestNormalizeIdentifier:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("AB-1234", "ab1234"),
            ("ab 1234", "ab1234"),
            ("AB.12/34", "ab1234"),
        ],
    )
    def test_examples(self, raw, expected):
        assert normalize_identifier(raw) == expected


class TestDetection:
    def test_detects_identifier_attribute_per_source(self, corpus):
        profiles = profile_attributes(corpus)
        detections = detect_identifier_attributes(profiles)
        truth = corpus.ground_truth
        assert detections
        for detection in detections:
            mediated = truth.mediated_attribute(
                detection.source_id, detection.attribute
            )
            assert mediated == "product id"

    def test_min_score_excludes_low(self, corpus):
        profiles = profile_attributes(corpus)
        nothing = detect_identifier_attributes(profiles, min_score=1.01)
        assert nothing == []


class TestIdentifierLinkage:
    def test_links_by_shared_identifier(self, corpus):
        profiles = profile_attributes(corpus)
        detections = detect_identifier_attributes(profiles)
        clusters = link_by_identifier(
            list(corpus.records()), detections
        )
        quality = pairwise_cluster_quality(clusters, corpus.ground_truth)
        assert quality.precision > 0.99
        assert quality.recall > 0.5  # missing-rate holes cost some recall

    def test_short_identifiers_ignored(self):
        records = [
            Record("a", "s1", {"id": "12"}),
            Record("b", "s2", {"id": "12"}),
        ]
        detections = []
        clusters = link_by_identifier(records, detections)
        assert clusters == [["a"], ["b"]]


def all_value_tokens(record):
    """Every ≥2-char token of any value — mirrors TokenBlocker's keys."""
    from repro.text import normalize_value, word_tokens

    tokens = set()
    for value in record.attributes.values():
        tokens.update(
            t for t in word_tokens(normalize_value(value)) if len(t) >= 2
        )
    return tokens


class TestIncrementalLinker:
    def _make(self):
        return IncrementalLinker(
            [all_value_tokens],
            default_product_comparator(),
            ThresholdClassifier(0.72),
            max_candidates_per_record=10_000,
        )

    def test_requires_keys(self):
        with pytest.raises(ConfigurationError):
            IncrementalLinker(
                [], default_product_comparator(), ThresholdClassifier()
            )

    def test_duplicate_record_rejected(self):
        linker = self._make()
        record = Record("a", "s", {"name": "canon x 1"})
        linker.add_batch([record])
        with pytest.raises(ConfigurationError):
            linker.add_batch([record])

    def test_incremental_equals_batch_exactly(self, corpus):
        # With identical candidate generation (all-value-token keys vs
        # TokenBlocker) and a deterministic classifier, incremental
        # union-find must reproduce batch connected components exactly.
        records = list(corpus.records())
        linker = self._make()
        for start in range(0, len(records), 60):
            linker.add_batch(records[start : start + 60])
        batch = linker.batch_equivalent(TokenBlocker())
        assert sorted(map(sorted, linker.clusters())) == sorted(
            map(sorted, batch)
        )

    def test_batch_cost_scales_with_batch_not_corpus(self, corpus):
        records = list(corpus.records())
        linker = self._make()
        first = linker.add_batch(records[:200])
        second = linker.add_batch(records[200:220])
        # 20 new records against an index of 200 should cost far less
        # than re-running the first 200.
        assert second.comparisons < first.comparisons

    def test_clusters_cover_all_added(self, corpus):
        records = list(corpus.records())[:50]
        linker = self._make()
        linker.add_batch(records)
        flattened = [m for c in linker.clusters() for m in c]
        assert sorted(flattened) == sorted(r.record_id for r in records)


class _DelegatingClassifier:
    """A threshold rule that is *not* a ``ThresholdClassifier`` subtype,
    forcing the linker onto the full-comparison slow path."""

    def __init__(self, threshold):
        self._inner = ThresholdClassifier(threshold)

    def is_match(self, vector):
        return self._inner.is_match(vector)


class TestIncrementalChurn:
    """remove/resurrect/update lifecycle and index hygiene."""

    def _make(self, classifier=None, max_candidates=10_000):
        return IncrementalLinker(
            [all_value_tokens],
            default_product_comparator(),
            classifier or ThresholdClassifier(0.72),
            max_candidates_per_record=max_candidates,
        )

    def test_remove_deletes_emptied_buckets(self):
        linker = self._make()
        linker.add_batch(
            [
                Record("a", "s", {"name": "canon powershot a560"}),
                Record("b", "s", {"name": "nikon coolpix p50"}),
            ]
        )
        keys_before = set(linker._index)
        linker.remove("b")
        # Every key unique to b is gone entirely, not left as an empty
        # (or b-only) bucket.
        assert all(bucket for bucket in linker._index.values())
        assert all(
            "b" not in bucket for bucket in linker._index.values()
        )
        assert set(linker._index) < keys_before

    def test_update_deletes_abandoned_buckets(self):
        linker = self._make()
        linker.add_batch([Record("a", "s", {"name": "canon alpha"})])
        linker.update(Record("a", "s", {"name": "canon beta"}))
        assert "alpha" not in linker._index
        assert "a" in linker._index["beta"]
        # Shared keys survive with the record still bucketed once.
        assert linker._index["canon"].count("a") == 1

    def test_churn_never_leaks_index_entries(self, corpus):
        records = list(corpus.records())[:80]
        linker = self._make()
        linker.add_batch(records)
        for record in records[:40]:
            linker.remove(record.record_id)
        for record in records[:40]:
            linker.resurrect(record)
            linker.update(record)
        alive = {record.record_id for record in records}
        for key, bucket in linker._index.items():
            assert bucket, f"empty bucket {key!r} left behind"
            assert len(set(bucket)) == len(bucket), f"duplicates in {key!r}"
            assert set(bucket) <= alive

    def test_remove_resurrect_update_keeps_clusters(self):
        linker = self._make()
        matched = [
            Record("a", "s1", {"name": "canon powershot a560"}),
            Record("b", "s2", {"name": "canon powershot a560"}),
        ]
        linker.add_batch(matched)
        assert linker.clusters() == [["a", "b"]]
        linker.remove("b")
        assert linker.clusters() == [["a"]]
        # Resurrection restores the old identity — and with it the old
        # union-find merge, without spending a single comparison.
        linker.resurrect(Record("b", "s2", {"name": "canon powershot"}))
        assert sorted(map(sorted, linker.clusters())) == [["a", "b"]]
        # An in-place update re-keys the index but never unlinks.
        linker.update(Record("b", "s2", {"name": "fuji finepix z5"}))
        assert sorted(map(sorted, linker.clusters())) == [["a", "b"]]
        assert "b" in linker._index["fuji"]

    def test_resurrect_of_live_record_rejected(self):
        linker = self._make()
        record = Record("a", "s", {"name": "canon a560"})
        linker.add_batch([record])
        with pytest.raises(ConfigurationError):
            linker.resurrect(record)

    def test_update_of_unknown_record_rejected(self):
        linker = self._make()
        with pytest.raises(ConfigurationError):
            linker.update(Record("ghost", "s", {"name": "x"}))

    def test_truncation_is_deterministic(self, corpus):
        records = list(corpus.records())[:120]
        runs = []
        for _ in range(2):
            linker = self._make(max_candidates=3)
            stats = [
                linker.add_batch(records[start : start + 40])
                for start in range(0, len(records), 40)
            ]
            runs.append(
                (
                    [s.candidates for s in stats],
                    [s.match_pairs for s in stats],
                    sorted(map(sorted, linker.clusters())),
                )
            )
        assert runs[0] == runs[1]
        # The cap actually binds on this corpus.
        unbounded = self._make()
        unbounded_stats = unbounded.add_batch(records)
        bounded_candidates = sum(runs[0][0])
        assert bounded_candidates < unbounded_stats.candidates
        assert bounded_candidates <= 3 * len(records)

    def test_fast_path_decisions_equal_slow_path(self, corpus):
        """score_bounded + prepared records must decide exactly like the
        full compare path (same matches, same clusters, same stats)."""
        records = list(corpus.records())[:150]
        fast = self._make(ThresholdClassifier(0.72))
        slow = self._make(_DelegatingClassifier(0.72))
        assert fast._threshold is not None  # fast path engaged
        assert slow._threshold is None  # slow path engaged
        for start in range(0, len(records), 50):
            batch = records[start : start + 50]
            fast_stats = fast.add_batch(batch)
            slow_stats = slow.add_batch(batch)
            assert fast_stats.match_pairs == slow_stats.match_pairs
            assert fast_stats.candidates == slow_stats.candidates
            assert fast_stats.comparisons == slow_stats.comparisons
        assert sorted(map(sorted, fast.clusters())) == sorted(
            map(sorted, slow.clusters())
        )

    def test_probe_is_read_only_and_matches_add(self):
        linker = self._make()
        linker.add_batch(
            [
                Record("a", "s1", {"name": "canon powershot a560"}),
                Record("x", "s1", {"name": "nikon coolpix p50"}),
            ]
        )
        probe = Record("q", "s2", {"name": "canon powershot a560"})
        first = linker.probe(probe)
        second = linker.probe(probe)
        assert first == second
        assert first.best == "a"
        assert "q" not in linker
        assert linker.n_records == 2
        # The probe's verdict equals what ingesting would decide.
        stats = linker.add_batch([probe])
        assert [pair[1] for pair in stats.match_pairs] == [
            record_id for record_id, _ in first.matches
        ]

    def test_merge_requires_known_records(self):
        linker = self._make()
        linker.add_batch([Record("a", "s", {"name": "canon a560"})])
        with pytest.raises(ConfigurationError):
            linker.merge("a", "ghost")
        linker.add_batch([Record("b", "s", {"name": "fuji z5"})])
        linker.merge("a", "b")
        assert sorted(map(sorted, linker.clusters())) == [["a", "b"]]
