"""Tests for temporal linkage with decay."""

import pytest

from repro.core import ConfigurationError, Record
from repro.linkage import TemporalField, TemporalMatcher, link_temporal_stream
from repro.quality import pairwise_cluster_quality
from repro.synth import TemporalStreamConfig, generate_temporal_dataset
from repro.text import exact_similarity, jaro_winkler_similarity


def fields():
    return [
        TemporalField("name", jaro_winkler_similarity, weight=2.0, mutable=False),
        TemporalField("affiliation", exact_similarity, weight=1.0),
        TemporalField("city", exact_similarity, weight=1.0),
        TemporalField("topic", exact_similarity, weight=1.0),
    ]


def obs(rid, t, name, affiliation=None, city=None, topic=None):
    attrs = {"name": name}
    if affiliation:
        attrs["affiliation"] = affiliation
    if city:
        attrs["city"] = city
    if topic:
        attrs["topic"] = topic
    return Record(rid, "s", attrs, timestamp=t)


class TestTemporalMatcher:
    def test_zero_decay_is_static(self):
        static = TemporalMatcher(fields(), 0.0, 0.0)
        early = obs("a", 0.0, "wei li", "univ-rome", "rome", "databases")
        late = obs("b", 5.0, "wei li", "univ-oslo", "oslo", "systems")
        near = obs("c", 0.0, "wei li", "univ-oslo", "oslo", "systems")
        assert static.score(early, late) == pytest.approx(
            static.score(early, near)
        )

    def test_disagreement_decay_forgives_old_changes(self):
        matcher = TemporalMatcher(fields(), disagreement_decay=1.0)
        early = obs("a", 0.0, "wei li", "univ-rome", "rome", "databases")
        late = obs("b", 5.0, "wei li", "univ-oslo", "oslo", "systems")
        near = obs("c", 0.2, "wei li", "univ-oslo", "oslo", "systems")
        assert matcher.score(early, late) > matcher.score(early, near)

    def test_agreement_decay_weakens_old_agreements(self):
        matcher = TemporalMatcher(
            fields(), disagreement_decay=0.0, agreement_decay=1.0
        )
        anchor = obs("a", 0.0, "wei li", "univ-rome", "rome", "databases")
        same_now = obs("b", 0.0, "wei li", "univ-rome", "rome", "databases")
        same_old = obs("c", 6.0, "wei li", "univ-rome", "rome", "databases")
        assert matcher.score(anchor, same_now) > matcher.score(
            anchor, same_old
        )

    def test_stable_fields_never_decay(self):
        matcher = TemporalMatcher(fields(), 2.0, 2.0, match_threshold=0.5)
        a = obs("a", 0.0, "wei li")
        b = obs("b", 9.0, "wei li")
        assert matcher.score(a, b) == pytest.approx(1.0)

    def test_no_shared_fields_scores_zero(self):
        matcher = TemporalMatcher(fields())
        a = Record("a", "s", {"other": "x"}, timestamp=0.0)
        b = Record("b", "s", {"name": "y"}, timestamp=0.0)
        assert matcher.score(a, b) == 0.0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            TemporalMatcher([], 0.1)
        with pytest.raises(ConfigurationError):
            TemporalMatcher(fields(), -1.0)
        with pytest.raises(ConfigurationError):
            TemporalField("x", exact_similarity, weight=0.0)


class TestStreamLinkage:
    @pytest.fixture(scope="class")
    def stream(self):
        return generate_temporal_dataset(
            TemporalStreamConfig(
                n_entities=30,
                n_epochs=5,
                evolution_rate=0.4,
                namesake_fraction=0.2,
                seed=9,
            )
        )

    def test_decay_beats_static_on_evolving_entities(self, stream):
        records = list(stream.records())
        truth = stream.ground_truth
        static = TemporalMatcher(
            fields(), 0.0, 0.0, match_threshold=0.75
        )
        decayed = TemporalMatcher(
            fields(), disagreement_decay=0.8, agreement_decay=0.05,
            match_threshold=0.75,
        )
        static_clusters = link_temporal_stream(records, static)
        decayed_clusters = link_temporal_stream(records, decayed)
        static_quality = pairwise_cluster_quality(static_clusters, truth)
        decayed_quality = pairwise_cluster_quality(decayed_clusters, truth)
        assert decayed_quality.f1 > static_quality.f1

    def test_stream_clusters_partition(self, stream):
        records = list(stream.records())
        matcher = TemporalMatcher(fields(), 0.5, 0.05)
        clusters = link_temporal_stream(records, matcher)
        flattened = [m for c in clusters for m in c]
        assert sorted(flattened) == sorted(r.record_id for r in records)
