"""Unit tests for value/name normalization and measurement parsing."""

import pytest

from repro.text import (
    normalize_attribute_name,
    normalize_value,
    normalize_whitespace,
    parse_measurement,
    to_base_unit,
)
from repro.text.normalize import extract_numbers


class TestNormalizeAttributeName:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("Screen-Size (in.)", "screen size in"),
            ("  WEIGHT  ", "weight"),
            ("Mega_Pixels", "mega pixels"),
            ("Größe", "groe"),  # accents stripped, non-ascii dropped
            ("a--b", "a b"),
        ],
    )
    def test_examples(self, raw, expected):
        assert normalize_attribute_name(raw) == expected

    def test_idempotent(self):
        once = normalize_attribute_name("Display: Size!")
        assert normalize_attribute_name(once) == once


class TestNormalizeValue:
    def test_lowercases_and_collapses(self):
        assert normalize_value("  BLACK   Metal ") == "black metal"

    def test_strips_accents(self):
        assert normalize_value("Café") == "cafe"


class TestWhitespace:
    def test_collapse(self):
        assert normalize_whitespace("a \t b\n c") == "a b c"


class TestParseMeasurement:
    def test_simple(self):
        m = parse_measurement("5.5 in")
        assert m.value == 5.5
        assert m.unit == "in"

    def test_decimal_comma(self):
        assert parse_measurement("2,5kg").value == 2.5

    def test_bare_number(self):
        m = parse_measurement("42")
        assert m.value == 42.0
        assert m.unit is None

    def test_non_measurement_returns_none(self):
        assert parse_measurement("black metal") is None
        assert parse_measurement("13 x 5 cm") is None

    def test_in_base_unit_inches_to_cm(self):
        base = parse_measurement("2 in").in_base_unit()
        assert base.unit == "cm"
        assert base.value == pytest.approx(5.08)

    def test_in_base_unit_unknown_unit_passthrough(self):
        base = parse_measurement("3 furlongs")
        assert base is None or base.unit != "cm"


class TestUnitConversion:
    @pytest.mark.parametrize(
        "value,unit,base,expected",
        [
            (1.0, "kg", "g", 1000.0),
            (1.0, "in", "cm", 2.54),
            (2.0, "GHz", "hz", 2e9),
            (1024.0, "mb", "gb", 1.0),
        ],
    )
    def test_known_units(self, value, unit, base, expected):
        result = to_base_unit(value, unit)
        assert result is not None
        assert result[0] == base
        assert result[1] == pytest.approx(expected)

    def test_unknown_unit(self):
        assert to_base_unit(1.0, "parsec") is None


class TestExtractNumbers:
    def test_multiple_numbers(self):
        assert extract_numbers("13 x 5.5 cm") == [13.0, 5.5]

    def test_no_numbers(self):
        assert extract_numbers("black") == []
