"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro.quality.report
import repro.text.tokens

MODULES = [repro.text.tokens, repro.quality.report]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
