"""Tests for every blocking scheme and the block collection."""

import pytest

from repro.core import ConfigurationError, Record
from repro.linkage import (
    Block,
    BlockCollection,
    CanopyBlocker,
    CompositeBlocker,
    QGramBlocker,
    SortedNeighborhoodBlocker,
    StandardBlocker,
    SuffixArrayBlocker,
    TokenBlocker,
)
from repro.linkage.blocking import (
    attribute_key,
    compound_key,
    first_token_key,
    normalized_attribute_key,
    prefix_key,
    soundex_key,
    token_set_key,
)


def record(rid, name, **attrs):
    attrs["name"] = name
    return Record(rid, "s", {k: str(v) for k, v in attrs.items()})


@pytest.fixture
def records():
    return [
        record("r1", "canon powershot a95", color="black"),
        record("r2", "canon powershot a95", color="black"),
        record("r3", "cannon powershot a95"),          # typo'd brand
        record("r4", "nikon coolpix 4500"),
        record("r5", "nikon coolpix 4500 camera"),
        record("r6", "sony alpha 7"),
    ]


class TestBlockCollection:
    def test_from_key_map_drops_singletons(self):
        collection = BlockCollection.from_key_map(
            {"a": ["r1", "r2"], "b": ["r3"]}
        )
        assert len(collection) == 1

    def test_candidate_pairs_deduplicated(self):
        collection = BlockCollection(
            [Block("k1", ("r1", "r2")), Block("k2", ("r1", "r2", "r3"))]
        )
        pairs = collection.candidate_pairs()
        assert frozenset(("r1", "r2")) in pairs
        assert len(pairs) == 3
        assert collection.n_comparisons == 4  # 1 + 3, duplicates counted

    def test_blocks_of_record(self):
        collection = BlockCollection(
            [Block("k1", ("r1", "r2")), Block("k2", ("r1", "r3"))]
        )
        assert len(collection.blocks_of("r1")) == 2
        assert len(collection.blocks_of("r9")) == 0


class TestKeyFunctions:
    def test_attribute_key(self, records):
        assert attribute_key("color")(records[0]) == "black"
        assert attribute_key("color")(records[3]) is None

    def test_normalized_key(self):
        r = record("x", "  CANON Pro ")
        assert normalized_attribute_key("name")(r) == "canon pro"

    def test_first_token(self, records):
        assert first_token_key("name")(records[0]) == "canon"

    def test_prefix(self, records):
        assert prefix_key("name", 3)(records[0]) == "can"

    def test_soundex_collides_for_typo(self, records):
        key = soundex_key("name")
        assert key(records[0]) == key(records[2])  # canon vs cannon

    def test_token_set(self, records):
        assert set(token_set_key("name")(records[0])) == {
            "canon", "powershot", "a95",
        }

    def test_compound(self, records):
        key = compound_key(first_token_key("name"), attribute_key("color"))
        assert key(records[0]) == "canon|black"
        assert key(records[3]) is None  # color missing


class TestStandardBlocker:
    def test_groups_by_key(self, records):
        blocks = StandardBlocker(first_token_key("name")).block(records)
        pairs = blocks.candidate_pairs()
        assert frozenset(("r1", "r2")) in pairs
        assert frozenset(("r4", "r5")) in pairs
        assert frozenset(("r1", "r3")) not in pairs  # typo broke the key

    def test_multi_key(self, records):
        blocks = StandardBlocker(token_set_key("name")).block(records)
        # 'powershot' token rescues the typo'd pair.
        assert frozenset(("r1", "r3")) in blocks.candidate_pairs()


class TestSortedNeighborhood:
    def test_window_pairs_neighbors(self, records):
        blocker = SortedNeighborhoodBlocker(
            normalized_attribute_key("name"), window=2
        )
        pairs = blocker.block(records).candidate_pairs()
        assert frozenset(("r1", "r2")) in pairs

    def test_typo_survives_sort_locality(self, records):
        blocker = SortedNeighborhoodBlocker(
            normalized_attribute_key("name"), window=3
        )
        pairs = blocker.block(records).candidate_pairs()
        assert frozenset(("r1", "r3")) in pairs or frozenset(
            ("r2", "r3")
        ) in pairs

    def test_small_input_single_block(self):
        blocker = SortedNeighborhoodBlocker(
            normalized_attribute_key("name"), window=10
        )
        rs = [record("a", "x"), record("b", "y")]
        assert blocker.block(rs).candidate_pairs() == {
            frozenset(("a", "b"))
        }

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocker(attribute_key("name"), window=1)

    def test_window_size_monotone_in_candidates(self, records):
        small = SortedNeighborhoodBlocker(
            normalized_attribute_key("name"), window=2
        ).block(records)
        large = SortedNeighborhoodBlocker(
            normalized_attribute_key("name"), window=4
        ).block(records)
        assert large.candidate_pairs() >= small.candidate_pairs()


class TestCanopy:
    def test_similar_records_share_canopy(self, records):
        pairs = CanopyBlocker(loose=0.3, tight=0.7).block(records)
        assert frozenset(("r1", "r2")) in pairs.candidate_pairs()

    def test_dissimilar_records_separated(self, records):
        pairs = CanopyBlocker(loose=0.5, tight=0.8).block(records)
        assert frozenset(("r1", "r6")) not in pairs.candidate_pairs()

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            CanopyBlocker(loose=0.8, tight=0.4)

    def test_deterministic_given_seed(self, records):
        a = CanopyBlocker(seed=5).block(records).candidate_pairs()
        b = CanopyBlocker(seed=5).block(records).candidate_pairs()
        assert a == b


class TestQGram:
    def test_typo_robust(self, records):
        blocker = QGramBlocker(normalized_attribute_key("name"), q=3)
        pairs = blocker.block(records).candidate_pairs()
        assert frozenset(("r1", "r3")) in pairs

    def test_max_block_size_prunes(self, records):
        unpruned = QGramBlocker(
            normalized_attribute_key("name"), q=3
        ).block(records)
        pruned = QGramBlocker(
            normalized_attribute_key("name"), q=3, max_block_size=2
        ).block(records)
        assert pruned.n_comparisons <= unpruned.n_comparisons

    def test_invalid_q(self):
        with pytest.raises(ConfigurationError):
            QGramBlocker(attribute_key("name"), q=0)


class TestSuffixArray:
    def test_shared_suffix_blocks_together(self, records):
        blocker = SuffixArrayBlocker(
            normalized_attribute_key("name"), min_suffix_length=5
        )
        pairs = blocker.block(records).candidate_pairs()
        assert frozenset(("r1", "r3")) in pairs  # share 'powershota95'

    def test_max_block_size(self, records):
        blocker = SuffixArrayBlocker(
            normalized_attribute_key("name"),
            min_suffix_length=2,
            max_block_size=1,
        )
        assert blocker.block(records).candidate_pairs() == set()


class TestTokenBlocker:
    def test_schema_agnostic(self):
        rs = [
            Record("a", "s", {"title": "canon eos"}),
            Record("b", "s", {"nome prodotto": "canon eos"}),
        ]
        pairs = TokenBlocker().block(rs).candidate_pairs()
        assert frozenset(("a", "b")) in pairs

    def test_min_token_length(self, records):
        blocks = TokenBlocker(min_token_length=4).block(records)
        keys = {block.key for block in blocks}
        assert "a95" not in keys

    def test_stop_token_pruning(self):
        rs = [record(f"r{i}", f"camera item {i}") for i in range(10)]
        pruned = TokenBlocker(max_block_size=5).block(rs)
        assert pruned.candidate_pairs() == set()


class TestComposite:
    def test_union_of_children(self, records):
        composite = CompositeBlocker(
            [
                StandardBlocker(first_token_key("name")),
                StandardBlocker(soundex_key("name")),
            ]
        )
        pairs = composite.block(records).candidate_pairs()
        assert frozenset(("r1", "r2")) in pairs
        assert frozenset(("r1", "r3")) in pairs  # via soundex

    def test_requires_children(self):
        with pytest.raises(ConfigurationError):
            CompositeBlocker([])
