"""Tests for CRH numeric truth discovery."""

import statistics

import pytest

from repro.core import ConfigurationError, EmptyInputError
from repro.fusion import Claim, ClaimSet, CRHNumericFuser, parse_numeric_claims
from repro.synth import NumericClaimWorldConfig, generate_numeric_claims


def mae(estimates, truth):
    return sum(abs(estimates[i] - truth[i]) for i in truth) / len(truth)


@pytest.fixture(scope="module")
def outlier_world():
    return generate_numeric_claims(
        NumericClaimWorldConfig(
            n_items=100,
            n_sources=12,
            outlier_sources=4,
            outlier_rate=0.4,
            seed=2,
        )
    )


class TestParseNumericClaims:
    def test_plain_floats(self):
        claims = ClaimSet([Claim("s", "i", "12.5")])
        assert parse_numeric_claims(claims) == {("s", "i"): 12.5}

    def test_measurements_convert_units(self):
        claims = ClaimSet(
            [Claim("s1", "i", "2 in"), Claim("s2", "i", "5.08 cm")]
        )
        numeric = parse_numeric_claims(claims)
        assert numeric[("s1", "i")] == pytest.approx(numeric[("s2", "i")])

    def test_decimal_comma(self):
        claims = ClaimSet([Claim("s", "i", "2,5")])
        assert parse_numeric_claims(claims)[("s", "i")] == 2.5

    def test_unparseable_skipped(self):
        claims = ClaimSet([Claim("s", "i", "black")])
        assert parse_numeric_claims(claims) == {}


class TestCRH:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CRHNumericFuser(loss="huber")
        with pytest.raises(ConfigurationError):
            CRHNumericFuser(max_iterations=0)

    def test_empty_rejected(self):
        with pytest.raises(EmptyInputError):
            CRHNumericFuser().fuse_values({})

    def test_unanimous_claims_recovered_exactly(self):
        claims = {(f"s{k}", "i"): 7.0 for k in range(5)}
        truths, weights, __ = CRHNumericFuser().fuse_values(claims)
        assert truths["i"] == 7.0
        assert all(w == pytest.approx(1.0) for w in weights.values())

    def test_beats_mean_under_outliers(self, outlier_world):
        truths, __, __ = CRHNumericFuser().fuse_values(outlier_world.claims)
        by_item = {}
        for (__, item), value in outlier_world.claims.items():
            by_item.setdefault(item, []).append(value)
        mean_est = {i: sum(v) / len(v) for i, v in by_item.items()}
        assert mae(truths, outlier_world.truth) < 0.5 * mae(
            mean_est, outlier_world.truth
        )

    def test_beats_or_matches_median_under_outliers(self, outlier_world):
        truths, __, __ = CRHNumericFuser().fuse_values(outlier_world.claims)
        by_item = {}
        for (__, item), value in outlier_world.claims.items():
            by_item.setdefault(item, []).append(value)
        median_est = {
            i: statistics.median(v) for i, v in by_item.items()
        }
        assert mae(truths, outlier_world.truth) <= 1.05 * mae(
            median_est, outlier_world.truth
        )

    def test_outlier_sources_downweighted(self, outlier_world):
        __, weights, __ = CRHNumericFuser().fuse_values(outlier_world.claims)
        outlier_mean = sum(
            weights[s] for s in outlier_world.outlier_sources
        ) / len(outlier_world.outlier_sources)
        honest = [
            s for s in weights if s not in outlier_world.outlier_sources
        ]
        honest_mean = sum(weights[s] for s in honest) / len(honest)
        assert honest_mean > outlier_mean

    def test_squared_loss_runs(self, outlier_world):
        truths, __, __ = CRHNumericFuser(loss="squared").fuse_values(
            outlier_world.claims
        )
        assert len(truths) == 100

    def test_claimset_adapter(self):
        claims = ClaimSet(
            [
                Claim("s1", "i", "10.0"),
                Claim("s2", "i", "10.2"),
                Claim("s3", "i", "400"),
            ]
        )
        result = CRHNumericFuser().fuse(claims)
        assert float(result.chosen["i"]) == pytest.approx(10.1, abs=0.2)
        assert set(result.source_accuracy) == {"s1", "s2", "s3"}

    def test_deterministic(self, outlier_world):
        a = CRHNumericFuser().fuse_values(outlier_world.claims)
        b = CRHNumericFuser().fuse_values(outlier_world.claims)
        assert a == b


class TestNumericGenerator:
    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            NumericClaimWorldConfig(value_range=(5, 5))
        with pytest.raises(ConfigurationError):
            NumericClaimWorldConfig(noise_range=(0.0, 0.1))
        with pytest.raises(ConfigurationError):
            NumericClaimWorldConfig(outlier_sources=99)

    def test_noise_within_planted_band(self):
        planted = generate_numeric_claims(
            NumericClaimWorldConfig(
                n_items=400, n_sources=4, noise_range=(0.01, 0.02), seed=5
            )
        )
        for source, sigma in planted.noise_levels.items():
            deviations = [
                value - planted.truth[item]
                for (s, item), value in planted.claims.items()
                if s == source
            ]
            observed = (
                sum(d * d for d in deviations) / len(deviations)
            ) ** 0.5
            assert observed == pytest.approx(sigma, rel=0.25)

    def test_coverage(self):
        planted = generate_numeric_claims(
            NumericClaimWorldConfig(
                n_items=200, n_sources=5, coverage=0.5, seed=3
            )
        )
        assert 300 < len(planted.claims) < 700
