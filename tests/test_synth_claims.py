"""Unit tests for planted claim-world generation."""

import pytest

from repro.core import ConfigurationError
from repro.fusion import ClaimSet
from repro.synth import ClaimWorldConfig, generate_claims


@pytest.fixture(scope="module")
def planted():
    return generate_claims(
        ClaimWorldConfig(
            n_items=200,
            n_independent=8,
            n_copiers=4,
            accuracy_range=(0.7, 0.9),
            copy_rate=0.9,
            seed=42,
        )
    )


class TestStructure:
    def test_source_counts(self, planted):
        assert len(planted.claims.sources()) == 12
        assert len(planted.independent_sources) == 8
        assert len(planted.copier_of) == 4

    def test_full_coverage_by_default(self, planted):
        for source in planted.claims.sources():
            assert len(planted.claims.claims_by(source)) == 200

    def test_truth_defined_for_every_item(self, planted):
        for item in planted.claims.items():
            assert item in planted.truth

    def test_deterministic(self):
        config = ClaimWorldConfig(n_items=30, n_independent=4, seed=7)
        p1 = generate_claims(config)
        p2 = generate_claims(config)
        assert [
            (c.source_id, c.item_id, c.value) for c in p1.claims
        ] == [(c.source_id, c.item_id, c.value) for c in p2.claims]


class TestPlantedStatistics:
    def test_empirical_accuracy_near_planted(self, planted):
        for source in planted.independent_sources:
            claims = planted.claims.claims_by(source)
            correct = sum(
                1 for c in claims if c.value == planted.truth[c.item_id]
            )
            empirical = correct / len(claims)
            assert empirical == pytest.approx(
                planted.accuracies[source], abs=0.12
            )

    def test_copiers_agree_with_parent(self, planted):
        for copier, parent in planted.copier_of.items():
            agreements = 0
            shared = 0
            for item in planted.claims.items():
                copier_value = planted.claims.value_of(copier, item)
                parent_value = planted.claims.value_of(parent, item)
                if copier_value is None or parent_value is None:
                    continue
                shared += 1
                if copier_value == parent_value:
                    agreements += 1
            # With copy_rate=0.9 the copier should agree far more often
            # than two independent ~0.8-accurate sources (~0.65).
            assert agreements / shared > 0.8

    def test_partial_coverage(self):
        planted = generate_claims(
            ClaimWorldConfig(
                n_items=100, n_independent=5, coverage=0.5, seed=3
            )
        )
        counts = [
            len(planted.claims.claims_by(s))
            for s in planted.claims.sources()
        ]
        assert all(20 < c < 80 for c in counts)

    def test_chained_copiers_point_at_copiers_sometimes(self):
        planted = generate_claims(
            ClaimWorldConfig(
                n_items=10,
                n_independent=2,
                n_copiers=30,
                copier_chains=True,
                seed=1,
            )
        )
        parents = set(planted.copier_of.values())
        assert any(parent.startswith("cop") for parent in parents)


class TestClaimSetModel:
    def test_duplicate_claim_rejected(self):
        from repro.core import DataModelError
        from repro.fusion import Claim

        claims = ClaimSet([Claim("s", "i", "v")])
        with pytest.raises(DataModelError):
            claims.add(Claim("s", "i", "w"))

    def test_values_and_supporters(self, planted):
        item = planted.claims.items()[0]
        values = planted.claims.values_for(item)
        assert planted.truth[item] in values or values
        for value in values:
            supporters = planted.claims.supporters(item, value)
            assert all(
                planted.claims.value_of(s, item) == value for s in supporters
            )

    def test_restricted_to_sources(self, planted):
        keep = planted.independent_sources[:2]
        restricted = planted.claims.restricted_to_sources(keep)
        assert set(restricted.sources()) == set(keep)

    def test_shared_items_symmetric_size(self, planted):
        a, b = planted.claims.sources()[:2]
        assert len(planted.claims.shared_items(a, b)) == len(
            planted.claims.shared_items(b, a)
        )


class TestValidation:
    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            ClaimWorldConfig(n_items=0)
        with pytest.raises(ConfigurationError):
            ClaimWorldConfig(copy_rate=2.0)
        with pytest.raises(ConfigurationError):
            ClaimWorldConfig(coverage=0.0)
        with pytest.raises(ConfigurationError):
            ClaimWorldConfig(accuracy_range=(0.9, 0.2))
