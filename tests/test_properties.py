"""Library-wide property-based tests (hypothesis).

These check structural invariants that must hold for *any* input, not
just the curated fixtures: blocking soundness, meta-blocking
containment, fusion posterior normalization, canonicalization
idempotence, and clustering partition properties.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GroundTruth, Record
from repro.fusion import AccuVote, Claim, ClaimSet, VotingFuser
from repro.linkage import (
    Block,
    BlockCollection,
    CanopyBlocker,
    MinHashBlocker,
    QGramBlocker,
    SortedNeighborhoodBlocker,
    StandardBlocker,
    TokenBlocker,
    connected_components,
    meta_block,
)
from repro.linkage.blocking import normalized_attribute_key, token_set_key
from repro.quality import bcubed_quality, blocking_quality, total_pairs
from repro.text import canonical_value, normalize_attribute_name

# --- strategies ------------------------------------------------------

short_word = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)


@st.composite
def record_lists(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    records = []
    for index in range(n):
        n_tokens = draw(st.integers(min_value=0, max_value=4))
        name = " ".join(draw(short_word) for __ in range(n_tokens))
        attributes = {}
        if name:
            attributes["name"] = name
        if draw(st.booleans()):
            attributes["color"] = draw(short_word)
        if not attributes:
            attributes = {"name": "x"}
        records.append(Record(f"r{index}", f"s{index % 3}", attributes))
    return records


BLOCKERS = [
    StandardBlocker(normalized_attribute_key("name")),
    StandardBlocker(token_set_key("name")),
    SortedNeighborhoodBlocker(normalized_attribute_key("name"), window=3),
    CanopyBlocker(loose=0.3, tight=0.7),
    QGramBlocker(normalized_attribute_key("name"), q=3),
    TokenBlocker(),
    MinHashBlocker(n_hashes=16, bands=4),
]


@pytest.mark.parametrize(
    "blocker", BLOCKERS, ids=lambda b: b.name
)
class TestBlockingInvariants:
    @given(records=record_lists())
    @settings(max_examples=20, deadline=None)
    def test_candidates_are_real_record_pairs(self, blocker, records):
        ids = {record.record_id for record in records}
        for pair in blocker.block(records).candidate_pairs():
            assert len(pair) == 2
            assert pair <= ids

    @given(records=record_lists())
    @settings(max_examples=20, deadline=None)
    def test_candidate_count_bounded_by_quadratic(self, blocker, records):
        pairs = blocker.block(records).candidate_pairs()
        assert len(pairs) <= total_pairs(len(records))

    @given(records=record_lists())
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, blocker, records):
        first = blocker.block(records).candidate_pairs()
        second = blocker.block(list(records)).candidate_pairs()
        assert first == second


class TestMetaBlockingInvariants:
    @given(records=record_lists())
    @settings(max_examples=15, deadline=None)
    def test_pruned_subset_of_unpruned(self, records):
        blocks = TokenBlocker().block(records)
        full = blocks.candidate_pairs()
        for pruning in ("wep", "cep", "wnp", "cnp"):
            assert meta_block(blocks, pruning=pruning) <= full

    def test_weights_nonnegative(self):
        from repro.linkage import build_blocking_graph

        blocks = BlockCollection(
            [Block("a", ("r1", "r2", "r3")), Block("b", ("r1", "r2"))]
        )
        for scheme in ("cbs", "js", "arcs"):
            graph = build_blocking_graph(blocks, weight=scheme)
            assert all(w >= 0 for w in graph.weights.values())


@st.composite
def claim_sets(draw):
    n_sources = draw(st.integers(min_value=1, max_value=5))
    n_items = draw(st.integers(min_value=1, max_value=8))
    claims = ClaimSet()
    rng = random.Random(draw(st.integers(min_value=0, max_value=999)))
    for s in range(n_sources):
        for i in range(n_items):
            if rng.random() < 0.8:
                claims.add(
                    Claim(f"s{s}", f"i{i}", f"v{rng.randrange(4)}")
                )
    if len(claims) == 0:
        claims.add(Claim("s0", "i0", "v0"))
    return claims


class TestFusionInvariants:
    @given(claims=claim_sets())
    @settings(max_examples=25, deadline=None)
    def test_vote_chooses_claimed_values(self, claims):
        result = VotingFuser().fuse(claims)
        for item, value in result.chosen.items():
            assert value in claims.values_for(item)
        assert set(result.chosen) == set(claims.items())

    @given(claims=claim_sets())
    @settings(max_examples=25, deadline=None)
    def test_accuvote_confidences_are_probabilities(self, claims):
        result = AccuVote(n_false_values=4, max_iterations=10).fuse(claims)
        for item in claims.items():
            assert 0.0 <= result.confidence[item] <= 1.0 + 1e-9
        for accuracy in result.source_accuracy.values():
            assert 0.0 < accuracy < 1.0

    @given(claims=claim_sets())
    @settings(max_examples=15, deadline=None)
    def test_accuvote_posteriors_sum_to_one_per_item(self, claims):
        fuser = AccuVote(n_false_values=4, max_iterations=10)
        result = fuser.fuse(claims)
        posteriors = fuser._posteriors(claims, result.source_accuracy)
        for item in claims.items():
            sigma = sum(
                posteriors[(item, value)]
                for value in claims.values_for(item)
            )
            assert sigma == pytest.approx(1.0)


class TestTextInvariants:
    @given(st.text(max_size=30))
    @settings(max_examples=50)
    def test_canonical_value_idempotent(self, value):
        once = canonical_value(value)
        assert canonical_value(once) == once

    @given(st.text(max_size=30))
    @settings(max_examples=50)
    def test_normalize_attribute_name_idempotent(self, name):
        once = normalize_attribute_name(name)
        assert normalize_attribute_name(once) == once

    @given(
        st.floats(min_value=0.1, max_value=1000, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_unit_round_trip_inches(self, value):
        a = canonical_value(f"{value:.6f} in")
        b = canonical_value(f"{value * 2.54:.6f} cm")
        # 4 significant digits of slack from canonical formatting.
        assert a.split()[-1] == b.split()[-1] == "cm"
        assert float(a.split()[0]) == pytest.approx(
            float(b.split()[0]), rel=2e-3
        )


class TestSimilarityInvariants:
    """Metric axioms every string-similarity measure must satisfy for
    arbitrary inputs: symmetry, identity, and the [0, 1] range."""

    @staticmethod
    def _measures():
        from repro.text.similarity import (
            jaccard_similarity,
            jaro_winkler_similarity,
        )
        from repro.text.tokens import qgrams

        def qgram_similarity(a, b):
            return jaccard_similarity(qgrams(a), qgrams(b))

        return [
            jaccard_similarity,
            jaro_winkler_similarity,
            qgram_similarity,
        ]

    @given(a=st.text(max_size=20), b=st.text(max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_symmetric(self, a, b):
        for measure in self._measures():
            assert measure(a, b) == measure(b, a)

    @given(a=st.text(min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_identity(self, a):
        for measure in self._measures():
            assert measure(a, a) == pytest.approx(1.0)

    @given(a=st.text(max_size=20), b=st.text(max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_bounded_unit_interval(self, a, b):
        for measure in self._measures():
            score = measure(a, b)
            assert 0.0 <= score <= 1.0


class TestClusteringInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12),
                st.integers(min_value=0, max_value=12),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=30)
    def test_components_partition(self, edges):
        pairs = [(f"r{a}", f"r{b}") for a, b in edges if a != b]
        all_ids = [f"r{i}" for i in range(13)]
        clusters = connected_components(pairs, all_ids)
        flattened = sorted(m for c in clusters for m in c)
        assert flattened == sorted(all_ids)

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=4),
            min_size=1,
        )
    )
    @settings(max_examples=30)
    def test_bcubed_perfect_for_true_clustering(self, mapping):
        truth = GroundTruth(
            {f"r{k}": f"e{v}" for k, v in mapping.items()}
        )
        quality = bcubed_quality(truth.true_clusters(), truth)
        assert quality.precision == pytest.approx(1.0)
        assert quality.recall == pytest.approx(1.0)


# --- fault-tolerance invariants --------------------------------------


@st.composite
def fault_plans(draw):
    """Records, their pair list, and an arbitrary fault pattern:
    up to 3 persistent poison pairs plus transient chunk crashes."""
    n = draw(st.integers(min_value=2, max_value=12))
    records = [
        Record(
            f"r{index}",
            f"s{index % 2}",
            {"name": draw(short_word), "color": draw(short_word)},
        )
        for index in range(n)
    ]
    ids = [record.record_id for record in records]
    pairs = [
        (ids[i], ids[j])
        for i in range(len(ids))
        for j in range(i + 1, len(ids))
    ]
    n_chunks = math.ceil(len(pairs) / 4)
    poison = draw(
        st.lists(
            st.sampled_from(pairs), unique=True, min_size=0, max_size=3
        )
    )
    transient = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_chunks - 1),
            unique=True,
            max_size=3,
        )
    )
    return records, pairs, poison, transient


class TestResilienceInvariants:
    """For *any* fault pattern, a ``failure="skip"`` run must degrade
    gracefully: quarantined and processed work partition the input,
    and no match appears that the fault-free run would not produce."""

    @staticmethod
    def _config(poison, transient):
        from repro.obs import ManualClock
        from repro.resilience import ResilienceConfig, RetryPolicy
        from repro.resilience.testing import FaultInjector, crash

        clock = ManualClock(tick=0.0)
        specs = [crash(item=pair) for pair in poison]
        specs += [crash(chunk=index, attempts=1) for index in transient]
        return ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay=1.0),
            failure="skip",
            clock=clock,
            sleep=clock.advance,
            fault_injector=FaultInjector(*specs),
        )

    @staticmethod
    def _engine(resilience=None):
        from repro.linkage import (
            FieldComparator,
            ParallelComparisonEngine,
            RecordComparator,
        )
        from repro.text import exact_similarity

        comparator = RecordComparator(
            fields=[
                FieldComparator("name", exact_similarity, weight=2.0),
                FieldComparator("color", exact_similarity),
            ]
        )
        return ParallelComparisonEngine(
            comparator, n_workers=1, chunk_size=4, resilience=resilience
        )

    @given(plan=fault_plans())
    @settings(max_examples=25, deadline=None)
    def test_processed_and_quarantined_partition_pairs(self, plan):
        records, pairs, poison, transient = plan
        engine = self._engine(self._config(poison, transient))
        vectors = engine.compare_pairs(records, pairs)
        processed = [(v.left_id, v.right_id) for v in vectors]
        quarantined = engine.dead_letters.quarantined_items()
        assert set(processed) | set(quarantined) == set(pairs)
        assert set(processed) & set(quarantined) == set()
        assert len(processed) + len(quarantined) == len(pairs)
        assert set(quarantined) == set(poison)

    @given(plan=fault_plans())
    @settings(max_examples=25, deadline=None)
    def test_skip_matches_subset_of_fault_free_matches(self, plan):
        from repro.linkage import ThresholdClassifier

        records, pairs, poison, transient = plan
        classifier = ThresholdClassifier(0.9)
        clean = self._engine().match_pairs(records, pairs, classifier)
        run = self._engine(self._config(poison, transient)).match_pairs(
            records, pairs, classifier
        )
        assert run.match_pairs <= clean.match_pairs
        missing = clean.match_pairs - run.match_pairs
        assert missing <= {frozenset(pair) for pair in poison}


# --- recovery invariants ---------------------------------------------


@st.composite
def kill_plans(draw):
    """A workload plus an arbitrary kill point: the chunk size and the
    chunk index at which the run dies mid-flight."""
    n = draw(st.integers(min_value=4, max_value=10))
    records = [
        Record(
            f"r{index}",
            f"s{index % 2}",
            {"name": draw(short_word), "color": draw(short_word)},
        )
        for index in range(n)
    ]
    ids = [record.record_id for record in records]
    pairs = [
        (ids[i], ids[j])
        for i in range(len(ids))
        for j in range(i + 1, len(ids))
    ]
    chunk_size = draw(st.integers(min_value=2, max_value=6))
    n_chunks = math.ceil(len(pairs) / chunk_size)
    kill_chunk = draw(st.integers(min_value=0, max_value=n_chunks - 1))
    return records, pairs, chunk_size, kill_chunk


class TestRecoveryInvariants:
    """Resume idempotence: for *any* workload and *any* kill point, a
    run aborted at a chunk boundary and resumed from its checkpoints
    produces exactly the output of a single uninterrupted run."""

    @staticmethod
    def _engine(chunk_size, execution="serial", resilience=None,
                checkpoint=None):
        from repro.linkage import (
            FieldComparator,
            ParallelComparisonEngine,
            RecordComparator,
        )
        from repro.text import exact_similarity

        comparator = RecordComparator(
            fields=[
                FieldComparator("name", exact_similarity, weight=2.0),
                FieldComparator("color", exact_similarity, weight=1.0),
            ]
        )
        return ParallelComparisonEngine(
            comparator,
            execution=execution,
            n_workers=1 if execution == "serial" else 2,
            chunk_size=chunk_size,
            resilience=resilience,
            checkpoint=checkpoint,
        )

    def _check_resume_equals_single_run(self, plan, execution):
        import tempfile

        from repro.linkage import ThresholdClassifier
        from repro.recovery import RunStore
        from repro.resilience import (
            ChunkExecutionError,
            ResilienceConfig,
            RetryPolicy,
        )
        from repro.resilience.testing import FaultInjector, crash

        records, pairs, chunk_size, kill_chunk = plan
        classifier = ThresholdClassifier(0.9)
        single = self._engine(chunk_size, execution).match_pairs(
            records, pairs, classifier
        )
        with tempfile.TemporaryDirectory() as root:
            # The "kill": abort hard at the chosen chunk, leaving only
            # the chunks completed before it checkpointed.
            abort = ResilienceConfig(
                retry=RetryPolicy(max_attempts=1, base_delay=0.0),
                failure="fail",
                fault_injector=FaultInjector(crash(chunk=kill_chunk)),
            )
            with pytest.raises(ChunkExecutionError):
                self._engine(
                    chunk_size,
                    execution,
                    resilience=abort,
                    checkpoint=RunStore(root),
                ).match_pairs(records, pairs, classifier)
            resumed = self._engine(
                chunk_size, execution, checkpoint=RunStore(root)
            ).match_pairs(records, pairs, classifier)
        assert resumed.match_pairs == single.match_pairs
        assert resumed.scored_edges == single.scored_edges
        assert resumed.completed_chunks == resumed.n_chunks

    @given(plan=kill_plans())
    @settings(max_examples=25, deadline=None)
    def test_resume_equals_single_run_serial(self, plan):
        self._check_resume_equals_single_run(plan, "serial")

    @pytest.mark.slow
    @given(plan=kill_plans())
    @settings(max_examples=5, deadline=None)
    def test_resume_equals_single_run_process(self, plan):
        self._check_resume_equals_single_run(plan, "process")


class TestShardedKillResumeInvariants:
    """Sharded resume idempotence, with a *real* process kill.

    For any corpus, shard count, and chunk size: kill one shard's
    worker mid-matching (``tests/dist_driver.py`` dies hard with
    ``os._exit``), resume against the same checkpoint store, and the
    merged output is byte-identical to a serial run that never died —
    with exactly the killed shard replaying chunks and exactly the
    shards that finished before it reused from their result artifacts.
    """

    @staticmethod
    def _run_driver(*args, expect=0):
        import json
        import os
        import subprocess
        import sys
        import tempfile

        driver = os.path.join(os.path.dirname(__file__), "dist_driver.py")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(
                None,
                [
                    os.path.join(os.path.dirname(driver), "..", "src"),
                    env.get("PYTHONPATH", ""),
                ],
            )
        )
        # Files, not pipes: a killed driver may orphan inherited fds,
        # and waiting on pipe EOF would hang (see test_recovery.py).
        with tempfile.TemporaryFile("w+") as out, tempfile.TemporaryFile(
            "w+"
        ) as err:
            process = subprocess.Popen(
                [sys.executable, driver, *args],
                stdout=out,
                stderr=err,
                text=True,
                env=env,
            )
            try:
                returncode = process.wait(timeout=300)
            except subprocess.TimeoutExpired:
                process.kill()
                raise
            out.seek(0)
            err.seek(0)
            stdout, stderr = out.read(), err.read()
        assert returncode == expect, (
            f"driver exited {returncode}, expected {expect}\n{stderr}"
        )
        return json.loads(stdout) if expect == 0 and stdout.strip() else None

    @pytest.mark.slow
    @given(
        n_entities=st.integers(min_value=16, max_value=28),
        seed=st.integers(min_value=0, max_value=40),
        n_shards=st.integers(min_value=2, max_value=4),
        chunk_size=st.sampled_from([32, 64]),
    )
    @settings(max_examples=3, deadline=None)
    def test_kill_one_shard_resume_only_that_shard(
        self, n_entities, seed, n_shards, chunk_size
    ):
        import tempfile

        from hypothesis import assume

        from tests.dist_driver import choose_kill, make_corpus, run_serial

        records, blocker, __, __ = make_corpus(n_entities, seed)
        kill = choose_kill(records, blocker, n_shards, chunk_size)
        assume(kill is not None)
        kill_shard, kill_chunk, n_chunks = kill
        serial = run_serial(n_entities, seed)
        with tempfile.TemporaryDirectory() as root:
            common = [
                "sharded",
                root,
                "--entities", str(n_entities),
                "--seed", str(seed),
                "--shards", str(n_shards),
                "--chunk-size", str(chunk_size),
            ]
            self._run_driver(
                *common,
                "--kill-shard", str(kill_shard),
                "--kill-chunk", str(kill_chunk),
                expect=137,
            )
            document = self._run_driver(*common)
        shards = document.pop("shards")
        counters = document.pop("counters")
        assert document == serial
        by_shard = {entry["shard"]: entry for entry in shards}
        assert set(by_shard) == set(range(n_shards))
        for shard, entry in by_shard.items():
            assert entry["completed_chunks"] == entry["n_chunks"]
            if shard == kill_shard:
                # The killed shard alone replays its checkpointed
                # chunks — at least the ones completed before death.
                assert not entry["resumed"]
                assert entry["replayed_chunks"] >= kill_chunk > 0
                assert entry["replayed_chunks"] < entry["n_chunks"]
            elif shard < kill_shard:
                # Inline backend runs shards in order: earlier shards
                # finished and persisted, so resume reuses them whole.
                assert entry["resumed"]
                assert entry["replayed_chunks"] == 0
            else:
                # Later shards never started before the kill.
                assert not entry["resumed"]
                assert entry["replayed_chunks"] == 0
        assert counters.get("dist.shard.resumed", 0) == kill_shard
        assert counters.get("dist.shard.replayed_chunks", 0) == by_shard[
            kill_shard
        ]["replayed_chunks"]
