"""Cross-module integration tests.

Each test wires several subsystems together and asserts an
*equivalence* or *round-trip* property that only holds when the seams
line up: persistence feeding the pipeline, distributed linkage
matching sequential linkage, schema translation feeding comparators,
and claims surviving the CSV round-trip into fusion.
"""

import pytest

from repro import BDIPipeline, FourVKnobs, PipelineConfig, build_corpus
from repro.dist import run_distributed_linkage
from repro.fusion import AccuVote, VotingFuser
from repro.io import load_claims, load_dataset, save_claims, save_dataset
from repro.linkage import (
    FieldComparator,
    RecordComparator,
    StandardBlocker,
    ThresholdClassifier,
    TokenBlocker,
    connected_components,
    default_product_comparator,
    resolve,
)
from repro.linkage.blocking import NAME_ALIASES, first_token_key
from repro.quality import fusion_accuracy, pairwise_cluster_quality
from repro.schema import build_mediated_schema
from repro.synth import (
    ClaimWorldConfig,
    CorpusConfig,
    WorldConfig,
    generate_claims,
    generate_dataset,
    generate_world,
)
from repro.text import product_name_similarity


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(FourVKnobs(volume=0.04, variety=0.5, veracity=0.3, seed=13))


class TestPersistencePipeline:
    def test_pipeline_identical_after_round_trip(self, corpus, tmp_path):
        save_dataset(corpus.dataset, tmp_path / "corpus")
        reloaded = load_dataset(tmp_path / "corpus")
        pipeline = BDIPipeline(PipelineConfig(fusion="vote"))
        original = pipeline.run(corpus.dataset)
        restored = pipeline.run(reloaded)
        assert sorted(map(sorted, original.clusters)) == sorted(
            map(sorted, restored.clusters)
        )
        assert original.fusion.chosen == restored.fusion.chosen

    def test_claims_round_trip_preserves_fusion(self, tmp_path):
        planted = generate_claims(
            ClaimWorldConfig(n_items=80, n_independent=6, seed=3)
        )
        save_claims(planted.claims, tmp_path / "claims.csv")
        reloaded = load_claims(tmp_path / "claims.csv")
        original = AccuVote().fuse(planted.claims)
        restored = AccuVote().fuse(reloaded)
        assert original.chosen == restored.chosen


class TestDistributedEqualsSequential:
    def test_match_pairs_identical(self):
        world = generate_world(
            WorldConfig(categories=("monitor",), entities_per_category=40, seed=4)
        )
        dataset = generate_dataset(world, CorpusConfig(n_sources=8, seed=6))
        records = list(dataset.records())
        blocker = StandardBlocker(
            first_token_key("name", aliases=NAME_ALIASES)
        )
        comparator = default_product_comparator()
        classifier = ThresholdClassifier(0.72)
        sequential = resolve(records, blocker, comparator, classifier)
        for strategy in ("naive", "blocksplit", "pairrange"):
            distributed = run_distributed_linkage(
                records,
                blocker.block(records),
                comparator,
                classifier,
                strategy,
                n_reducers=8,
            )
            assert distributed.match_pairs == sequential.match_pairs

    def test_distributed_clusters_match_quality(self):
        world = generate_world(
            WorldConfig(categories=("television",), entities_per_category=30, seed=4)
        )
        dataset = generate_dataset(world, CorpusConfig(n_sources=8, seed=6))
        records = list(dataset.records())
        blocks = TokenBlocker(max_block_size=60).block(records)
        run = run_distributed_linkage(
            records,
            blocks,
            default_product_comparator(),
            ThresholdClassifier(0.72),
            "blocksplit",
            n_reducers=4,
        )
        clusters = connected_components(
            run.match_pairs, [r.record_id for r in records]
        )
        quality = pairwise_cluster_quality(clusters, dataset.ground_truth)
        assert quality.f1 > 0.9


class TestSchemaFeedsLinkage:
    def test_translated_comparator_links_heterogeneous_records(self):
        """Schema translation and alias lookup are two answers to the
        same heterogeneity; a comparator over the *translated* name
        must link well once the schema clusters the title dialects."""
        world = generate_world(
            WorldConfig(
                categories=("camera", "notebook"),
                entities_per_category=60,
                seed=3,
            )
        )
        dataset = generate_dataset(
            world,
            CorpusConfig(n_sources=14, dialect_noise=0.5, seed=5),
        )
        records = list(dataset.records())
        schema = build_mediated_schema(dataset, threshold=0.6)

        # The schema may split the title dialects over several mediated
        # attributes (pay-as-you-go alignment is partial); compare on
        # all of them via the comparator's alias mechanism.
        name_keys = [
            mediated.name
            for mediated in schema.attributes
            if any(
                attr in ("name", "title", "product name", "model",
                         "item name")
                for __, attr in mediated.members
            )
        ]
        assert name_keys, "schema found no name-ish cluster"
        name_keys.sort(
            key=lambda key: -len(schema.by_name(key).members)
        )
        translated = RecordComparator(
            [
                FieldComparator(
                    name_keys[0],
                    product_name_similarity,
                    weight=1.0,
                    aliases=tuple(name_keys[1:]),
                )
            ],
            translate=schema.translate,
        )
        result = resolve(
            records,
            TokenBlocker(max_block_size=60),
            translated,
            ThresholdClassifier(0.75),
        )
        quality = pairwise_cluster_quality(
            result.clusters, dataset.ground_truth
        )
        assert quality.f1 > 0.85


class TestPipelineFusionChoices:
    def test_accuvote_at_least_matches_vote_on_dirty_corpus(self):
        corpus = build_corpus(
            FourVKnobs(volume=0.05, variety=0.4, veracity=0.6, seed=21)
        )
        reports = {}
        for fusion in ("vote", "accuvote"):
            pipeline = BDIPipeline(PipelineConfig(fusion=fusion))
            result = pipeline.run(corpus.dataset)
            reports[fusion] = pipeline.evaluate(corpus.dataset, result)
        assert (
            reports["accuvote"].fusion_accuracy
            >= reports["vote"].fusion_accuracy - 0.03
        )

    def test_new_categories_flow_through_pipeline(self):
        world = generate_world(
            WorldConfig(
                categories=("monitor", "television"),
                entities_per_category=25,
                seed=31,
            )
        )
        dataset = generate_dataset(world, CorpusConfig(n_sources=8, seed=32))
        pipeline = BDIPipeline(PipelineConfig(fusion="vote"))
        result = pipeline.run(dataset)
        report = pipeline.evaluate(dataset, result)
        assert report.linkage_pairwise_f1 > 0.85
        assert report.fusion_accuracy > 0.6


class TestEndToEndCopierUnmasking:
    def test_accucopy_pipeline_flags_planted_corpus_copiers(self):
        """The whole-stack veracity story: corpus-level copier *sites*
        planted by the generator should surface as high copy
        probability between source pairs in the pipeline's AccuCopy
        output."""
        corpus = build_corpus(
            FourVKnobs(volume=0.06, variety=0.3, veracity=0.9, seed=41)
        )
        assert corpus.copier_of, "knobs should plant copier sites"
        pipeline = BDIPipeline(PipelineConfig(fusion="accucopy"))
        result = pipeline.run(corpus.dataset)
        detected = result.fusion.copy_probability
        hits = 0
        for copier, parent in corpus.copier_of.items():
            key = (min(copier, parent), max(copier, parent))
            if detected.get(key, 0.0) >= 0.5:
                hits += 1
        assert hits >= len(corpus.copier_of) / 2, (
            f"only {hits}/{len(corpus.copier_of)} planted copier sites "
            "were flagged"
        )
