"""Coverage for smaller code paths not exercised elsewhere."""

import pytest

from repro.dist import ClusterCostModel, MatchTask
from repro.quality import format_cell, render_kv, render_table
from repro.synth import (
    CorpusConfig,
    EvolvingWorldConfig,
    WorldConfig,
    evolve_world,
    generate_world,
)
from repro.velocity import SnapshotConfig, render_snapshots


class TestFormatting:
    def test_format_cell_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_format_cell_float_digits(self):
        assert format_cell(1.23456, float_digits=1) == "1.2"

    def test_render_table_empty_rows(self):
        table = render_table(["a", "b"], [])
        assert "a" in table and "-" in table

    def test_render_kv_no_title(self):
        assert render_kv([("x", 1)]) == "x: 1"


class TestCostModelEdges:
    def test_efficiency(self):
        model = ClusterCostModel(
            comparison_cost=1.0, task_overhead=0.0, startup=0.0
        )
        partition = [
            [MatchTask("a", ("x", "y", "z"))],
            [MatchTask("b", ("p", "q", "r"))],
        ]
        cost = model.evaluate(partition)
        assert cost.efficiency == pytest.approx(1.0)

    def test_empty_partition_rejected(self):
        from repro.core import ConfigurationError

        with pytest.raises(ConfigurationError):
            ClusterCostModel().evaluate([])

    def test_empty_reducers_allowed(self):
        model = ClusterCostModel(startup=10.0)
        cost = model.evaluate([[], []])
        assert cost.makespan == 10.0
        assert cost.per_reducer_comparisons == (0, 0)


class TestVelocityEdges:
    def test_sources_not_replaced_when_disabled(self):
        world = generate_world(
            WorldConfig(categories=("camera",), entities_per_category=20, seed=5)
        )
        worlds = evolve_world(
            world, EvolvingWorldConfig(n_snapshots=4, seed=6)
        )
        snapshots = render_snapshots(
            worlds,
            CorpusConfig(
                n_sources=8, min_source_size=5, max_source_size=15, seed=7
            ),
            SnapshotConfig(
                source_death_rate=0.4, replace_sources=False, seed=8
            ),
        )
        counts = [len(snapshot) for snapshot in snapshots]
        assert counts[-1] < counts[0], "sources must die off unreplaced"

    def test_no_churn_keeps_everything(self):
        world = generate_world(
            WorldConfig(categories=("camera",), entities_per_category=15, seed=5)
        )
        worlds = evolve_world(
            world,
            EvolvingWorldConfig(
                n_snapshots=3, change_rate=0.0, death_rate=0.0, seed=6
            ),
        )
        snapshots = render_snapshots(
            worlds,
            CorpusConfig(
                n_sources=4, min_source_size=5, max_source_size=10, seed=7
            ),
            SnapshotConfig(
                source_death_rate=0.0,
                page_death_rate=0.0,
                page_birth_rate=0.0,
                seed=8,
            ),
        )
        from repro.velocity import diff_datasets

        diff = diff_datasets(snapshots[0], snapshots[-1])
        assert diff.record_survival == 1.0
        assert not diff.added_records
        assert not diff.changed_records

    def test_entity_death_without_replacement(self):
        world = generate_world(
            WorldConfig(categories=("camera",), entities_per_category=20, seed=5)
        )
        worlds = evolve_world(
            world,
            EvolvingWorldConfig(
                n_snapshots=3, death_rate=0.5, replace=False, seed=6
            ),
        )
        assert len(worlds[-1].entities) < len(worlds[0].entities)
