"""Unit tests for quality metrics (pairs, blocking, clusters, fusion)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import GroundTruth
from repro.fusion import FusionResult
from repro.quality import (
    bcubed_quality,
    blocking_quality,
    clusters_to_pairs,
    copy_detection_quality,
    fusion_accuracy,
    accuracy_estimation_error,
    pair_quality,
    pairwise_cluster_quality,
    render_kv,
    render_table,
    total_pairs,
)


@pytest.fixture
def truth():
    # e1: {a, b, c}; e2: {d, e}; e3: {f}
    return GroundTruth(
        {"a": "e1", "b": "e1", "c": "e1", "d": "e2", "e": "e2", "f": "e3"}
    )


class TestPairQuality:
    def test_perfect(self, truth):
        q = pair_quality(truth.matching_pairs(), truth)
        assert q.precision == 1.0 and q.recall == 1.0 and q.f1 == 1.0

    def test_partial(self, truth):
        q = pair_quality([("a", "b"), ("a", "f")], truth)
        assert q.true_positives == 1
        assert q.false_positives == 1
        assert q.false_negatives == 3  # (a,c),(b,c),(d,e)
        assert q.precision == 0.5
        assert q.recall == 0.25

    def test_empty_prediction(self, truth):
        q = pair_quality([], truth)
        assert q.precision == 1.0
        assert q.recall == 0.0

    def test_self_pairs_dropped(self, truth):
        q = pair_quality([("a", "a")], truth)
        assert q.true_positives == 0 and q.false_positives == 0

    def test_duplicate_predictions_counted_once(self, truth):
        q = pair_quality([("a", "b"), ("b", "a")], truth)
        assert q.true_positives == 1 and q.false_positives == 0


class TestBlockingQuality:
    def test_total_pairs(self):
        assert total_pairs(6) == 15
        assert total_pairs(0) == 0
        assert total_pairs(1) == 0

    def test_perfect_blocking(self, truth):
        q = blocking_quality(truth.matching_pairs(), truth, n_records=6)
        assert q.pairs_completeness == 1.0
        assert q.pairs_quality == 1.0
        assert q.reduction_ratio == pytest.approx(1 - 4 / 15)

    def test_full_cross_product(self, truth):
        all_pairs = [
            (x, y)
            for i, x in enumerate("abcdef")
            for y in "abcdef"[i + 1 :]
        ]
        q = blocking_quality(all_pairs, truth, n_records=6)
        assert q.pairs_completeness == 1.0
        assert q.reduction_ratio == 0.0
        assert q.pairs_quality == pytest.approx(4 / 15)

    def test_empty_candidates(self, truth):
        q = blocking_quality([], truth, n_records=6)
        assert q.pairs_completeness == 0.0
        assert q.reduction_ratio == 1.0


class TestClusterQuality:
    def test_clusters_to_pairs(self):
        pairs = clusters_to_pairs([["a", "b", "c"], ["d"]])
        assert pairs == {
            frozenset(("a", "b")),
            frozenset(("a", "c")),
            frozenset(("b", "c")),
        }

    def test_perfect_clustering(self, truth):
        clusters = truth.true_clusters()
        pq = pairwise_cluster_quality(clusters, truth)
        assert pq.f1 == 1.0
        b3 = bcubed_quality(clusters, truth)
        assert b3.precision == 1.0 and b3.recall == 1.0

    def test_everything_merged(self, truth):
        clusters = [["a", "b", "c", "d", "e", "f"]]
        b3 = bcubed_quality(clusters, truth)
        assert b3.recall == 1.0
        assert b3.precision < 1.0

    def test_everything_singleton(self, truth):
        clusters = [[r] for r in "abcdef"]
        b3 = bcubed_quality(clusters, truth)
        assert b3.precision == 1.0
        assert b3.recall < 1.0

    def test_missing_records_hurt_recall(self, truth):
        clusters = [["a", "b", "c"]]  # d, e, f unclustered
        b3 = bcubed_quality(clusters, truth)
        assert b3.precision == 1.0
        assert b3.recall == pytest.approx(3 / 6)

    @given(st.integers(min_value=2, max_value=6))
    def test_bcubed_f1_between_zero_and_one(self, k):
        mapping = {f"r{i}": f"e{i % k}" for i in range(12)}
        gt = GroundTruth(mapping)
        clusters = [[f"r{i}" for i in range(0, 12, 2)],
                    [f"r{i}" for i in range(1, 12, 2)]]
        b3 = bcubed_quality(clusters, gt)
        assert 0.0 <= b3.precision <= 1.0
        assert 0.0 <= b3.recall <= 1.0
        assert 0.0 <= b3.f1 <= 1.0


class TestFusionQuality:
    def test_accuracy(self):
        result = FusionResult(chosen={"i1": "x", "i2": "y"})
        assert fusion_accuracy(result, {"i1": "x", "i2": "z"}) == 0.5

    def test_accuracy_ignores_unanswered(self):
        result = FusionResult(chosen={"i1": "x"})
        assert fusion_accuracy(result, {"i1": "x", "i2": "z"}) == 1.0

    def test_estimation_error(self):
        result = FusionResult(
            chosen={}, source_accuracy={"s1": 0.8, "s2": 0.6}
        )
        rmse = accuracy_estimation_error(result, {"s1": 0.9, "s2": 0.6})
        assert rmse == pytest.approx(math.sqrt(0.01 / 2))

    def test_estimation_error_no_overlap_is_nan(self):
        result = FusionResult(chosen={})
        assert math.isnan(accuracy_estimation_error(result, {"s1": 0.9}))

    def test_copy_detection_quality(self):
        detected = {
            ("cop0", "ind0"): 0.9,   # true edge
            ("cop1", "ind1"): 0.2,   # below threshold → not predicted
            ("ind0", "ind1"): 0.8,   # false positive
        }
        planted = {"cop0": "ind0", "cop1": "ind1"}
        q = copy_detection_quality(detected, planted)
        assert q.true_positives == 1
        assert q.false_positives == 1
        assert q.false_negatives == 1
        assert q.precision == 0.5 and q.recall == 0.5

    def test_copy_detection_undirected(self):
        q = copy_detection_quality(
            {("ind0", "cop0"): 1.0}, {"cop0": "ind0"}
        )
        assert q.recall == 1.0


class TestReport:
    def test_render_table_alignment(self):
        table = render_table(["name", "value"], [["x", 1.2345], ["long", 2]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.234" in table or "1.235" in table

    def test_render_table_title(self):
        table = render_table(["a"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_render_kv(self):
        text = render_kv([("k", 0.5)], title="head")
        assert "k: 0.500" in text
