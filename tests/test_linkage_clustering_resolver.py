"""Tests for record clustering algorithms and the resolve() driver."""

import pytest

from repro.core import Record
from repro.linkage import (
    StandardBlocker,
    ThresholdClassifier,
    TokenBlocker,
    center_clustering,
    connected_components,
    default_product_comparator,
    merge_center_clustering,
    resolve,
)
from repro.linkage.blocking import first_token_key
from repro.quality import pairwise_cluster_quality
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


class TestConnectedComponents:
    def test_chains_transitively(self):
        clusters = connected_components([("a", "b"), ("b", "c")])
        assert clusters == [["a", "b", "c"]]

    def test_includes_singletons(self):
        clusters = connected_components([("a", "b")], all_ids=["a", "b", "c"])
        assert ["c"] in clusters

    def test_accepts_frozensets(self):
        clusters = connected_components([frozenset(("a", "b"))])
        assert clusters == [["a", "b"]]


class TestCenterClustering:
    def test_star_not_chain(self):
        # High-score edges from a center; the weak b-c edge must not chain.
        edges = [("a", "b", 0.9), ("a", "c", 0.8), ("c", "d", 0.7)]
        clusters = center_clustering(edges)
        cluster_of = {m: i for i, c in enumerate(clusters) for m in c}
        assert cluster_of["a"] == cluster_of["b"] == cluster_of["c"]
        # d arrived via c (a member, not a center) → stays out.
        assert cluster_of["d"] != cluster_of["a"]

    def test_all_ids_covered(self):
        clusters = center_clustering([("a", "b", 0.9)], all_ids=["a", "b", "z"])
        flattened = sorted(m for c in clusters for m in c)
        assert flattened == ["a", "b", "z"]

    def test_deterministic_tie_breaks(self):
        edges = [("b", "a", 0.9), ("c", "d", 0.9)]
        assert center_clustering(edges) == center_clustering(list(edges))


class TestMergeCenter:
    def test_merges_via_center_edge(self):
        # Two stars whose centers share a strong edge get merged.
        edges = [
            ("a", "b", 0.95),
            ("c", "d", 0.94),
            ("a", "c", 0.9),
        ]
        clusters = merge_center_clustering(edges)
        assert len(clusters) == 1

    def test_recall_between_center_and_components(self):
        edges = [("a", "b", 0.9), ("b", "c", 0.8), ("c", "d", 0.7)]
        cc = connected_components([(a, b) for a, b, _ in edges])
        center = center_clustering(edges)
        merge = merge_center_clustering(edges)
        n_pairs = lambda clusters: sum(
            len(c) * (len(c) - 1) // 2 for c in clusters
        )
        assert n_pairs(center) <= n_pairs(merge) <= n_pairs(cc)


class TestResolve:
    @pytest.fixture(scope="class")
    def corpus(self):
        world = generate_world(
            WorldConfig(categories=("camera",), entities_per_category=40, seed=6)
        )
        dataset = generate_dataset(
            world, CorpusConfig(n_sources=8, typo_rate=0.03, seed=8)
        )
        return dataset

    def test_high_quality_on_synthetic(self, corpus):
        result = resolve(
            list(corpus.records()),
            TokenBlocker(max_block_size=50),
            default_product_comparator(),
            ThresholdClassifier(0.72),
        )
        quality = pairwise_cluster_quality(
            result.clusters, corpus.ground_truth
        )
        assert quality.f1 > 0.9

    def test_clusters_partition_records(self, corpus):
        result = resolve(
            list(corpus.records()),
            TokenBlocker(max_block_size=50),
            default_product_comparator(),
            ThresholdClassifier(0.72),
        )
        flattened = [m for c in result.clusters for m in c]
        assert sorted(flattened) == sorted(
            r.record_id for r in corpus.records()
        )

    def test_candidate_override_skips_blocker(self, corpus):
        records = list(corpus.records())[:10]
        ids = [r.record_id for r in records]
        pairs = {frozenset((ids[0], ids[1]))}
        result = resolve(
            records,
            TokenBlocker(),
            default_product_comparator(),
            ThresholdClassifier(0.0),
            candidate_pairs=pairs,
        )
        assert result.n_candidates == 1
        assert result.match_pairs == pairs

    def test_unknown_clustering(self, corpus):
        from repro.core import ConfigurationError

        with pytest.raises(ConfigurationError):
            resolve(
                list(corpus.records())[:5],
                TokenBlocker(),
                default_product_comparator(),
                ThresholdClassifier(0.9),
                clustering="zap",
            )

    def test_threshold_monotone_precision(self, corpus):
        records = list(corpus.records())
        loose = resolve(
            records,
            TokenBlocker(max_block_size=50),
            default_product_comparator(),
            ThresholdClassifier(0.6),
        )
        strict = resolve(
            records,
            TokenBlocker(max_block_size=50),
            default_product_comparator(),
            ThresholdClassifier(0.9),
        )
        assert strict.match_pairs <= loose.match_pairs
