"""Sacrificial subprocess for the serving kill/restart acceptance test.

The serving durability contract is: an acknowledged ingest (the record
log append returned) survives ``kill -9``, and a restarted service
reconstructs the exact pre-crash projection — byte-identical
``EntityStore`` artifacts for completed generations, equal snapshots
for the replayed tail. ``os._exit`` cannot be survived in-process, so
this driver is the process built to die.

Invocations
-----------

``serve_driver.py ROOT --n N [--refresh-at K] [--kill-at J]``
    Ingest the first N of :func:`build_records` into a service rooted
    at ROOT, refreshing (durable generation + atomic publish) right
    after the K-th ingest. With ``--kill-at J`` the fault injector
    kills the process (exit 137) while ingesting log position J —
    *after* the durable append, before linking — and prints nothing.
    Otherwise prints the final snapshot as JSON.

``serve_driver.py ROOT --report``
    Reopen the store (restart replay runs in the constructor) and
    print the snapshot — the restarted server's view.

Both success modes print ``{"generation", "snapshot", "log_length",
"generation_sha"}`` so the test can compare a murdered-and-restarted
deployment against one that never died.
"""

import argparse
import hashlib
import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.core import Record  # noqa: E402
from repro.linkage import (  # noqa: E402
    StandardBlocker,
    ThresholdClassifier,
    default_product_comparator,
)
from repro.linkage.blocking import first_token_key  # noqa: E402
from repro.resilience import ResilienceConfig, RetryPolicy  # noqa: E402
from repro.resilience.testing import FaultInjector, kill  # noqa: E402
from repro.serve import ResolutionService  # noqa: E402

_BRANDS = ("canon", "nikon", "sony", "kodak", "fuji")


def build_records(n: int) -> list[Record]:
    """A deterministic stream of n records over ~n/3 true entities.

    Every third record describes the same camera from a different
    source (with light value disagreement for fusion to resolve), so
    the stream exercises singleton creation, cluster joins, and
    cross-source conflicts.
    """
    records = []
    for i in range(n):
        entity = i // 3
        source = f"s{i % 3}"
        brand = _BRANDS[entity % len(_BRANDS)]
        attributes = {
            "name": f"{brand} powershot model{entity}",
            "brand": brand if i % 3 != 2 else brand.upper(),
            "zoom": f"{3 + entity % 4}x",
        }
        records.append(Record(f"{source}/r{i}", source, attributes))
    return records


def build_service(root, kill_at=None) -> ResolutionService:
    resilience = None
    if kill_at is not None:
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
            failure="fail",
            fault_injector=FaultInjector(kill(chunk=kill_at)),
        )
    return ResolutionService(
        root,
        key_functions=[first_token_key("name")],
        comparator=default_product_comparator(),
        classifier=ThresholdClassifier(0.72),
        refresh_blocker=StandardBlocker(first_token_key("name")),
        source_accuracies={"s0": 0.9, "s1": 0.8, "s2": 0.6},
        resilience=resilience,
    )


def report(service: ResolutionService) -> dict:
    generation = service.generation
    raw = service.store.generation_bytes(generation)
    return {
        "generation": generation,
        "log_length": service.store.log_length,
        "snapshot": service.snapshot(),
        "generation_sha": (
            hashlib.sha256(raw).hexdigest() if raw is not None else None
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("root")
    parser.add_argument("--n", type=int, default=24)
    parser.add_argument("--refresh-at", type=int, default=None)
    parser.add_argument("--kill-at", type=int, default=None)
    parser.add_argument("--report", action="store_true")
    args = parser.parse_args()

    service = build_service(args.root, kill_at=args.kill_at)
    if not args.report:
        for index, record in enumerate(build_records(args.n)):
            service.ingest(record)
            if args.refresh_at is not None and index + 1 == args.refresh_at:
                service.refresh()
    print(json.dumps(report(service), sort_keys=True))


if __name__ == "__main__":
    main()
