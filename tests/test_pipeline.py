"""Tests for the end-to-end BDI pipeline and corpus builder."""

import pytest

from repro import BDIPipeline, FourVKnobs, PipelineConfig, build_corpus
from repro.core import ConfigurationError
from repro.synth import CopierConfig, add_copier_sources, scaled


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(FourVKnobs(volume=0.05, variety=0.4, veracity=0.3, seed=3))


@pytest.fixture(scope="module")
def run(corpus):
    pipeline = BDIPipeline(PipelineConfig(fusion="accuvote"))
    result = pipeline.run(corpus.dataset)
    report = pipeline.evaluate(corpus.dataset, result)
    return result, report


class TestFourVKnobs:
    def test_invalid_dial(self):
        with pytest.raises(ConfigurationError):
            FourVKnobs(volume=1.5)

    def test_volume_scales_sources(self):
        small = FourVKnobs(volume=0.0).corpus_config()
        large = FourVKnobs(volume=1.0).corpus_config()
        assert large.n_sources > small.n_sources

    def test_veracity_scales_noise(self):
        clean = FourVKnobs(veracity=0.0).corpus_config()
        dirty = FourVKnobs(veracity=1.0).corpus_config()
        assert dirty.typo_rate > clean.typo_rate
        assert dirty.error_rate > clean.error_rate

    def test_zero_veracity_no_copiers(self):
        assert FourVKnobs(veracity=0.0).copier_config() is None

    def test_scaled_helper(self):
        knobs = FourVKnobs(volume=0.2)
        assert scaled(knobs, volume=0.8).volume == 0.8
        assert scaled(knobs, volume=0.8).variety == knobs.variety

    def test_deterministic_corpus(self):
        a = build_corpus(FourVKnobs(volume=0.02, seed=5))
        b = build_corpus(FourVKnobs(volume=0.02, seed=5))
        assert [r.record_id for r in a.dataset.records()] == [
            r.record_id for r in b.dataset.records()
        ]


class TestCopierInjection:
    def test_copier_records_attributed(self, corpus):
        if not corpus.copier_of:
            pytest.skip("knobs produced no copiers")
        truth = corpus.dataset.ground_truth
        for copier in corpus.copier_of:
            source = corpus.dataset.source(copier)
            for record in source:
                assert truth.entity_of(record.record_id)

    def test_requires_ground_truth(self):
        from repro.core import Dataset, Record, Source

        bare = Dataset(
            [Source("s", [Record("s/0", "s", {"name": "x"})])]
        )
        with pytest.raises(ConfigurationError):
            add_copier_sources(bare, CopierConfig(n_copiers=1))


class TestPipeline:
    def test_linkage_quality(self, run):
        __, report = run
        assert report.linkage_pairwise_f1 > 0.9
        assert report.linkage_bcubed_f1 > 0.9

    def test_fusion_accuracy_reasonable(self, run):
        __, report = run
        assert report.fusion_accuracy > 0.7

    def test_schema_clusters_scored(self, run):
        __, report = run
        assert 0.0 < report.schema_f1 <= 1.0

    def test_entity_table_materialized(self, run):
        result, report = run
        assert result.entity_table
        assert report.n_clusters == len(result.clusters)
        some_entity = next(iter(result.entity_table.values()))
        assert all(isinstance(v, str) for v in some_entity.values())

    def test_claims_one_per_source_item(self, run):
        result, __ = run
        seen = set()
        for claim in result.claims:
            key = (claim.source_id, claim.item_id)
            assert key not in seen
            seen.add(key)

    def test_invalid_fusion_name(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(fusion="zap")

    def test_fusion_variants_run(self, corpus):
        for fusion in ("vote", "truthfinder"):
            pipeline = BDIPipeline(PipelineConfig(fusion=fusion))
            result = pipeline.run(corpus.dataset)
            assert result.fusion.chosen


class TestClassifierChoice:
    def test_invalid_classifier_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(classifier="psychic")

    def test_fellegi_sunter_pipeline_quality(self, corpus):
        pipeline = BDIPipeline(
            PipelineConfig(fusion="vote", classifier="fellegi-sunter")
        )
        result = pipeline.run(corpus.dataset)
        report = pipeline.evaluate(corpus.dataset, result)
        assert report.linkage_pairwise_f1 > 0.85

    def test_fs_close_to_threshold_pipeline(self, corpus):
        threshold_pipeline = BDIPipeline(PipelineConfig(fusion="vote"))
        fs_pipeline = BDIPipeline(
            PipelineConfig(fusion="vote", classifier="fellegi-sunter")
        )
        threshold_report = threshold_pipeline.evaluate(
            corpus.dataset, threshold_pipeline.run(corpus.dataset)
        )
        fs_report = fs_pipeline.evaluate(
            corpus.dataset, fs_pipeline.run(corpus.dataset)
        )
        assert fs_report.linkage_pairwise_f1 > (
            threshold_report.linkage_pairwise_f1 - 0.1
        )


class TestNumericFusion:
    def test_numeric_fusion_runs_and_helps_or_ties(self):
        corpus = build_corpus(
            FourVKnobs(volume=0.05, variety=0.4, veracity=0.5, seed=51)
        )
        plain = BDIPipeline(PipelineConfig(fusion="accuvote"))
        numeric = BDIPipeline(
            PipelineConfig(fusion="accuvote", numeric_fusion=True)
        )
        plain_report = plain.evaluate(
            corpus.dataset, plain.run(corpus.dataset)
        )
        numeric_report = numeric.evaluate(
            corpus.dataset, numeric.run(corpus.dataset)
        )
        assert numeric_report.fusion_accuracy >= (
            plain_report.fusion_accuracy - 0.02
        )

    def test_numeric_items_get_measurement_values(self):
        corpus = build_corpus(
            FourVKnobs(volume=0.04, variety=0.3, veracity=0.3, seed=52)
        )
        pipeline = BDIPipeline(
            PipelineConfig(fusion="vote", numeric_fusion=True)
        )
        result = pipeline.run(corpus.dataset)
        from repro.text import parse_measurement

        measured = 0
        for item, value in result.fusion.chosen.items():
            if "weight" in item or "screen size" in item:
                if parse_measurement(value.replace(",", ".")):
                    measured += 1
        assert measured > 0


class TestIdentifierToggle:
    def test_identifier_linkage_improves_recall(self):
        corpus = build_corpus(
            FourVKnobs(volume=0.05, variety=0.5, veracity=0.3, seed=53)
        )
        with_id = BDIPipeline(PipelineConfig(fusion="vote"))
        without_id = BDIPipeline(
            PipelineConfig(fusion="vote", use_identifier_linkage=False)
        )
        with_report = with_id.evaluate(
            corpus.dataset, with_id.run(corpus.dataset)
        )
        without_report = without_id.evaluate(
            corpus.dataset, without_id.run(corpus.dataset)
        )
        assert with_report.linkage_pairwise_f1 >= (
            without_report.linkage_pairwise_f1 - 0.01
        )
