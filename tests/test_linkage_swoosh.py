"""Tests for merge-based (R-Swoosh) entity resolution."""

import pytest

from repro.core import ConfigurationError, Record
from repro.linkage.swoosh import r_swoosh, union_merge
from repro.text import product_name_similarity


def record(rid, **attrs):
    return Record(rid, "s", {k: str(v) for k, v in attrs.items()})


def simple_match(a: Record, b: Record) -> bool:
    """Match on identical identifier OR very similar name."""
    id_a, id_b = a.get("id"), b.get("id")
    if id_a is not None and id_b is not None and id_a == id_b:
        return True
    name_a, name_b = a.get("name"), b.get("name")
    if name_a is not None and name_b is not None:
        return product_name_similarity(name_a, name_b) > 0.9
    return False


class TestUnionMerge:
    def test_attribute_union(self):
        merged = union_merge(
            record("a", name="canon x"), record("b", id="123")
        )
        assert merged["name"] == "canon x"
        assert merged["id"] == "123"

    def test_left_wins_conflicts(self):
        merged = union_merge(
            record("a", color="red"), record("b", color="blue")
        )
        assert merged["color"] == "red"

    def test_provenance_in_id(self):
        merged = union_merge(record("b"), record("a"))
        assert merged.record_id == "a+b"

    def test_nested_merge_provenance(self):
        ab = union_merge(record("a"), record("b"))
        abc = union_merge(ab, record("c"))
        assert abc.record_id == "a+b+c"

    def test_timestamp_max(self):
        a = Record("a", "s", {"x": "1"}, timestamp=1.0)
        b = Record("b", "s", {"x": "1"}, timestamp=3.0)
        assert union_merge(a, b).timestamp == 3.0


class TestRSwoosh:
    def test_transitive_merge_through_composite(self):
        # A~B by name; B~C by id; A~C only via the merged record.
        a = record("a", name="canon powershot a95")
        b = record("b", name="canon powershot a95", id="X99")
        c = record("c", id="X99", color="black")
        result = r_swoosh([a, c, b], simple_match)
        assert result.n_entities == 1
        assert result.clusters == (("a", "b", "c"),)
        merged = result.merged_records[0]
        assert merged["color"] == "black"
        assert "powershot" in merged["name"]

    def test_pairwise_alone_would_miss_the_chain(self):
        # Direct A~C fails (no shared attribute evidence).
        a = record("a", name="canon powershot a95")
        c = record("c", id="X99", color="black")
        assert not simple_match(a, c)

    def test_distinct_entities_stay_apart(self):
        records = [
            record("a", name="canon powershot a95", id="X1"),
            record("b", name="nikon coolpix 4500", id="X2"),
            record("c", name="sony alpha 7", id="X3"),
        ]
        result = r_swoosh(records, simple_match)
        assert result.n_entities == 3

    def test_idempotent_on_resolved_output(self):
        records = [
            record("a", name="canon powershot a95"),
            record("b", name="canon powershot a95", id="X99"),
            record("c", id="X99"),
        ]
        first = r_swoosh(records, simple_match)
        second = r_swoosh(list(first.merged_records), simple_match)
        assert second.n_entities == first.n_entities
        assert second.comparisons <= first.comparisons

    def test_order_invariant_entity_count(self):
        records = [
            record("a", name="canon powershot a95"),
            record("b", name="canon powershot a95", id="X99"),
            record("c", id="X99"),
            record("d", name="nikon coolpix 4500"),
        ]
        import itertools

        counts = {
            r_swoosh(list(perm), simple_match).n_entities
            for perm in itertools.permutations(records)
        }
        assert counts == {2}

    def test_comparison_guard(self):
        # A pathological matcher that always matches forces endless
        # merging of a growing record with itself — the guard trips.
        records = [record(f"r{i}", name=f"n{i}") for i in range(4)]
        result = r_swoosh(records, lambda a, b: True)
        assert result.n_entities == 1
        with pytest.raises(ConfigurationError):
            r_swoosh(records, lambda a, b: True, max_comparisons=1)

    def test_empty_input(self):
        result = r_swoosh([], simple_match)
        assert result.n_entities == 0
        assert result.comparisons == 0
