"""Unit tests for Source and Dataset."""

import pytest

from repro.core import (
    DataModelError,
    Dataset,
    GroundTruth,
    Record,
    Source,
    UnknownRecordError,
    UnknownSourceError,
)


def record(rid, sid, **attrs):
    return Record(rid, sid, {k: str(v) for k, v in attrs.items()})


@pytest.fixture
def two_source_dataset():
    s1 = Source(
        "s1",
        [record("s1/0", "s1", name="a", color="red"),
         record("s1/1", "s1", name="b")],
    )
    s2 = Source("s2", [record("s2/0", "s2", title="a2", colour="red")])
    truth = GroundTruth({"s1/0": "e0", "s1/1": "e1", "s2/0": "e0"})
    return Dataset([s1, s2], truth, name="mini")


class TestSource:
    def test_rejects_foreign_record(self):
        source = Source("s1")
        with pytest.raises(DataModelError):
            source.add(record("s2/0", "s2", name="x"))

    def test_rejects_duplicate_record_id(self):
        source = Source("s1", [record("s1/0", "s1", name="x")])
        with pytest.raises(DataModelError):
            source.add(record("s1/0", "s1", name="y"))

    def test_rejects_negative_cost(self):
        with pytest.raises(DataModelError):
            Source("s1", cost=-1.0)

    def test_attribute_names_union(self):
        source = Source(
            "s1",
            [record("s1/0", "s1", name="x"),
             record("s1/1", "s1", name="y", color="red")],
        )
        assert source.attribute_names() == {"name", "color"}

    def test_get_and_contains(self):
        source = Source("s1", [record("s1/0", "s1", name="x")])
        assert source.get("s1/0") is not None
        assert "s1/0" in source
        assert source.get("nope") is None


class TestDataset:
    def test_record_lookup(self, two_source_dataset):
        assert two_source_dataset.record("s2/0")["title"] == "a2"

    def test_unknown_record_raises(self, two_source_dataset):
        with pytest.raises(UnknownRecordError):
            two_source_dataset.record("nope")

    def test_unknown_source_raises(self, two_source_dataset):
        with pytest.raises(UnknownSourceError):
            two_source_dataset.source("nope")

    def test_duplicate_source_ids_rejected(self):
        with pytest.raises(DataModelError):
            Dataset([Source("s1"), Source("s1")])

    def test_n_records_and_iteration(self, two_source_dataset):
        assert two_source_dataset.n_records == 3
        assert len(list(two_source_dataset.records())) == 3

    def test_attribute_usage_counts_sources_not_records(
        self, two_source_dataset
    ):
        usage = two_source_dataset.attribute_usage()
        assert usage["name"] == 1  # only s1 uses 'name'
        assert usage["color"] == 1
        assert usage["colour"] == 1

    def test_with_sources_projects_ground_truth(self, two_source_dataset):
        sliced = two_source_dataset.with_sources(["s1"])
        assert sliced.n_records == 2
        assert sliced.ground_truth is not None
        assert set(sliced.ground_truth.record_to_entity) == {"s1/0", "s1/1"}

    def test_merged_with_rejects_shared_sources(self, two_source_dataset):
        with pytest.raises(DataModelError):
            two_source_dataset.merged_with(two_source_dataset)

    def test_merged_with_combines_truth(self, two_source_dataset):
        extra = Dataset(
            [Source("s3", [record("s3/0", "s3", name="z")])],
            GroundTruth({"s3/0": "e9"}),
        )
        merged = two_source_dataset.merged_with(extra)
        assert merged.n_records == 4
        assert merged.ground_truth.entity_of("s3/0") == "e9"
