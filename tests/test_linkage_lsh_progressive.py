"""Tests for MinHash/LSH blocking and progressive resolution."""

import pytest

from repro.core import ConfigurationError, Record
from repro.linkage import (
    MinHashBlocker,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    order_candidates,
    progressive_resolution_curve,
)
from repro.quality import blocking_quality
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


@pytest.fixture(scope="module")
def corpus():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=50, seed=3)
    )
    return generate_dataset(
        world, CorpusConfig(n_sources=10, typo_rate=0.05, seed=5)
    )


class TestMinHashBlocker:
    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            MinHashBlocker(n_hashes=0)
        with pytest.raises(ConfigurationError):
            MinHashBlocker(n_hashes=10, bands=3)  # not divisible

    def test_threshold_formula(self):
        blocker = MinHashBlocker(n_hashes=64, bands=16)
        assert blocker.similarity_threshold == pytest.approx(
            (1 / 16) ** (1 / 4)
        )

    def test_identical_records_always_collide(self):
        records = [
            Record("a", "s", {"name": "canon powershot a95 black"}),
            Record("b", "s", {"name": "canon powershot a95 black"}),
        ]
        pairs = MinHashBlocker(32, 8).block(records).candidate_pairs()
        assert frozenset(("a", "b")) in pairs

    def test_disjoint_records_never_collide(self):
        records = [
            Record("a", "s", {"name": "alpha beta gamma delta"}),
            Record("b", "s", {"name": "epsilon zeta eta theta"}),
        ]
        pairs = MinHashBlocker(32, 8).block(records).candidate_pairs()
        assert frozenset(("a", "b")) not in pairs

    def test_more_bands_more_candidates(self, corpus):
        records = list(corpus.records())
        few = MinHashBlocker(64, 8).block(records).candidate_pairs()
        many = MinHashBlocker(64, 32).block(records).candidate_pairs()
        assert len(many) > len(few)

    def test_low_threshold_high_recall(self, corpus):
        records = list(corpus.records())
        quality = blocking_quality(
            MinHashBlocker(64, 32).block(records).candidate_pairs(),
            corpus.ground_truth,
            len(records),
        )
        assert quality.pairs_completeness > 0.9

    def test_deterministic(self, corpus):
        records = list(corpus.records())
        a = MinHashBlocker(32, 8, seed=4).block(records).candidate_pairs()
        b = MinHashBlocker(32, 8, seed=4).block(records).candidate_pairs()
        assert a == b

    def test_empty_text_skipped(self):
        records = [Record("a", "s", {"name": "!!"})]
        assert len(MinHashBlocker(32, 8).block(records)) == 0


class TestProgressive:
    @pytest.fixture(scope="class")
    def blocks(self, corpus):
        return TokenBlocker(max_block_size=50).block(
            list(corpus.records())
        )

    def test_unknown_ordering(self, blocks):
        with pytest.raises(ConfigurationError):
            order_candidates(blocks, "zap")

    def test_orderings_cover_all_candidates(self, blocks):
        expected = blocks.candidate_pairs()
        for ordering in ("similarity", "block-size", "random"):
            ordered = order_candidates(blocks, ordering)
            assert set(ordered) == expected
            assert len(ordered) == len(expected)

    def test_curve_monotone_and_complete(self, corpus, blocks):
        records = list(corpus.records())
        curve = progressive_resolution_curve(
            records,
            blocks,
            default_product_comparator(),
            ThresholdClassifier(0.72),
            ordering="similarity",
        )
        matches = [point.matches_found for point in curve]
        assert matches == sorted(matches)
        comparisons = [point.comparisons for point in curve]
        assert comparisons[-1] == len(blocks.candidate_pairs())

    def test_similarity_first_beats_random_early(self, corpus, blocks):
        records = list(corpus.records())
        kwargs = dict(
            comparator=default_product_comparator(),
            classifier=ThresholdClassifier(0.72),
        )
        total = len(blocks.candidate_pairs())
        checkpoint = [max(1, total // 5)]
        smart = progressive_resolution_curve(
            records, blocks, ordering="similarity",
            checkpoints=checkpoint, **kwargs,
        )
        lucky = progressive_resolution_curve(
            records, blocks, ordering="random",
            checkpoints=checkpoint, seed=1, **kwargs,
        )
        assert smart[0].matches_found > 1.5 * lucky[0].matches_found

    def test_endpoints_agree_across_orderings(self, corpus, blocks):
        records = list(corpus.records())
        finals = []
        for ordering in ("similarity", "block-size", "random"):
            curve = progressive_resolution_curve(
                records,
                blocks,
                default_product_comparator(),
                ThresholdClassifier(0.72),
                ordering=ordering,
            )
            finals.append(curve[-1].matches_found)
        assert len(set(finals)) == 1
