"""Tests for the MapReduce engine, partitioners, and cost model."""

import pytest

from repro.core import ConfigurationError
from repro.dist import (
    ClusterCostModel,
    MapReduceJob,
    MatchTask,
    block_split_partition,
    hash_partitioner,
    naive_partition,
    pair_range_partition,
    partition_blocks,
    run_distributed_linkage,
    task_pairs,
)
from repro.linkage import Block, BlockCollection, ThresholdClassifier
from repro.linkage.blocking import first_token_key
from repro.linkage import StandardBlocker, default_product_comparator
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


class TestMapReduce:
    def test_word_count(self):
        job = MapReduceJob(
            map_function=lambda line: [(w, 1) for w in line.split()],
            reduce_function=lambda key, values: [(key, sum(values))],
            n_reducers=3,
        )
        result = job.run(["a b a", "b c"])
        counts = dict(result.outputs)
        assert counts == {"a": 2, "b": 2, "c": 1}

    def test_deterministic_output_order(self):
        job = MapReduceJob(
            map_function=lambda x: [(x % 5, x)],
            reduce_function=lambda key, values: [(key, sorted(values))],
            n_reducers=2,
        )
        first = job.run(list(range(20))).outputs
        second = job.run(list(range(20))).outputs
        assert first == second

    def test_metrics_cover_all_values(self):
        job = MapReduceJob(
            map_function=lambda x: [(x % 3, x)],
            reduce_function=lambda key, values: [],
            n_reducers=2,
        )
        result = job.run(list(range(30)))
        assert result.n_map_outputs == 30
        assert sum(m.n_values for m in result.reducer_metrics) == 30

    def test_custom_cost_function(self):
        job = MapReduceJob(
            map_function=lambda x: [("k", x)],
            reduce_function=lambda key, values: [],
            n_reducers=1,
            cost_function=lambda key, values: 100.0,
        )
        result = job.run([1, 2, 3])
        assert result.total_cost == 100.0

    def test_skew_metric(self):
        job = MapReduceJob(
            map_function=lambda x: [(x, x)],
            reduce_function=lambda key, values: [],
            n_reducers=2,
            partitioner=lambda key, n: 0,  # everything on reducer 0
        )
        result = job.run(list(range(10)))
        assert result.skew == pytest.approx(2.0)

    def test_bad_partitioner_caught(self):
        job = MapReduceJob(
            map_function=lambda x: [(x, x)],
            reduce_function=lambda key, values: [],
            n_reducers=2,
            partitioner=lambda key, n: 7,
        )
        with pytest.raises(ConfigurationError):
            job.run([1])

    def test_hash_partitioner_stable(self):
        assert hash_partitioner("abc", 16) == hash_partitioner("abc", 16)
        assert 0 <= hash_partitioner("anything", 7) < 7


def skewed_blocks():
    """One huge block plus many small ones — the Zipf pattern."""
    blocks = [Block("big", tuple(f"r{i}" for i in range(40)))]
    for j in range(12):
        blocks.append(
            Block(f"small{j}", (f"s{j}a", f"s{j}b", f"s{j}c"))
        )
    return BlockCollection(blocks)


class TestMatchTask:
    def test_within_comparisons(self):
        task = MatchTask("k", ("a", "b", "c"))
        assert task.n_comparisons == 3
        assert set(task_pairs(task)) == {
            ("a", "b"), ("a", "c"), ("b", "c"),
        }

    def test_cross_comparisons(self):
        task = MatchTask("k", ("a", "b"), ("x",))
        assert task.n_comparisons == 2
        assert set(task_pairs(task)) == {("a", "x"), ("b", "x")}


class TestPartitioners:
    def all_pairs(self, partition):
        pairs = set()
        for tasks in partition:
            for task in tasks:
                for a, b in task_pairs(task):
                    pairs.add(frozenset((a, b)))
        return pairs

    def comparisons(self, partition):
        return [
            sum(t.n_comparisons for t in tasks) for tasks in partition
        ]

    @pytest.mark.parametrize(
        "strategy", ["naive", "blocksplit", "pairrange"]
    )
    def test_every_strategy_covers_all_pairs(self, strategy):
        blocks = skewed_blocks()
        partition = partition_blocks(blocks, strategy, 8)
        assert self.all_pairs(partition) == blocks.candidate_pairs()

    @pytest.mark.parametrize(
        "strategy", ["naive", "blocksplit", "pairrange"]
    )
    def test_comparison_totals_match(self, strategy):
        blocks = skewed_blocks()
        partition = partition_blocks(blocks, strategy, 8)
        assert sum(self.comparisons(partition)) == blocks.n_comparisons

    def test_naive_skews_under_zipf(self):
        blocks = skewed_blocks()
        naive = self.comparisons(naive_partition(blocks, 8))
        assert max(naive) >= 780  # the big block lands whole somewhere

    def test_blocksplit_balances(self):
        blocks = skewed_blocks()
        loads = self.comparisons(block_split_partition(blocks, 8))
        assert max(loads) < 2 * (sum(loads) / len(loads))

    def test_pairrange_near_perfect_balance(self):
        blocks = skewed_blocks()
        loads = self.comparisons(pair_range_partition(blocks, 8))
        assert max(loads) - min(loads) <= max(1, sum(loads) // 50)

    def test_single_reducer_identity(self):
        blocks = skewed_blocks()
        for strategy in ("naive", "blocksplit", "pairrange"):
            partition = partition_blocks(blocks, strategy, 1)
            assert len(partition) == 1
            assert sum(self.comparisons(partition)) == blocks.n_comparisons

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            partition_blocks(skewed_blocks(), "zap", 4)


class TestCostModel:
    def test_makespan_is_max(self):
        model = ClusterCostModel(comparison_cost=1.0, task_overhead=0.0, startup=0.0)
        partition = [
            [MatchTask("a", ("x", "y", "z"))],  # 3 comparisons
            [MatchTask("b", ("p", "q"))],       # 1 comparison
        ]
        cost = model.evaluate(partition)
        assert cost.makespan == 3.0
        assert cost.per_reducer_comparisons == (3, 1)

    def test_speedup_vs_serial(self):
        model = ClusterCostModel(comparison_cost=1.0, task_overhead=0.0, startup=0.0)
        partition = [
            [MatchTask("a", ("x", "y", "z"))],
            [MatchTask("b", ("p", "q", "r"))],
        ]
        cost = model.evaluate(partition)
        assert cost.speedup == pytest.approx(2.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ClusterCostModel(comparison_cost=0.0)


class TestDistributedLinkage:
    @pytest.fixture(scope="class")
    def setup(self):
        world = generate_world(
            WorldConfig(categories=("camera",), entities_per_category=40, seed=3)
        )
        dataset = generate_dataset(world, CorpusConfig(n_sources=8, seed=5))
        records = list(dataset.records())
        blocks = StandardBlocker(first_token_key("name")).block(records)
        return records, blocks

    def test_strategies_agree_on_matches(self, setup):
        records, blocks = setup
        results = {}
        for strategy in ("naive", "blocksplit", "pairrange"):
            run = run_distributed_linkage(
                records,
                blocks,
                default_product_comparator(),
                ThresholdClassifier(0.72),
                strategy,
                n_reducers=4,
            )
            results[strategy] = run.match_pairs
        assert results["naive"] == results["blocksplit"] == results["pairrange"]

    def test_balanced_strategies_scale_better(self, setup):
        records, blocks = setup
        def makespan(strategy, r):
            return run_distributed_linkage(
                records, blocks, default_product_comparator(),
                ThresholdClassifier(0.72), strategy, r,
            ).cost.makespan
        assert makespan("blocksplit", 16) < makespan("naive", 16)


class TestOrderIndependentDedup:
    """Regression: the per-run comparison cache must not depend on the
    order reducers (or blocks) happen to emit raw pairs.

    The dedup used to keep the first-seen orientation of each pair, so
    two partitionings of the same blocks could score ``(a, b)`` in one
    run and ``(b, a)`` in another. It now canonicalizes to the sorted
    unique pair list before scoring, which is also what
    ``execution="sharded"`` partitions.
    """

    def _records(self):
        from repro.core import Record

        return [
            Record(f"r{i}", f"s{i % 2}", {"name": "acme item", "brand": "acme"})
            for i in range(4)
        ]

    def _run(self, blocks, **kwargs):
        return run_distributed_linkage(
            self._records(),
            blocks,
            default_product_comparator(),
            ThresholdClassifier(0.5),
            "naive",
            n_reducers=2,
            **kwargs,
        )

    def test_block_order_and_orientation_are_irrelevant(self):
        # The same pairs reach the dedup in different orders and
        # orientations: (r1, r2) arrives as r1<r2 from one block and
        # r2>r1 from the other, and reversing the block list flips
        # which spelling is seen first.
        forward = BlockCollection([
            Block("k1", ("r0", "r1", "r2")),
            Block("k2", ("r2", "r1", "r3")),
        ])
        reversed_blocks = BlockCollection([
            Block("k2", ("r3", "r1", "r2")),
            Block("k1", ("r2", "r1", "r0")),
        ])
        first = self._run(forward)
        second = self._run(reversed_blocks)
        assert first.match_pairs == second.match_pairs
        assert first.n_unique_comparisons == second.n_unique_comparisons
        assert first.n_comparisons == second.n_comparisons

    def test_sharded_execution_matches_engine(self):
        blocks = BlockCollection([
            Block("k1", ("r0", "r1", "r2")),
            Block("k2", ("r2", "r1", "r3")),
        ])
        serial = self._run(blocks)
        sharded = self._run(blocks, execution="sharded", n_workers=3)
        assert sharded.match_pairs == serial.match_pairs
        assert sharded.n_unique_comparisons == serial.n_unique_comparisons


class TestShardedDistributedLinkage:
    def test_sharded_matches_serial_on_corpus(self):
        world = generate_world(
            WorldConfig(categories=("camera",), entities_per_category=15, seed=3)
        )
        dataset = generate_dataset(world, CorpusConfig(n_sources=4, seed=5))
        records = list(dataset.records())
        blocks = StandardBlocker(first_token_key("name")).block(records)
        serial = run_distributed_linkage(
            records, blocks, default_product_comparator(),
            ThresholdClassifier(0.72), "blocksplit", n_reducers=4,
        )
        sharded = run_distributed_linkage(
            records, blocks, default_product_comparator(),
            ThresholdClassifier(0.72), "blocksplit", n_reducers=4,
            execution="sharded", n_workers=3,
        )
        assert sharded.match_pairs == serial.match_pairs
        assert sharded.n_unique_comparisons == serial.n_unique_comparisons
        assert sharded.n_comparisons == serial.n_comparisons
