"""Tests for value-transformation (scale factor) discovery."""

import random

import pytest

from repro.core import Dataset, EmptyInputError, Record, Source
from repro.schema import (
    discover_scale_transform,
    known_unit_ratios,
    profile_attributes,
)


def profiles_for(column_a, column_b, attr_a="a", attr_b="b"):
    s1 = Source(
        "s1",
        [
            Record(f"s1/{i}", "s1", {attr_a: value})
            for i, value in enumerate(column_a)
        ],
    )
    s2 = Source(
        "s2",
        [
            Record(f"s2/{i}", "s2", {attr_b: value})
            for i, value in enumerate(column_b)
        ],
    )
    profiles = profile_attributes(Dataset([s1, s2]))
    return profiles[("s1", attr_a)], profiles[("s2", attr_b)]


class TestKnownUnitRatios:
    def test_contains_lb_to_g(self):
        ratios = known_unit_ratios()
        assert any(
            pair in (("lb", "g"), ("lbs", "g"))
            and ratio == pytest.approx(453.592)
            for ratio, pair in ratios.items()
        )

    def test_only_same_dimension_pairs(self):
        dimension_of = {"g": "w", "kg": "w", "cm": "l", "in": "l"}
        for __, (unit_a, unit_b) in known_unit_ratios().items():
            if unit_a in dimension_of and unit_b in dimension_of:
                assert dimension_of[unit_a] == dimension_of[unit_b]


class TestDiscovery:
    def test_same_entities_exact_conversion(self):
        rng = random.Random(3)
        grams = [rng.uniform(500, 3000) for __ in range(50)]
        left, right = profiles_for(
            [f"{g:.0f} g" for g in grams],
            [f"{g / 453.592:.3f} lb" for g in grams],
            attr_a="weight",
            attr_b="item weight",
        )
        transform = discover_scale_transform(left, right)
        assert transform.unit_pair in {("lb", "g"), ("lbs", "g")}
        assert transform.factor == pytest.approx(453.592, rel=0.02)
        assert transform.confidence > 0.95
        assert transform.apply(1.0) == pytest.approx(453.592, rel=0.02)

    def test_identity_for_same_unit(self):
        rng = random.Random(5)
        values = [f"{rng.uniform(1, 10):.1f} cm" for __ in range(40)]
        left, right = profiles_for(values, values)
        transform = discover_scale_transform(left, right)
        assert transform.factor == 1.0
        assert transform.unit_pair is None
        assert transform.confidence > 0.9

    def test_ghz_vs_mhz(self):
        rng = random.Random(7)
        ghz = [rng.uniform(1.0, 5.0) for __ in range(50)]
        left, right = profiles_for(
            [f"{int(v * 1000)} mhz" for v in ghz],
            [f"{v:.1f} ghz" for v in ghz],
        )
        transform = discover_scale_transform(left, right)
        # Many conversions share the 1000× ratio; the snapped pair is
        # a representative, so assert recognition + magnitude only.
        assert transform.unit_pair is not None
        assert transform.factor == pytest.approx(1000, rel=0.03)

    def test_unknown_factor_reported_raw(self):
        left, right = profiles_for(
            [f"{v}" for v in (70, 70, 70)],
            [f"{v}" for v in (10, 10, 10)],
        )
        transform = discover_scale_transform(left, right)
        assert transform.factor == pytest.approx(7.0)
        assert transform.unit_pair is None
        assert transform.confidence == 0.0

    def test_non_numeric_rejected(self):
        left, right = profiles_for(["black"], ["red"])
        with pytest.raises(EmptyInputError):
            discover_scale_transform(left, right)

    def test_robust_to_outliers(self):
        rng = random.Random(9)
        grams = [rng.uniform(500, 3000) for __ in range(60)]
        noisy = [f"{g:.0f} g" for g in grams]
        noisy[0] = "999999 g"  # one gross error
        left, right = profiles_for(
            noisy, [f"{g / 1000:.3f} kg" for g in grams]
        )
        transform = discover_scale_transform(left, right)
        assert transform.unit_pair is not None
        assert transform.factor == pytest.approx(1000, rel=0.05)
