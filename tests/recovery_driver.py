"""Sacrificial subprocess for the kill/resume acceptance tests.

The kill fault (``FaultSpec(kind="kill")``) terminates the whole
process via ``os._exit`` — no unwinding, no cleanup — so it can only
be exercised from a process built to die. This driver is that process:
the tests launch it once with ``--kill-chunk`` (it dies mid-run with
exit status 137 after checkpointing the chunks it completed), then
again without (it resumes from the same store and prints its result as
JSON), and compare against an uninterrupted run.

Modes
-----

``engine``
    The shared 8-record / 28-pair workload through
    ``ParallelComparisonEngine.match_pairs`` with ``chunk_size=7`` —
    exactly 4 chunks under serial or process execution, so
    ``--kill-chunk 2`` always dies with chunks 0–1 checkpointed.
``pipeline``
    A full ``BDIPipeline.run(checkpoint=...)`` over a small
    three-source corpus; the kill lands in the linkage stage's chunk
    loop, leaving a partial stage ledger behind.
``solver``
    TruthFinder over a claim set, killed after ``--kill-iter`` durable
    iteration saves (a kill at an iteration boundary rather than a
    chunk boundary).

Each mode prints a deterministic JSON document on success; a killed
invocation prints nothing and exits 137 (``KILL_EXIT_CODE``).
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.core import Dataset, Record, Source  # noqa: E402
from repro.core.pipeline import BDIPipeline, PipelineConfig  # noqa: E402
from repro.fusion import Claim, ClaimSet, TruthFinder  # noqa: E402
from repro.linkage import (  # noqa: E402
    FieldComparator,
    ParallelComparisonEngine,
    RecordComparator,
    ThresholdClassifier,
)
from repro.obs import Tracer  # noqa: E402
from repro.recovery import RunStore  # noqa: E402
from repro.resilience import ResilienceConfig, RetryPolicy  # noqa: E402
from repro.resilience.testing import FaultInjector, kill  # noqa: E402
from repro.text import exact_similarity  # noqa: E402


def _recovery_counters(tracer):
    counters = tracer.report().metrics.get("counters", {})
    return {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith("recovery.")
    }


def _engine_workload():
    records = [
        Record(
            f"r{i}", f"s{i % 2}", {"name": f"item {i // 2}", "brand": "acme"}
        )
        for i in range(8)
    ]
    ids = [record.record_id for record in records]
    pairs = [
        (ids[i], ids[j])
        for i in range(len(ids))
        for j in range(i + 1, len(ids))
    ]
    return records, pairs


def _comparator():
    return RecordComparator(
        fields=[
            FieldComparator("name", exact_similarity, weight=2.0),
            FieldComparator("brand", exact_similarity, weight=1.0),
        ]
    )


def run_engine(root, kill_chunk, execution):
    records, pairs = _engine_workload()
    injector = None
    if kill_chunk is not None:
        injector = FaultInjector(kill(chunk=kill_chunk, attempts=1))
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=2, base_delay=0.01),
        failure="retry",
        fault_injector=injector,
    )
    tracer = Tracer()
    engine = ParallelComparisonEngine(
        _comparator(),
        execution=execution,
        n_workers=1 if execution == "serial" else 2,
        chunk_size=7,
        tracer=tracer,
        resilience=resilience,
        checkpoint=RunStore(root),
    )
    run = engine.match_pairs(records, pairs, ThresholdClassifier(0.9))
    return {
        "match_pairs": sorted(sorted(pair) for pair in run.match_pairs),
        "scored_edges": [
            [left, right, round(score, 12)]
            for left, right, score in run.scored_edges
        ],
        "completed_chunks": run.completed_chunks,
        "n_chunks": run.n_chunks,
        "counters": _recovery_counters(tracer),
    }


def _pipeline_dataset():
    sources = []
    for s in range(3):
        records = [
            Record(
                f"s{s}r{i}",
                f"src{s}",
                {
                    "title": f"widget model {i % 6} deluxe",
                    "brand": ["acme", "acme", "bolt"][s],
                    "price": str(10 + (i % 6)),
                },
            )
            for i in range(12)
        ]
        sources.append(Source(f"src{s}", records))
    return Dataset(sources)


def run_pipeline(root, kill_chunk):
    injector = None
    if kill_chunk is not None:
        injector = FaultInjector(kill(chunk=kill_chunk, attempts=1))
    config = PipelineConfig(
        fusion="truthfinder",
        n_workers=4,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            failure="retry",
            fault_injector=injector,
        ),
    )
    tracer = Tracer()
    result = BDIPipeline(config).run(
        _pipeline_dataset(), tracer=tracer, checkpoint=root
    )
    return {
        "entity_table": result.entity_table,
        "clusters": sorted(sorted(cluster) for cluster in result.clusters),
        "chosen": dict(sorted(result.fusion.chosen.items())),
        "iterations": result.fusion.iterations,
        "counters": _recovery_counters(tracer),
    }


class _KillAfterSaves:
    """A checkpoint wrapper that dies after N durable saves.

    Models a crash landing exactly on an iteration boundary: the Nth
    iteration's state is fully committed, then the process is gone.
    """

    def __init__(self, store, kill_after):
        self._store = store
        self._kill_after = kill_after
        self._saves = 0

    def load(self, key):
        return self._store.load(key)

    def save(self, key, value):
        meta = self._store.save(key, value)
        self._saves += 1
        if self._saves >= self._kill_after:
            os._exit(137)
        return meta


def _solver_claims():
    claims = ClaimSet()
    for item in range(6):
        for source in range(5):
            value = "true-value" if source < 3 else f"wrong-{source}"
            claims.add(Claim(f"src{source}", f"item{item}", value))
    return claims


def run_solver(root, kill_iter):
    store = RunStore(root)
    checkpoint = (
        store if kill_iter is None else _KillAfterSaves(store, kill_iter)
    )
    tracer = Tracer()
    fuser = TruthFinder(
        max_iterations=40, tolerance=1e-9, tracer=tracer, checkpoint=checkpoint
    )
    result = fuser.fuse(_solver_claims())
    return {
        "chosen": dict(sorted(result.chosen.items())),
        "confidence": {
            item: round(value, 12)
            for item, value in sorted(result.confidence.items())
        },
        "source_accuracy": {
            source: round(value, 12)
            for source, value in sorted(result.source_accuracy.items())
        },
        "iterations": result.iterations,
        "counters": _recovery_counters(tracer),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=("engine", "pipeline", "solver"))
    parser.add_argument("root", help="run-store directory")
    parser.add_argument("--kill-chunk", type=int, default=None)
    parser.add_argument("--kill-iter", type=int, default=None)
    parser.add_argument(
        "--execution", choices=("serial", "process"), default="serial"
    )
    options = parser.parse_args()
    if options.mode == "engine":
        document = run_engine(
            options.root, options.kill_chunk, options.execution
        )
    elif options.mode == "pipeline":
        document = run_pipeline(options.root, options.kill_chunk)
    else:
        document = run_solver(options.root, options.kill_iter)
    json.dump(document, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
