"""Shared test fixtures: deterministic clocks and fault injection.

The resilience layer keeps every timing decision behind an injectable
clock/sleep pair, so these fixtures are all a test needs to make an
entire failure→backoff→recovery timeline exact: ``manual_clock()``
builds a :class:`~repro.obs.clock.ManualClock` (tick=0 by default —
time moves only when the code under test sleeps), and
``fault_injector()`` builds a
:class:`~repro.resilience.testing.FaultInjector` from declarative
fault specs.

The ``slow`` marker (registered in pyproject.toml) tags tests that
spin up real worker processes; CI runs the full suite on pushes and
``-m "not slow"`` on pull requests.
"""

import pytest

from repro.obs import ManualClock
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.resilience.testing import FaultInjector


@pytest.fixture
def manual_clock():
    """Factory for deterministic clocks: ``manual_clock(start, tick)``."""

    def make(start: float = 0.0, tick: float = 0.0) -> ManualClock:
        return ManualClock(start=start, tick=tick)

    return make


@pytest.fixture
def fault_injector():
    """Factory for fault injectors: ``fault_injector(*specs)``."""

    def make(*specs) -> FaultInjector:
        return FaultInjector(*specs)

    return make


@pytest.fixture
def resilience_config(manual_clock):
    """Factory for a fully deterministic :class:`ResilienceConfig`.

    Builds a config wired to a fresh ``ManualClock`` with
    ``sleep=clock.advance`` so backoff consumes simulated time only;
    the clock is exposed as ``config.clock`` for assertions.
    """

    def make(
        failure: str = "retry",
        max_attempts: int = 3,
        base_delay: float = 1.0,
        multiplier: float = 2.0,
        timeout=None,
        deadline=None,
        injector=None,
        jitter: float = 0.0,
    ) -> ResilienceConfig:
        clock = manual_clock()
        return ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=max_attempts,
                base_delay=base_delay,
                multiplier=multiplier,
                jitter=jitter,
            ),
            failure=failure,
            timeout=timeout,
            deadline=deadline,
            clock=clock,
            sleep=clock.advance,
            fault_injector=injector,
        )

    return make
