"""Tests for snapshots, diffing, and incremental maintenance."""

import pytest

from repro.core import ConfigurationError
from repro.linkage import (
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
)
from repro.quality import pairwise_cluster_quality
from repro.synth import (
    CorpusConfig,
    EvolvingWorldConfig,
    WorldConfig,
    evolve_world,
    generate_world,
)
from repro.velocity import (
    SnapshotConfig,
    SnapshotMaintainer,
    diff_datasets,
    render_snapshots,
)


@pytest.fixture(scope="module")
def snapshots():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=40, seed=5)
    )
    worlds = evolve_world(
        world,
        EvolvingWorldConfig(
            n_snapshots=4, change_rate=0.2, death_rate=0.08, seed=6
        ),
    )
    return render_snapshots(
        worlds,
        CorpusConfig(
            n_sources=8, min_source_size=10, max_source_size=30, seed=7
        ),
        SnapshotConfig(
            source_death_rate=0.12,
            page_death_rate=0.15,
            page_birth_rate=0.1,
            seed=8,
        ),
    )


class TestEvolveWorld:
    def test_snapshot_zero_is_input(self):
        world = generate_world(WorldConfig(entities_per_category=10))
        worlds = evolve_world(world, EvolvingWorldConfig(n_snapshots=3))
        assert worlds[0] is world
        assert len(worlds) == 3

    def test_values_change_over_time(self):
        world = generate_world(
            WorldConfig(categories=("camera",), entities_per_category=30)
        )
        worlds = evolve_world(
            world,
            EvolvingWorldConfig(
                n_snapshots=3, change_rate=0.5, death_rate=0.0
            ),
        )
        changed = 0
        for entity in worlds[0].entities:
            later = worlds[2].entity(entity.entity_id)
            if dict(later.true_values) != dict(entity.true_values):
                changed += 1
        assert changed > 10

    def test_identifiers_stable(self):
        world = generate_world(
            WorldConfig(categories=("camera",), entities_per_category=20)
        )
        worlds = evolve_world(
            world,
            EvolvingWorldConfig(
                n_snapshots=3, change_rate=0.9, death_rate=0.0
            ),
        )
        for entity in worlds[0].entities:
            later = worlds[2].entity(entity.entity_id)
            assert later.true_values["product id"] == (
                entity.true_values["product id"]
            )

    def test_churn_replaces_entities(self):
        world = generate_world(
            WorldConfig(categories=("camera",), entities_per_category=30)
        )
        worlds = evolve_world(
            world,
            EvolvingWorldConfig(
                n_snapshots=3, change_rate=0.0, death_rate=0.3
            ),
        )
        first_ids = {e.entity_id for e in worlds[0].entities}
        last_ids = {e.entity_id for e in worlds[2].entities}
        assert first_ids != last_ids
        assert len(last_ids) == len(first_ids)  # replacement keeps size


class TestRenderSnapshots:
    def test_snapshot_count(self, snapshots):
        assert len(snapshots) == 4

    def test_record_ids_stable_for_surviving_pages(self, snapshots):
        first_ids = set(snapshots[0].record_ids())
        second_ids = set(snapshots[1].record_ids())
        assert first_ids & second_ids  # overlap = surviving pages

    def test_diff_accounts_for_everything(self, snapshots):
        diff = diff_datasets(snapshots[0], snapshots[1])
        old_count = snapshots[0].n_records
        assert (
            len(diff.removed_records)
            + len(diff.changed_records)
            + diff.unchanged_records
        ) == old_count

    def test_source_churn_observed(self, snapshots):
        diff = diff_datasets(snapshots[0], snapshots[-1])
        assert diff.added_sources or diff.removed_sources

    def test_record_survival_below_one(self, snapshots):
        diff = diff_datasets(snapshots[0], snapshots[-1])
        assert 0.0 < diff.record_survival < 1.0

    def test_ground_truth_attached(self, snapshots):
        for snapshot in snapshots:
            truth = snapshot.ground_truth
            assert truth is not None
            for record_id in snapshot.record_ids():
                assert truth.entity_of(record_id)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SnapshotConfig(source_death_rate=2.0)
        with pytest.raises(ConfigurationError):
            render_snapshots([])


class TestSnapshotMaintainer:
    def _keys(self):
        from repro.text import normalize_value, word_tokens

        def all_tokens(record):
            tokens = set()
            for value in record.attributes.values():
                tokens.update(
                    t
                    for t in word_tokens(normalize_value(value))
                    if len(t) >= 2
                )
            return tokens

        return [all_tokens]

    def test_incremental_cheaper_than_recompute(self, snapshots):
        maintainer = SnapshotMaintainer(
            self._keys(),
            default_product_comparator(),
            ThresholdClassifier(0.72),
        )
        costs = [maintainer.process_snapshot(s) for s in snapshots]
        # After the initial build, incremental snapshots must cost less
        # than a full recompute of the same snapshot.
        for snapshot, cost in zip(snapshots[1:], costs[1:]):
            __, full_comparisons = SnapshotMaintainer.full_recompute(
                snapshot,
                TokenBlocker(),
                default_product_comparator(),
                ThresholdClassifier(0.72),
            )
            assert cost.comparisons < full_comparisons

    def test_cluster_quality_tracks_recompute(self, snapshots):
        maintainer = SnapshotMaintainer(
            self._keys(),
            default_product_comparator(),
            ThresholdClassifier(0.72),
        )
        for snapshot in snapshots:
            maintainer.process_snapshot(snapshot)
        final = snapshots[-1]
        incremental_quality = pairwise_cluster_quality(
            maintainer.clusters(), final.ground_truth
        )
        full, __ = SnapshotMaintainer.full_recompute(
            final,
            TokenBlocker(),
            default_product_comparator(),
            ThresholdClassifier(0.72),
        )
        full_quality = pairwise_cluster_quality(full, final.ground_truth)
        assert incremental_quality.f1 >= full_quality.f1 - 0.1

    def test_clusters_cover_only_alive_records(self, snapshots):
        maintainer = SnapshotMaintainer(
            self._keys(),
            default_product_comparator(),
            ThresholdClassifier(0.72),
        )
        for snapshot in snapshots:
            maintainer.process_snapshot(snapshot)
        alive = set(snapshots[-1].record_ids())
        clustered = {m for c in maintainer.clusters() for m in c}
        assert clustered <= alive
