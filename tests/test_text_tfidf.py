"""Unit tests for TF-IDF weighting and soft TF-IDF similarity."""

import pytest

from repro.core import EmptyInputError
from repro.text import TfidfModel, soft_tfidf_similarity


@pytest.fixture
def model():
    return TfidfModel(
        [
            "canon camera black",
            "nikon camera black",
            "sony headphone black",
            "lenovo notebook silver",
        ]
    )


class TestTfidfModel:
    def test_requires_documents(self):
        with pytest.raises(EmptyInputError):
            TfidfModel([])

    def test_rare_tokens_weigh_more(self, model):
        assert model.idf("canon") > model.idf("black")

    def test_unseen_token_gets_max_weight(self, model):
        assert model.idf("zzz") >= model.idf("canon")

    def test_vector_is_normalized(self, model):
        vector = model.vector("canon camera")
        norm = sum(w * w for w in vector.values())
        assert norm == pytest.approx(1.0)

    def test_empty_document_vector(self, model):
        assert model.vector("") == {}

    def test_similarity_identical(self, model):
        assert model.similarity("canon camera", "canon camera") == pytest.approx(1.0)

    def test_similarity_ranks_discriminative_overlap_higher(self, model):
        # Sharing the rare token 'canon' should matter more than sharing
        # the ubiquitous token 'black'.
        rare = model.similarity("canon camera", "canon notebook")
        common = model.similarity("black camera", "notebook black")
        assert rare > common

    def test_accepts_pretokenized(self, model):
        assert model.similarity(["canon"], ["canon"]) == pytest.approx(1.0)


class TestSoftTfidf:
    def test_tolerates_typos(self, model):
        hard = model.similarity("canon camera", "cannon camera")
        soft = soft_tfidf_similarity("canon camera", "cannon camera", model)
        assert soft > hard

    def test_identical(self, model):
        assert soft_tfidf_similarity("canon", "canon", model) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_disjoint(self, model):
        assert soft_tfidf_similarity("canon", "lenovo", model) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_invalid_threshold(self, model):
        with pytest.raises(ValueError):
            soft_tfidf_similarity("a", "b", model, threshold=0.0)

    def test_empty_both(self, model):
        assert soft_tfidf_similarity("", "", model) == 1.0

    def test_empty_one(self, model):
        assert soft_tfidf_similarity("canon", "", model) == 0.0
