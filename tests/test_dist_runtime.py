"""Acceptance tests for the sharded pipeline runtime (repro.dist.runtime).

The contract under test is *byte-identity*: for every blocker, corpus
shape, shard count, backend, and record representation,
:func:`repro.dist.sharded_resolve` must reproduce the serial
:func:`repro.linkage.resolve` output exactly — same match pairs, same
scored edges in the same order, same clusters, same candidate count.
The differential harness below sweeps that matrix on three corpus
shapes (uniform synthetic, skewed with one hot block, adversarial with
clusters engineered to span shard boundaries).

The chaos matrix mirrors the PR 3 acceptance matrix
(``tests/test_resilience.py``) with faults targeted at a *single
shard* via ``FaultSpec(shard=...)``: ``"retry"`` reproduces the
fault-free output, ``"skip"`` quarantines only the poisoned pair into
the coordinator's merged dead-letter log, ``"fail"`` raises — and a
fault bound to shard *s* never fires on any other shard (or in an
unsharded engine, which never binds a shard id).

Mid-run process-kill + single-shard resume lives in
``tests/test_properties.py`` (property-based, via
``tests/dist_driver.py``); scaling is gated by
``benchmarks/check_sharded_scaling.py``.
"""

import functools

import pytest

from repro.core import ConfigurationError, Record
from repro.core.pipeline import BDIPipeline, PipelineConfig
from repro.dist import (
    ClusterCostModel,
    plan_shards,
    shard_of_key,
    sharded_match_pairs,
    sharded_resolve,
    sharded_vote_fusion,
)
from repro.dist.runtime import _canonical_pairs, _partition_pairs
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.voting import VotingFuser
from repro.linkage import (
    FieldComparator,
    RecordComparator,
    ThresholdClassifier,
    resolve,
)
from repro.linkage.blocking.base import Blocker
from repro.linkage.blocking.keys import first_token_key
from repro.linkage.blocking.standard import StandardBlocker
from repro.linkage.blocking.token import TokenBlocker
from repro.linkage.comparison import default_product_comparator
from repro.obs import Tracer
from repro.recovery import CheckpointMismatchError, RunStore
from repro.resilience import ChunkExecutionError
from repro.resilience.testing import crash
from repro.text import exact_similarity
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)
from repro import FourVKnobs, build_corpus
from tests.test_resilience import (
    _comparator as _chaos_comparator,
    _engine as _serial_engine,
)

# --- corpus zoo --------------------------------------------------------
#
# Three shapes that stress different parts of the sharded path:
#
# ``uniform``     synthetic camera corpus — realistic dirty strings,
#                 block sizes roughly even across shards.
# ``skewed``      one hot token shared by most records: a single huge
#                 block whose pairs pile onto few owner shards, plus a
#                 tail of tiny blocks.
# ``adversarial`` match chains engineered to cross shard boundaries
#                 (r0~r1 and r1~r2 matched through *different* blocks),
#                 singletons, and a record matching nothing — the
#                 cases where per-shard clustering alone would be
#                 wrong without boundary reconciliation.


def _exact_comparator():
    return RecordComparator(
        fields=[
            FieldComparator("name", exact_similarity, weight=2.0),
            FieldComparator("brand", exact_similarity, weight=1.0),
        ]
    )


def _uniform_corpus():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=12, seed=7)
    )
    dataset = generate_dataset(world, CorpusConfig(n_sources=4, seed=8))
    records = tuple(dataset.records())
    return records, default_product_comparator(), ThresholdClassifier(0.72)


def _skewed_corpus():
    records = []
    # One hot block: 14 records whose name starts with the same token,
    # two per entity so half the hot pairs are true matches.
    for i in range(14):
        records.append(
            Record(
                f"h{i}",
                f"s{i % 3}",
                {"name": f"acme widget {i // 2}", "brand": "acme"},
            )
        )
    # A tail of small distinct blocks (one true match each).
    for i in range(4):
        for copy in range(2):
            records.append(
                Record(
                    f"t{i}{copy}",
                    f"s{copy}",
                    {"name": f"gadget{i} rev", "brand": f"b{i}"},
                )
            )
    return tuple(records), _exact_comparator(), ThresholdClassifier(0.9)


def _adversarial_corpus():
    records = [
        # A 3-record cluster: its three pairs have different smaller
        # ids, so at n_shards>1 the cluster's matches land on different
        # owner shards and only boundary reconciliation can reassemble
        # it. TokenBlocker additionally links c2~c3 through the shared
        # "beta" token block (compared but non-matching — different
        # name), a block that straddles both clusters.
        Record("c0", "s0", {"name": "alpha beta", "brand": "x"}),
        Record("c1", "s1", {"name": "alpha beta", "brand": "x"}),
        Record("c2", "s2", {"name": "alpha beta", "brand": "x"}),
        Record("c3", "s1", {"name": "beta gamma", "brand": "x"}),
        Record("c4", "s0", {"name": "beta gamma", "brand": "x"}),
        # Singleton block (never compared).
        Record("lone", "s0", {"name": "unique thing", "brand": "z"}),
        # Same block, never a match (different name/brand weights).
        Record("n0", "s0", {"name": "delta one", "brand": "p"}),
        Record("n1", "s1", {"name": "delta two", "brand": "q"}),
        # Ids chosen to spread over hash space unevenly.
        Record("zz9", "s0", {"name": "omega item", "brand": "y"}),
        Record("zz10", "s1", {"name": "omega item", "brand": "y"}),
    ]
    return tuple(records), _exact_comparator(), ThresholdClassifier(0.9)


CORPORA = {
    "uniform": _uniform_corpus,
    "skewed": _skewed_corpus,
    "adversarial": _adversarial_corpus,
}

BLOCKERS = {
    "standard": lambda: StandardBlocker(
        first_token_key("name", aliases=("item name",))
    ),
    "token": lambda: TokenBlocker(max_block_size=40),
}


@functools.lru_cache(maxsize=None)
def _corpus(name):
    return CORPORA[name]()


@functools.lru_cache(maxsize=None)
def _serial(corpus_name, blocker_name, clustering="components"):
    records, comparator, classifier = _corpus(corpus_name)
    return resolve(
        list(records),
        BLOCKERS[blocker_name](),
        comparator,
        classifier,
        clustering=clustering,
    )


def assert_identical(serial, run):
    """The byte-identity contract, field by field."""
    result = run.result
    assert result.match_pairs == serial.match_pairs
    assert result.scored_edges == serial.scored_edges
    assert result.clusters == serial.clusters
    assert result.n_candidates == serial.n_candidates


class _OpaqueBlocker(Blocker):
    """A blocker without a shard-decomposable key path."""

    def block(self, records):
        return BLOCKERS["standard"]().block(records)


class TestDifferentialIdentity:
    @pytest.mark.parametrize("corpus_name", sorted(CORPORA))
    @pytest.mark.parametrize("blocker_name", sorted(BLOCKERS))
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 8])
    def test_inline_identity(self, corpus_name, blocker_name, n_shards):
        records, comparator, classifier = _corpus(corpus_name)
        run = sharded_resolve(
            list(records),
            BLOCKERS[blocker_name](),
            comparator,
            classifier,
            n_shards=n_shards,
            backend="inline",
        )
        assert run.n_shards == n_shards
        assert_identical(_serial(corpus_name, blocker_name), run)

    @pytest.mark.parametrize("corpus_name", sorted(CORPORA))
    @pytest.mark.parametrize("blocker_name", sorted(BLOCKERS))
    def test_columnar_identity(self, corpus_name, blocker_name):
        records, comparator, classifier = _corpus(corpus_name)
        run = sharded_resolve(
            list(records),
            BLOCKERS[blocker_name](),
            comparator,
            classifier,
            n_shards=3,
            backend="inline",
            representation="columnar",
        )
        assert_identical(_serial(corpus_name, blocker_name), run)

    def test_shuffle_path_taken_for_decomposable_blocker(self):
        records, comparator, classifier = _corpus("uniform")
        tracer = Tracer()
        run = sharded_resolve(
            list(records),
            TokenBlocker(max_block_size=40),
            comparator,
            classifier,
            n_shards=3,
            backend="inline",
            tracer=tracer,
        )
        counters = tracer.report().metrics["counters"]
        assert counters.get("dist.shuffle.blocks", 0) > 0
        assert_identical(_serial("uniform", "token"), run)

    def test_opaque_blocker_blocks_at_coordinator(self):
        records, comparator, classifier = _corpus("adversarial")
        blocker = _OpaqueBlocker()
        assert not blocker.supports_shard_keys
        tracer = Tracer()
        run = sharded_resolve(
            list(records),
            blocker,
            comparator,
            classifier,
            n_shards=3,
            backend="inline",
            tracer=tracer,
        )
        counters = tracer.report().metrics["counters"]
        assert "dist.shuffle.blocks" not in counters
        assert_identical(_serial("adversarial", "standard"), run)

    def test_candidate_pairs_override(self):
        records, comparator, classifier = _corpus("skewed")
        pairs = (
            BLOCKERS["standard"]()
            .block(list(records))
            .candidate_pairs()
        )
        serial = resolve(
            list(records), _OpaqueBlocker(), comparator, classifier,
            candidate_pairs=pairs,
        )
        run = sharded_resolve(
            list(records), _OpaqueBlocker(), comparator, classifier,
            candidate_pairs=pairs, n_shards=4, backend="inline",
        )
        assert_identical(serial, run)

    @pytest.mark.parametrize("clustering", ["center", "merge-center"])
    def test_clustering_variants(self, clustering):
        records, comparator, classifier = _corpus("uniform")
        run = sharded_resolve(
            list(records),
            BLOCKERS["standard"](),
            comparator,
            classifier,
            clustering=clustering,
            n_shards=3,
            backend="inline",
        )
        assert_identical(_serial("uniform", "standard", clustering), run)

    def test_auto_planned_shard_count(self):
        records, comparator, classifier = _corpus("uniform")
        run = sharded_resolve(
            list(records),
            BLOCKERS["standard"](),
            comparator,
            classifier,
            backend="inline",
        )
        assert not run.plan.pinned
        assert run.n_shards == run.plan.n_shards >= 1
        assert_identical(_serial("uniform", "standard"), run)

    def test_resolve_entry_point(self):
        records, comparator, classifier = _corpus("adversarial")
        via_resolve = resolve(
            list(records),
            BLOCKERS["standard"](),
            comparator,
            classifier,
            execution="sharded",
            n_shards=3,
            shard_backend="inline",
        )
        serial = _serial("adversarial", "standard")
        assert via_resolve.match_pairs == serial.match_pairs
        assert via_resolve.scored_edges == serial.scored_edges
        assert via_resolve.clusters == serial.clusters

    def test_sharded_rejects_memory_budget(self):
        records, comparator, classifier = _corpus("adversarial")
        with pytest.raises(ConfigurationError):
            resolve(
                list(records),
                BLOCKERS["standard"](),
                comparator,
                classifier,
                execution="sharded",
                n_shards=2,
                memory_budget=1 << 20,
            )

    def test_unknown_backend_rejected(self):
        records, comparator, classifier = _corpus("adversarial")
        with pytest.raises(ConfigurationError):
            sharded_resolve(
                list(records),
                BLOCKERS["standard"](),
                comparator,
                classifier,
                n_shards=2,
                backend="threads",
            )

    @pytest.mark.slow
    @pytest.mark.parametrize("corpus_name", ["uniform", "adversarial"])
    def test_process_backend_identity(self, corpus_name):
        records, comparator, classifier = _corpus(corpus_name)
        run = sharded_resolve(
            list(records),
            TokenBlocker(max_block_size=40),
            comparator,
            classifier,
            n_shards=3,
            backend="process",
        )
        assert run.backend == "process"
        assert_identical(_serial(corpus_name, "token"), run)


class TestPartitioning:
    def test_buckets_are_disjoint_owner_sorted_slices(self):
        records, __, __ = _corpus("skewed")
        pairs = (
            TokenBlocker(max_block_size=40)
            .block(list(records))
            .candidate_pairs()
        )
        ordered = _canonical_pairs(pairs)
        buckets, spanning = _partition_pairs(ordered, 3)
        for shard, bucket in enumerate(buckets):
            assert bucket == sorted(bucket)
            assert all(shard_of_key(p[0], 3) == shard for p in bucket)
        assert sorted(p for b in buckets for p in b) == ordered
        assert spanning == sum(
            1 for a, b in ordered
            if shard_of_key(a, 3) != shard_of_key(b, 3)
        )

    def test_spanning_pairs_counted_on_run(self):
        records, comparator, classifier = _corpus("skewed")
        run = sharded_resolve(
            list(records),
            BLOCKERS["standard"](),
            comparator,
            classifier,
            n_shards=3,
            backend="inline",
        )
        assert run.n_spanning_pairs >= 0
        assert run.n_spanning_pairs <= run.result.n_candidates


class TestPlanning:
    MODEL = ClusterCostModel(
        comparison_cost=1.0, task_overhead=2.0, startup=50.0
    )

    def test_tiny_workload_stays_single_shard(self):
        plan = plan_shards(10, model=self.MODEL)
        assert plan.n_shards == 1
        assert not plan.pinned

    def test_large_workload_goes_wide(self):
        plan = plan_shards(100_000, model=self.MODEL, max_shards=8)
        assert plan.n_shards > 1
        # The chosen candidate really is the argmin.
        assert plan.predicted_cost == min(c for __, c in plan.candidates)

    def test_pinned_plan_prices_the_choice(self):
        plan = plan_shards(100, model=self.MODEL, n_shards=5)
        assert plan.pinned and plan.n_shards == 5
        predicted = (
            self.MODEL.startup + self.MODEL.task_overhead * 5
            + self.MODEL.comparison_cost * 20
        )
        assert plan.predicted_cost == predicted

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards(10, max_shards=0)
        with pytest.raises(ConfigurationError):
            plan_shards(10, n_shards=0)


class TestCheckpointing:
    def _run(self, root, n_shards=3, corpus_name="uniform"):
        records, comparator, classifier = _corpus(corpus_name)
        return sharded_resolve(
            list(records),
            BLOCKERS["standard"](),
            comparator,
            classifier,
            n_shards=n_shards,
            backend="inline",
            checkpoint=root,
        )

    def test_second_run_reuses_every_shard(self, tmp_path):
        root = str(tmp_path / "store")
        first = self._run(root)
        assert first.n_resumed == 0
        second = self._run(root)
        assert second.n_resumed == 3
        assert second.replayed_chunks == 0
        assert_identical(_serial("uniform", "standard"), second)

    def test_changed_shard_count_raises(self, tmp_path):
        root = str(tmp_path / "store")
        self._run(root, n_shards=3)
        with pytest.raises(CheckpointMismatchError):
            self._run(root, n_shards=4)

    def test_changed_workload_reruns_affected_shards(self, tmp_path):
        root = str(tmp_path / "store")
        self._run(root, corpus_name="uniform")
        records, comparator, classifier = _corpus("uniform")
        # A new record joins an existing block: the owning shard's pair
        # signature changes, so that shard re-runs while untouched
        # shards resume from their artifacts.
        extra = list(records) + [
            Record("extra0", "s9", dict(records[0].attributes))
        ]
        serial = resolve(
            extra, BLOCKERS["standard"](),
            comparator, classifier,
        )
        run = sharded_resolve(
            extra,
            BLOCKERS["standard"](),
            comparator,
            classifier,
            n_shards=3,
            backend="inline",
            checkpoint=root,
        )
        assert run.n_resumed < 3
        assert_identical(serial, run)

    def test_manifest_records_layout_and_shard_stages(self, tmp_path):
        root = str(tmp_path / "store")
        self._run(root)
        stages = RunStore(root).completed_stages()
        assert "dist.layout" in stages
        for shard in range(3):
            assert f"dist.shard.{shard}" in stages


# --- chaos matrix ------------------------------------------------------
#
# The PR 3 acceptance matrix (fail / retry / skip), re-run with the
# fault targeted at a single shard. Workload: the resilience suite's
# 8-record corpus, all 28 pairs passed explicitly, chunk_size=7. With
# n_shards=2 the canonical pair list splits by owner shard and every
# shard cuts its own chunks, so ``crash(chunk=0, shard=s)`` poisons
# exactly one shard's first chunk.

CHAOS_CLASSIFIER = ThresholdClassifier(0.9)


def _chaos_workload():
    records = [
        Record(
            f"r{i}", f"s{i % 2}",
            {"name": f"item {i // 2}", "brand": "acme"},
        )
        for i in range(8)
    ]
    ids = [record.record_id for record in records]
    pairs = [
        (ids[i], ids[j])
        for i in range(len(ids))
        for j in range(i + 1, len(ids))
    ]
    return records, pairs


def _chaos_baseline(records, pairs):
    return _serial_engine().match_pairs(records, pairs, CHAOS_CLASSIFIER)


def _sharded(records, pairs, n_shards=2, resilience=None, tracer=None):
    by_id = {record.record_id: record for record in records}
    return sharded_match_pairs(
        by_id,
        pairs,
        _chaos_comparator(),
        CHAOS_CLASSIFIER,
        n_shards=n_shards,
        backend="inline",
        chunk_size=7,
        resilience=resilience,
        tracer=tracer,
    )


class TestChaosMatrix:
    def test_retry_on_one_shard_recovers_identically(
        self, resilience_config, fault_injector
    ):
        records, pairs = _chaos_workload()
        baseline = _chaos_baseline(records, pairs)
        injector = fault_injector(crash(chunk=0, shard=1, attempts=1))
        run = _sharded(
            records, pairs,
            resilience=resilience_config(injector=injector),
        )
        assert run.match_pairs == baseline.match_pairs
        assert run.scored_edges == baseline.scored_edges
        assert not run.dead_letters
        assert injector.fired() == 1

    def test_shard_targeted_fault_spares_other_shards(
        self, resilience_config, fault_injector
    ):
        records, pairs = _chaos_workload()
        # Every shard has a chunk 0; the rule is bound to shard 1 only,
        # so across a 3-shard run it fires exactly once.
        injector = fault_injector(crash(chunk=0, shard=1, attempts=1))
        _sharded(
            records, pairs, n_shards=3,
            resilience=resilience_config(injector=injector),
        )
        assert injector.fired() == 1

    def test_shard_targeted_fault_never_fires_unsharded(
        self, resilience_config, fault_injector
    ):
        records, pairs = _chaos_workload()
        baseline = _chaos_baseline(records, pairs)
        injector = fault_injector(crash(chunk=0, shard=1))
        run = _serial_engine(
            resilience_config(injector=injector)
        ).match_pairs(records, pairs, CHAOS_CLASSIFIER)
        assert injector.fired() == 0
        assert run.match_pairs == baseline.match_pairs

    def test_fail_raises_from_the_poisoned_shard(
        self, resilience_config, fault_injector
    ):
        records, pairs = _chaos_workload()
        injector = fault_injector(crash(chunk=0, shard=0))
        with pytest.raises(ChunkExecutionError):
            _sharded(
                records, pairs,
                resilience=resilience_config(
                    failure="fail", injector=injector
                ),
            )

    def test_skip_quarantines_poison_into_merged_dead_letters(
        self, resilience_config, fault_injector
    ):
        records, pairs = _chaos_workload()
        baseline = _chaos_baseline(records, pairs)
        # Target the first canonical pair of shard 0 — a true match, so
        # quarantining it visibly removes one match from the output.
        buckets, __ = _partition_pairs(_canonical_pairs(pairs), 2)
        poison = buckets[0][0]
        owner = shard_of_key(poison[0], 2)
        injector = fault_injector(crash(item=poison, shard=owner))
        run = _sharded(
            records, pairs,
            resilience=resilience_config(failure="skip", injector=injector),
        )
        assert run.quarantined_pairs == (poison,)
        assert run.match_pairs == baseline.match_pairs - {frozenset(poison)}
        [entry] = run.dead_letters
        assert entry.kind == "crash"
        assert entry.items == (poison,)

    def test_sharded_engine_run_counters(self):
        records, pairs = _chaos_workload()
        tracer = Tracer()
        run = _sharded(records, pairs, tracer=tracer)
        assert run.execution == "sharded"
        assert run.n_workers == 2
        assert run.n_pairs == len(pairs)
        counters = tracer.report().metrics["counters"]
        assert counters["dist.shard.pairs"] == len(pairs)
        gauges = tracer.report().metrics.get("gauges", {})
        assert gauges.get("dist.shard.count") == 2


class TestShardedVoteFusion:
    def _claims(self):
        claims = ClaimSet()
        for item in ("width", "height", "brand", "zoom", "mount"):
            for source in ("s0", "s1", "s2"):
                value = "a" if (source, item) != ("s2", item) else "b"
                claims.add(Claim(source, item, value))
        return claims

    def test_identical_to_serial_voting(self):
        claims = self._claims()
        serial = VotingFuser().fuse(claims)
        for n_shards in (1, 2, 4):
            fused = sharded_vote_fusion(claims, n_shards=n_shards)
            assert fused.chosen == serial.chosen
            assert fused.confidence == serial.confidence
            # Item order is the serial claim-set order, not shard order.
            assert list(fused.chosen) == list(serial.chosen)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            sharded_vote_fusion(self._claims(), n_shards=2, backend="nope")
        with pytest.raises(ConfigurationError):
            sharded_vote_fusion(self._claims(), n_shards=0)


class TestShardedPipeline:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(FourVKnobs(volume=0.02, variety=0.3, seed=7))

    def test_pipeline_identity_with_sharded_linkage_and_fusion(self, corpus):
        serial = BDIPipeline(PipelineConfig(fusion="vote")).run(corpus.dataset)
        sharded = BDIPipeline(
            PipelineConfig(
                fusion="vote",
                execution="sharded",
                n_shards=2,
                shard_backend="inline",
            )
        ).run(corpus.dataset)
        assert sharded.linkage.match_pairs == serial.linkage.match_pairs
        assert sharded.linkage.scored_edges == serial.linkage.scored_edges
        assert sharded.clusters == serial.clusters
        assert sharded.fusion.chosen == serial.fusion.chosen
        assert sharded.entity_table == serial.entity_table

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(execution="sharded", classifier="fellegi-sunter")
        with pytest.raises(ConfigurationError):
            PipelineConfig(execution="sharded", shard_backend="threads")
        with pytest.raises(ConfigurationError):
            PipelineConfig(execution="sharded", n_shards=0)
