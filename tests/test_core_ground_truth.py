"""Unit tests for GroundTruth."""

import pytest

from repro.core import GroundTruth, GroundTruthError


@pytest.fixture
def truth():
    return GroundTruth(
        {"r1": "e1", "r2": "e1", "r3": "e2", "r4": "e1"},
        true_values={("e1", "color"): "red"},
        attribute_to_mediated={("s1", "colour"): "color"},
    )


class TestEntityLookup:
    def test_entity_of(self, truth):
        assert truth.entity_of("r1") == "e1"

    def test_unknown_record_raises(self, truth):
        with pytest.raises(GroundTruthError):
            truth.entity_of("nope")

    def test_records_of(self, truth):
        assert truth.records_of("e1") == frozenset({"r1", "r2", "r4"})
        assert truth.records_of("missing") == frozenset()

    def test_are_match(self, truth):
        assert truth.are_match("r1", "r2")
        assert not truth.are_match("r1", "r3")


class TestPairsAndClusters:
    def test_matching_pairs_count(self, truth):
        # e1 has 3 records → C(3,2)=3 pairs; e2 has 1 record → 0 pairs.
        assert len(truth.matching_pairs()) == 3

    def test_matching_pairs_content(self, truth):
        assert frozenset(("r1", "r2")) in truth.matching_pairs()
        assert frozenset(("r1", "r3")) not in truth.matching_pairs()

    def test_true_clusters_partition_records(self, truth):
        clusters = truth.true_clusters()
        flattened = [r for c in clusters for r in c]
        assert sorted(flattened) == ["r1", "r2", "r3", "r4"]
        assert len(clusters) == 2


class TestValueAndSchemaTruth:
    def test_true_value(self, truth):
        assert truth.true_value("e1", "color") == "red"
        assert truth.true_value("e1", "size") is None

    def test_mediated_attribute(self, truth):
        assert truth.mediated_attribute("s1", "colour") == "color"
        assert truth.mediated_attribute("s1", "nope") is None


class TestRestriction:
    def test_restricted_to_subset(self, truth):
        sub = truth.restricted_to(["r1", "r3"])
        assert len(sub) == 2
        assert sub.records_of("e1") == frozenset({"r1"})

    def test_restricted_to_unknown_raises(self, truth):
        with pytest.raises(GroundTruthError):
            truth.restricted_to(["r1", "ghost"])

    def test_restriction_preserves_values(self, truth):
        sub = truth.restricted_to(["r1"])
        assert sub.true_value("e1", "color") == "red"
