"""Tests for the fault-tolerant execution layer.

Every timing assertion here is *exact*: the resilience config is wired
to a ManualClock with ``sleep=clock.advance`` (see conftest.py), so
backoff schedules, simulated hangs, and deadlines consume simulated
time only and the whole failure→retry→bisect→quarantine timeline is
deterministic. The acceptance matrix (TestAcceptanceMatrix) asserts
the contract from the issue: with a FaultInjector crashing one of N
chunks, ``"retry"`` reproduces the fault-free output byte for byte,
``"skip"`` quarantines only the poisoned pairs and completes, and
``"fail"`` raises identifying the failing chunk — under both serial
and process execution.
"""

import time

import pytest

from repro.core import ConfigurationError, Record
from repro.core.pipeline import BDIPipeline, PipelineConfig
from repro.dist import MapReduceJob, run_distributed_linkage
from repro.linkage import (
    Block,
    BlockCollection,
    FieldComparator,
    ParallelComparisonEngine,
    RecordComparator,
    ThresholdClassifier,
)
from repro.obs import Tracer
from repro.resilience import (
    ChunkExecutionError,
    DeadLetterEntry,
    DeadLetterLog,
    DeadlineExceededError,
    PoisonPairError,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.testing import (
    FaultInjector,
    FaultSpec,
    crash,
    garbage,
    hang,
)
from repro.text import exact_similarity

# --- shared workload ---------------------------------------------------
#
# 8 records, two per entity ("item 0".."item 3"), all 28 unordered
# pairs. With chunk_size=7 the engine cuts exactly 4 chunks of 7 under
# both serial (n_workers=1) and process (n_workers=2) execution, so a
# given fault pattern lands on identical chunks in either mode. The
# first pair, POISON = ("r0", "r1"), is a true match — quarantining it
# visibly removes one match from the output.

POISON = ("r0", "r1")


def _records():
    return [
        Record(f"r{i}", f"s{i % 2}", {"name": f"item {i // 2}", "brand": "acme"})
        for i in range(8)
    ]


def _pairs(records):
    ids = [record.record_id for record in records]
    return [
        (ids[i], ids[j])
        for i in range(len(ids))
        for j in range(i + 1, len(ids))
    ]


def _comparator():
    return RecordComparator(
        fields=[
            FieldComparator("name", exact_similarity, weight=2.0),
            FieldComparator("brand", exact_similarity, weight=1.0),
        ]
    )


CLASSIFIER = ThresholdClassifier(0.9)


def _engine(resilience=None, execution="serial", n_workers=1, chunk_size=7,
            tracer=None):
    return ParallelComparisonEngine(
        _comparator(),
        execution=execution,
        n_workers=n_workers,
        chunk_size=chunk_size,
        tracer=tracer,
        resilience=resilience,
    )


@pytest.fixture(scope="module")
def workload():
    records = _records()
    return records, _pairs(records)


@pytest.fixture(scope="module")
def baseline(workload):
    """The fault-free run every recovered run must reproduce."""
    records, pairs = workload
    return _engine().match_pairs(records, pairs, CLASSIFIER)


class TestRetryPolicy:
    def test_schedule_is_exact_exponential(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, multiplier=2.0)
        assert policy.schedule() == (1.0, 2.0, 4.0)

    def test_delay_capped_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, multiplier=10.0, max_delay=50.0
        )
        assert policy.delay(1) == 10.0
        assert policy.delay(2) == 50.0
        assert policy.delay(4) == 50.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        first = policy.delay(1, salt="chunk-3")
        assert first == policy.delay(1, salt="chunk-3")
        assert 1.0 <= first <= 1.5
        # Different salts de-synchronize lockstep retries.
        assert first != policy.delay(1, salt="chunk-4")

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestResilienceConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(failure="explode")
        with pytest.raises(ConfigurationError):
            ResilienceConfig(timeout=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(deadline=-1.0)

    def test_hosts_reject_non_config(self):
        with pytest.raises(ConfigurationError):
            _engine(resilience=42)
        with pytest.raises(ConfigurationError):
            MapReduceJob(lambda x: [], lambda k, v: [], resilience="skip")
        with pytest.raises(ConfigurationError):
            PipelineConfig(resilience="retry")


class TestDeadLetterLog:
    def _entry(self, chunk_id="0.1", items=(("a", "b"),), kind="crash"):
        return DeadLetterEntry(
            scope="engine.chunk",
            chunk_id=chunk_id,
            kind=kind,
            error_type="InjectedCrash",
            error="injected crash",
            attempts=3,
            items=tuple(items),
            quarantined_at=7.5,
        )

    def test_json_round_trip(self):
        log = DeadLetterLog()
        log.add(self._entry())
        log.add(self._entry(chunk_id="2.0.1", items=((1, "k"),), kind="timeout"))
        assert DeadLetterLog.from_json(log.to_json()) == log

    def test_query_helpers(self):
        log = DeadLetterLog()
        log.add(self._entry(items=(("a", "b"), ("c", "d"))))
        log.add(self._entry(chunk_id="3", kind="timeout", items=(("e", "f"),)))
        assert log.quarantined_items() == (("a", "b"), ("c", "d"), ("e", "f"))
        assert [e.chunk_id for e in log.by_kind("timeout")] == ["3"]
        assert len(log) == 2 and bool(log)

    def test_merge(self):
        left, right = DeadLetterLog(), DeadLetterLog()
        left.add(self._entry())
        right.add(self._entry(chunk_id="9"))
        left.merge(right)
        assert [e.chunk_id for e in left] == ["0.1", "9"]


class TestFaultInjector:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("oom")

    def test_chunk_and_attempt_targeting(self):
        spec = crash(chunk=1, attempts=(1, 2))
        assert spec.matches(1, [POISON], 1)
        assert spec.matches(1, [POISON], 2)
        assert not spec.matches(1, [POISON], 3)
        assert not spec.matches(0, [POISON], 1)

    def test_item_targeting_follows_bisection(self):
        spec = crash(item=POISON)
        assert spec.matches(0, [POISON, ("r2", "r3")], 1)
        assert spec.matches(0, [POISON], 5)
        assert not spec.matches(0, [("r2", "r3")], 1)

    def test_max_fires_and_history(self):
        injector = FaultInjector(crash(max_fires=2))
        for attempt in (1, 2):
            with pytest.raises(Exception):
                injector.on_attempt(0, [POISON], attempt)
        injector.on_attempt(0, [POISON], 3)  # budget spent: no raise
        assert injector.fired() == injector.fired("crash") == 2
        assert [event.attempt for event in injector.history] == [1, 2]

    def test_garbage_substitutes_payload(self):
        injector = FaultInjector(garbage(chunk=2, payload="junk"))
        assert injector.on_result(2, [POISON], 1, "real") == "junk"
        assert injector.on_result(1, [POISON], 1, "real") == "real"


class TestSerialRecovery:
    def test_transient_crash_recovers_identically(
        self, workload, baseline, resilience_config, fault_injector
    ):
        records, pairs = workload
        injector = fault_injector(crash(chunk=0, attempts=1))
        config = resilience_config(injector=injector)
        run = _engine(config).match_pairs(records, pairs, CLASSIFIER)
        assert run.match_pairs == baseline.match_pairs
        assert run.scored_edges == baseline.scored_edges
        assert not run.dead_letters
        assert run.completed_chunks == run.n_chunks == 4
        assert injector.fired() == 1

    def test_backoff_schedule_consumes_exact_time(
        self, workload, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = resilience_config(
            injector=fault_injector(crash(chunk=0, attempts=(1, 2))),
            max_attempts=3,
        )
        tracer = Tracer()
        run = _engine(config, tracer=tracer).match_pairs(
            records, pairs, CLASSIFIER
        )
        # Two failures on chunk 0: backoff 1.0 then 2.0, nothing else
        # moves the clock (tick=0, sleep=advance).
        assert config.clock.now() == 3.0
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["resilience.attempts"] == 4 + 2
        assert counters["resilience.retries"] == 2
        assert counters["resilience.failures"] == 2
        assert counters["resilience.failures_crash"] == 2
        assert counters["resilience.backoff_seconds"] == 3.0
        assert run.completed_chunks == 4

    def test_fail_policy_raises_on_first_failure(
        self, workload, resilience_config, fault_injector
    ):
        records, pairs = workload
        injector = fault_injector(crash(chunk=2))
        config = resilience_config(failure="fail", injector=injector)
        with pytest.raises(ChunkExecutionError) as exc:
            _engine(config).match_pairs(records, pairs, CLASSIFIER)
        assert exc.value.chunk_id == "2"
        assert exc.value.kind == "crash"
        assert exc.value.attempts == 1
        assert injector.fired() == 1  # fail fast: no retries at all
        assert config.clock.now() == 0.0  # and no backoff slept

    def test_retry_policy_raises_poison_pair(
        self, workload, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = resilience_config(
            failure="retry", injector=fault_injector(crash(item=POISON))
        )
        with pytest.raises(PoisonPairError) as exc:
            _engine(config).match_pairs(records, pairs, CLASSIFIER)
        assert exc.value.item == POISON
        assert exc.value.kind == "crash"

    def test_skip_quarantines_exactly_the_poison_pair(
        self, workload, baseline, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = resilience_config(
            failure="skip", injector=fault_injector(crash(item=POISON))
        )
        engine = _engine(config)
        run = engine.match_pairs(records, pairs, CLASSIFIER)
        assert run.quarantined_pairs == (POISON,)
        assert run.match_pairs == baseline.match_pairs - {frozenset(POISON)}
        assert run.completed_chunks == 3 and run.n_chunks == 4
        [entry] = run.dead_letters
        assert entry.kind == "crash"
        assert entry.attempts == 3
        assert entry.items == (POISON,)
        assert engine.dead_letters is run.dead_letters

    def test_bisection_isolates_poison_with_exact_counters(
        self, workload, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = resilience_config(
            failure="skip", injector=fault_injector(crash(item=POISON))
        )
        tracer = Tracer()
        run = _engine(config, tracer=tracer).match_pairs(
            records, pairs, CLASSIFIER
        )
        # Chunk 0 (7 pairs) exhausts, splits [0:3]/[3:7]; the poison
        # half splits again to [POISON] alone: bisection path "0.0.0".
        [entry] = run.dead_letters
        assert entry.chunk_id == "0.0.0"
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["resilience.bisections"] == 2
        # Failing levels: chunk "0", "0.0", "0.0.0" — 3 attempts each;
        # innocent halves [3 pairs→1] + chunks 1-3 succeed first try.
        assert counters["resilience.attempts"] == 9 + 2 + 3
        assert counters["resilience.failures"] == 9
        assert counters["resilience.backoff_seconds"] == 3 * (1.0 + 2.0)
        assert counters["resilience.quarantined_items"] == 1
        assert counters["resilience.quarantined_entries"] == 1
        assert config.clock.now() == 9.0

    def test_injected_hang_charged_timeout_then_recovers(
        self, workload, baseline, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = resilience_config(
            injector=fault_injector(hang(chunk=1, attempts=1)), timeout=4.0
        )
        tracer = Tracer()
        run = _engine(config, tracer=tracer).match_pairs(
            records, pairs, CLASSIFIER
        )
        assert run.match_pairs == baseline.match_pairs
        assert run.scored_edges == baseline.scored_edges
        # One hang burns its full 4s timeout plus the 1s first backoff.
        assert config.clock.now() == 5.0
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["resilience.failures_timeout"] == 1

    def test_persistent_hang_quarantined_as_timeout(
        self, workload, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = resilience_config(
            failure="skip",
            injector=fault_injector(hang(item=POISON)),
            timeout=2.0,
            max_attempts=2,
        )
        run = _engine(config).match_pairs(records, pairs, CLASSIFIER)
        assert run.quarantined_pairs == (POISON,)
        [entry] = run.dead_letters.by_kind("timeout")
        assert entry.items == (POISON,)

    def test_garbage_result_detected_and_retried(
        self, workload, baseline, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = resilience_config(
            injector=fault_injector(garbage(chunk=0, attempts=1, payload=None))
        )
        tracer = Tracer()
        run = _engine(config, tracer=tracer).match_pairs(
            records, pairs, CLASSIFIER
        )
        assert run.match_pairs == baseline.match_pairs
        assert run.scored_edges == baseline.scored_edges
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["resilience.failures_garbage"] == 1

    def test_compare_pairs_partial_vectors(
        self, workload, resilience_config, fault_injector
    ):
        records, pairs = workload
        full = _engine().compare_pairs(records, pairs)
        config = resilience_config(
            failure="skip", injector=fault_injector(crash(item=POISON))
        )
        engine = _engine(config)
        vectors = engine.compare_pairs(records, pairs)
        # Everything but the poison pair survives, in input order.
        assert vectors == [
            vector
            for vector in full
            if (vector.left_id, vector.right_id) != POISON
        ]
        assert engine.dead_letters.quarantined_items() == (POISON,)

    def test_clean_resilient_run_reports_zeroed_counters(
        self, workload, baseline, resilience_config
    ):
        records, pairs = workload
        tracer = Tracer()
        run = _engine(resilience_config(), tracer=tracer).match_pairs(
            records, pairs, CLASSIFIER
        )
        assert run.match_pairs == baseline.match_pairs
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["resilience.attempts"] == 4  # one per chunk
        for name in (
            "resilience.retries",
            "resilience.failures",
            "resilience.bisections",
            "resilience.quarantined_items",
            "resilience.quarantined_entries",
            "resilience.backoff_seconds",
        ):
            assert counters[name] == 0  # present and zeroed


class TestDeadline:
    def _config(self, resilience_config, fault_injector, failure):
        # Chunk 0 hangs twice (3s timeout each + 1s backoff = 7s),
        # blowing through the 5s run deadline before any other chunk
        # gets dispatched.
        return resilience_config(
            failure=failure,
            injector=fault_injector(hang(chunk=0)),
            timeout=3.0,
            deadline=5.0,
            max_attempts=2,
        )

    def test_skip_quarantines_remaining_work_as_deadline(
        self, workload, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = self._config(resilience_config, fault_injector, "skip")
        run = _engine(config).match_pairs(records, pairs, CLASSIFIER)
        assert run.match_pairs == set()
        assert len(run.quarantined_pairs) == len(pairs)
        assert run.completed_chunks == 0 and run.n_chunks == 4
        # Chunk 0 exhausted as a timeout; everything after it expired.
        kinds = {entry.kind for entry in run.dead_letters}
        assert kinds == {"deadline"}
        assert len(run.dead_letters.by_kind("deadline")) >= 3

    def test_retry_raises_deadline_exceeded(
        self, workload, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = self._config(resilience_config, fault_injector, "retry")
        with pytest.raises(DeadlineExceededError) as exc:
            _engine(config).match_pairs(records, pairs, CLASSIFIER)
        assert exc.value.deadline == 5.0
        assert exc.value.elapsed >= 5.0


class TestHeartbeat:
    def test_heartbeat_freezes_at_stalled_chunk(
        self, workload, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = resilience_config(
            failure="skip",
            injector=fault_injector(hang(chunk=3)),
            timeout=4.0,
            max_attempts=2,
        )
        tracer = Tracer()
        # chunk_size=9 → chunks of 9/9/9/1: the stalled chunk 3 holds
        # exactly one pair, so no bisection muddies the timeline.
        run = _engine(config, chunk_size=9, tracer=tracer).match_pairs(
            records, pairs, CLASSIFIER
        )
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["resilience.heartbeat_chunk"] == 3
        assert gauges["resilience.heartbeat_attempt"] == 2
        # Last attempt dispatched at t=5: first hang 4s + backoff 1s.
        assert gauges["resilience.heartbeat_time"] == 5.0
        assert gauges["resilience.chunks_done"] == 4
        [entry] = run.dead_letters
        assert entry.quarantined_at == 9.0


# --- the acceptance matrix from the issue ------------------------------


@pytest.mark.parametrize(
    "execution,n_workers",
    [
        ("serial", 1),
        pytest.param("process", 2, marks=pytest.mark.slow),
    ],
)
class TestAcceptanceMatrix:
    """Crash 1 of N chunks; assert the three policies' contracts."""

    def test_retry_reproduces_fault_free_output(
        self, execution, n_workers, workload, baseline, resilience_config,
        fault_injector,
    ):
        records, pairs = workload
        config = resilience_config(
            failure="retry", injector=fault_injector(crash(chunk=1, attempts=1))
        )
        run = _engine(config, execution=execution, n_workers=n_workers).match_pairs(
            records, pairs, CLASSIFIER
        )
        assert run.match_pairs == baseline.match_pairs
        assert run.scored_edges == baseline.scored_edges
        assert run.n_pairs == baseline.n_pairs
        assert not run.dead_letters

    def test_skip_quarantines_only_poisoned_pairs(
        self, execution, n_workers, workload, baseline, resilience_config,
        fault_injector,
    ):
        records, pairs = workload
        config = resilience_config(
            failure="skip", injector=fault_injector(crash(item=POISON))
        )
        run = _engine(config, execution=execution, n_workers=n_workers).match_pairs(
            records, pairs, CLASSIFIER
        )
        assert run.quarantined_pairs == (POISON,)
        assert run.match_pairs == baseline.match_pairs - {frozenset(POISON)}
        assert run.completed_chunks == run.n_chunks - 1

    def test_fail_raises_identifying_the_chunk(
        self, execution, n_workers, workload, resilience_config, fault_injector
    ):
        records, pairs = workload
        config = resilience_config(
            failure="fail", injector=fault_injector(crash(chunk=1))
        )
        with pytest.raises(ChunkExecutionError) as exc:
            _engine(config, execution=execution, n_workers=n_workers).match_pairs(
                records, pairs, CLASSIFIER
            )
        assert exc.value.chunk_id == "1"


# --- real process faults (no injector) ---------------------------------


def _hanging_similarity(left: str, right: str) -> float:
    """A similarity that stalls on the sentinel value — a real hang
    inside a real worker process, not a simulated one."""
    if "hang" in (left, right):
        time.sleep(3.0)
    return 1.0 if left == right else 0.0


@pytest.mark.slow
class TestProcessRealFaults:
    def test_real_worker_timeout_quarantined_and_pool_recycled(self):
        records = [
            Record("p0", "s0", {"name": "hang"}),
            Record("p1", "s1", {"name": "alpha"}),
            Record("p2", "s0", {"name": "alpha"}),
        ]
        pairs = [("p0", "p1"), ("p1", "p2"), ("p0", "p2")]
        comparator = RecordComparator(
            fields=[FieldComparator("name", _hanging_similarity)]
        )
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1),
            failure="skip",
            timeout=0.75,
        )
        engine = ParallelComparisonEngine(
            comparator,
            execution="process",
            n_workers=2,
            chunk_size=2,
            resilience=config,
        )
        run = engine.match_pairs(records, pairs, ThresholdClassifier(0.9))
        # Both pairs touching the hanging record time out for real and
        # are quarantined; the innocent pair survives the recycled pool.
        assert run.match_pairs == {frozenset(("p1", "p2"))}
        assert set(run.quarantined_pairs) == {("p0", "p1"), ("p0", "p2")}
        assert {entry.kind for entry in run.dead_letters} == {"timeout"}

    def test_legacy_process_run_reports_chunk_heartbeat(self, workload):
        records, pairs = workload
        tracer = Tracer()
        engine = _engine(
            execution="process", n_workers=2, tracer=tracer
        )
        engine.match_pairs(records, pairs, CLASSIFIER)
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["engine.chunks_done"] == 4


# --- distributed driver and MapReduce ----------------------------------


class TestDistributedResilience:
    def _inputs(self):
        records = _records()
        ids = tuple(record.record_id for record in records)
        blocks = BlockCollection([Block("all", ids)])
        return records, blocks

    def test_retry_matches_fault_free_run(
        self, resilience_config, fault_injector
    ):
        records, blocks = self._inputs()
        kwargs = dict(
            strategy="naive", n_reducers=2, execution="serial", n_workers=1
        )
        clean = run_distributed_linkage(
            records, blocks, _comparator(), CLASSIFIER, **kwargs
        )
        config = resilience_config(injector=fault_injector(crash(attempts=1)))
        run = run_distributed_linkage(
            records, blocks, _comparator(), CLASSIFIER,
            resilience=config, **kwargs,
        )
        assert run.match_pairs == clean.match_pairs
        assert not run.dead_letters
        assert run.completed_chunks == run.n_chunks == 1

    def test_skip_degrades_to_partial_results(
        self, resilience_config, fault_injector
    ):
        records, blocks = self._inputs()
        kwargs = dict(
            strategy="naive", n_reducers=2, execution="serial", n_workers=1
        )
        clean = run_distributed_linkage(
            records, blocks, _comparator(), CLASSIFIER, **kwargs
        )
        config = resilience_config(
            failure="skip", injector=fault_injector(crash(item=POISON))
        )
        run = run_distributed_linkage(
            records, blocks, _comparator(), CLASSIFIER,
            resilience=config, **kwargs,
        )
        assert run.quarantined_pairs == (POISON,)
        assert run.match_pairs == clean.match_pairs - {frozenset(POISON)}
        assert len(run.dead_letters) == 1


def _mod_map(item):
    return [(item % 3, item)]


def _sum_reduce(key, values):
    return [(key, sum(values))]


class TestMapReduceResilience:
    INPUTS = list(range(12))

    def _baseline(self):
        return MapReduceJob(_mod_map, _sum_reduce, n_reducers=2).run(
            self.INPUTS
        )

    def test_retry_reproduces_fault_free_outputs(
        self, resilience_config, fault_injector
    ):
        clean = self._baseline()
        job = MapReduceJob(
            _mod_map, _sum_reduce, n_reducers=2,
            resilience=resilience_config(
                injector=fault_injector(crash(chunk=0, attempts=1))
            ),
        )
        result = job.run(self.INPUTS)
        assert result.outputs == clean.outputs
        assert result.n_quarantined_keys == 0
        assert result.reducer_metrics == clean.reducer_metrics

    def test_skip_quarantines_poison_key_only(self, resilience_config):
        clean = self._baseline()

        def bad_reduce(key, values):
            if key == 2:
                raise ValueError("reducer OOM")
            return _sum_reduce(key, values)

        job = MapReduceJob(
            _mod_map, bad_reduce, n_reducers=2,
            resilience=resilience_config(failure="skip"),
        )
        result = job.run(self.INPUTS)
        assert result.n_quarantined_keys == 1
        [entry] = result.dead_letters
        assert entry.scope == "mapreduce.key"
        assert entry.error_type == "ValueError"
        assert entry.items[0][1] == 2  # the (reducer, key) unit
        assert result.outputs == [
            output for output in clean.outputs if output[0] != 2
        ]
        # Cost is still charged for the attempted key.
        assert result.reducer_metrics == clean.reducer_metrics

    def test_fail_raises_chunk_execution_error(
        self, resilience_config, fault_injector
    ):
        job = MapReduceJob(
            _mod_map, _sum_reduce, n_reducers=2,
            resilience=resilience_config(
                failure="fail", injector=fault_injector(crash())
            ),
        )
        with pytest.raises(ChunkExecutionError):
            job.run(self.INPUTS)


class TestPipelineResilience:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro import FourVKnobs, build_corpus

        return build_corpus(FourVKnobs(volume=0.0, seed=3)).dataset

    def test_pipeline_survives_transient_faults(
        self, dataset, resilience_config, fault_injector
    ):
        clean = BDIPipeline(PipelineConfig()).run(dataset)
        injector = fault_injector(crash(chunk=0, attempts=1, max_fires=2))
        config = PipelineConfig(
            resilience=resilience_config(injector=injector)
        )
        result = BDIPipeline(config).run(dataset)
        assert injector.fired() >= 1
        assert result.dead_letters is not None
        assert not result.dead_letters
        assert result.clusters == clean.clusters
        assert result.entity_table == clean.entity_table

    def test_run_report_carries_resilience_counters(
        self, dataset, resilience_config, fault_injector
    ):
        config = PipelineConfig(
            resilience=resilience_config(
                failure="skip",
                injector=fault_injector(crash(chunk=0, attempts=1, max_fires=1)),
            )
        )
        tracer = Tracer()
        result = BDIPipeline(config).run(dataset, tracer=tracer)
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["resilience.attempts"] > 0
        assert counters["resilience.retries"] >= 1
        assert counters["resilience.failures_crash"] == 1
        assert result.dead_letters is not None
