"""Sacrificial subprocess for the streaming kill/restart test.

The continuous-ingestion recovery contract: a streaming consumer
killed mid-stream (``kill -9``; here ``os._exit(137)``) and restarted
against the *same deterministic stream* resumes from its last window
checkpoint and converges byte-identically to a consumer that never
died — same entities, same accuracy estimates, same monitor event log.

Invocations
-----------

``streaming_driver.py ROOT --windows N [--kill-after-record J]``
    Resume from any checkpoint under ROOT (a fresh store resumes to
    nothing), then consume the seeded drift stream until N windows
    have closed. With ``--kill-after-record J`` the process calls
    ``os._exit(137)`` as soon as J records have been consumed
    (counting replayed ones) — after whatever checkpoints were already
    written, mid-open-window — and prints nothing. Otherwise prints
    ``{"snapshot", "estimates", "events"}`` as sorted JSON, so the
    test (and the CI chaos smoke) can diff a murdered-and-restarted
    consumer against an unkilled one.
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.linkage import (  # noqa: E402
    ThresholdClassifier,
    default_product_comparator,
)
from repro.linkage.blocking import first_token_key  # noqa: E402
from repro.recovery import RunStore  # noqa: E402
from repro.streaming import (  # noqa: E402
    CONFLICT_ATTRIBUTES,
    DriftStreamConfig,
    DriftWorld,
    StreamingResolver,
    WindowConfig,
)

#: The scenario under test: a mid-stream accuracy flip, so the
#: checkpoint carries non-trivial tracker and monitor state.
STREAM_CONFIG = DriftStreamConfig(
    n_entities=10,
    n_sources=5,
    flip_at=12.0,
    flip_source=0,
    flip_to=0.2,
    seed=11,
)


def build_resolver(root) -> StreamingResolver:
    world = DriftWorld(STREAM_CONFIG)
    return StreamingResolver(
        key_functions=[first_token_key("name")],
        comparator=default_product_comparator(),
        classifier=ThresholdClassifier(0.72),
        source_accuracies=world.accuracies_at(0.0),
        window=WindowConfig(size=2.0),
        decay=0.7,
        tracked_attributes=CONFLICT_ATTRIBUTES,
        checkpoint_store=RunStore(root, durable=False),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("root")
    parser.add_argument("--windows", type=int, default=10)
    parser.add_argument("--kill-after-record", type=int, default=None)
    args = parser.parse_args()

    resolver = build_resolver(args.root)
    stream = iter(DriftWorld(STREAM_CONFIG).stream())
    resolver.resume(stream)

    def doomed(records):
        for record in records:
            yield record
            if (
                args.kill_after_record is not None
                and resolver.consumed >= args.kill_after_record
            ):
                os._exit(137)

    for _ in resolver.process(doomed(stream)):
        if resolver.windows_closed >= args.windows:
            break

    print(
        json.dumps(
            {
                "snapshot": resolver.snapshot(),
                "estimates": resolver.estimates(),
                "events": [event.to_json() for event in resolver.events],
            },
            sort_keys=True,
        )
    )


if __name__ == "__main__":
    main()
