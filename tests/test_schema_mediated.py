"""Tests for correspondences, clustering, and mediated schemas."""

import pytest

from repro.core import ConfigurationError
from repro.schema import (
    Correspondence,
    MediatedAttribute,
    MediatedSchema,
    build_mediated_schema,
    cluster_attributes,
    cluster_attributes_robust,
    select_correspondences,
)
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)
from repro.quality import attribute_cluster_quality


@pytest.fixture(scope="module")
def dataset():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=50, seed=2)
    )
    return generate_dataset(
        world,
        CorpusConfig(n_sources=10, dialect_noise=0.6, seed=7),
    )


class TestSelectCorrespondences:
    def c(self, left, right, score):
        return Correspondence(("s1", left), ("s2", right), score)

    def test_threshold_filters(self):
        scored = [self.c("a", "x", 0.9), self.c("b", "y", 0.3)]
        kept = select_correspondences(scored, threshold=0.5)
        assert len(kept) == 1

    def test_one_to_one_keeps_best(self):
        scored = [
            self.c("a", "x", 0.9),
            self.c("a", "y", 0.8),  # a already matched into s2
            self.c("b", "y", 0.7),
        ]
        kept = select_correspondences(scored, threshold=0.5, one_to_one=True)
        pairs = {(c.left[1], c.right[1]) for c in kept}
        assert pairs == {("a", "x"), ("b", "y")}

    def test_many_to_many_allowed_when_disabled(self):
        scored = [self.c("a", "x", 0.9), self.c("a", "y", 0.8)]
        kept = select_correspondences(
            scored, threshold=0.5, one_to_one=False
        )
        assert len(kept) == 2

    def test_one_to_one_allows_different_source_pairs(self):
        scored = [
            Correspondence(("s1", "a"), ("s2", "x"), 0.9),
            Correspondence(("s1", "a"), ("s3", "z"), 0.8),
        ]
        kept = select_correspondences(scored, threshold=0.5)
        assert len(kept) == 2

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            select_correspondences([], threshold=1.5)


class TestClustering:
    def test_transitive_closure(self):
        edges = [
            Correspondence(("s1", "a"), ("s2", "b"), 0.9),
            Correspondence(("s2", "b"), ("s3", "c"), 0.9),
        ]
        clusters = cluster_attributes(edges)
        assert len(clusters) == 1
        assert len(clusters[0]) == 3

    def test_singletons_included(self):
        clusters = cluster_attributes([], all_attributes=[("s1", "a")])
        assert clusters == [[("s1", "a")]]

    def test_robust_splits_bridge(self):
        # Two tight cliques joined by one weak bridge edge.
        left = [("s1", "a"), ("s2", "a"), ("s3", "a")]
        right = [("s4", "z"), ("s5", "z"), ("s6", "z")]
        edges = []
        for i in range(3):
            for j in range(i + 1, 3):
                edges.append(Correspondence(left[i], left[j], 0.9))
                edges.append(Correspondence(right[i], right[j], 0.9))
        edges.append(Correspondence(left[0], right[0], 0.55))
        clusters = cluster_attributes_robust(edges, min_cohesion=0.5)
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [3, 3]


class TestMediatedSchema:
    def test_duplicate_assignment_rejected(self):
        a = MediatedAttribute("x", (("s1", "a"),))
        b = MediatedAttribute("y", (("s1", "a"),))
        with pytest.raises(ConfigurationError):
            MediatedSchema([a, b])

    def test_build_produces_high_precision_clusters(self, dataset):
        schema = build_mediated_schema(dataset, threshold=0.65)
        quality = attribute_cluster_quality(schema.clusters(), dataset)
        assert quality.precision > 0.9
        assert quality.recall > 0.3

    def test_every_attribute_assigned_exactly_once(self, dataset):
        schema = build_mediated_schema(dataset)
        seen = set()
        for mediated in schema.attributes:
            for member in mediated.members:
                assert member not in seen
                seen.add(member)
        from repro.schema import profile_attributes

        assert seen == set(profile_attributes(dataset))

    def test_translate_uses_canonical_names(self, dataset):
        schema = build_mediated_schema(dataset)
        record = next(iter(dataset.records()))
        translated = schema.translate(record)
        assert len(translated) >= 1
        assert all(isinstance(k, str) for k in translated)

    def test_find_by_keyword(self, dataset):
        schema = build_mediated_schema(dataset)
        found = schema.find("weight")
        assert found, "expected a mediated attribute mentioning weight"

    def test_deterministic(self, dataset):
        s1 = build_mediated_schema(dataset)
        s2 = build_mediated_schema(dataset)
        assert s1.clusters() == s2.clusters()
