"""The serving layer: durable entity store, live query/ingest API,
generation-keyed caching, atomic refresh, and crash recovery.

Three contracts anchor this file:

1. **Durability** — an acknowledged ingest survives process death; a
   restarted service reconstructs the exact pre-crash projection
   (byte-identical store artifacts for completed generations). The
   real-kill version lives in ``TestServeKillRestart`` (``slow``,
   subprocess via ``tests/serve_driver.py``).
2. **Equivalence** — the incremental ingest path and the batch refresh
   path resolve to the same entities, so a refresh is invisible to
   correct readers.
3. **Atomicity** — concurrent readers always observe one consistent
   generation across a refresh swap.
"""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.core import Record
from repro.core.errors import ConfigurationError
from repro.linkage import (
    StandardBlocker,
    ThresholdClassifier,
    default_product_comparator,
)
from repro.linkage.blocking import first_token_key
from repro.linkage.blocking.base import Blocker
from repro.obs import ManualClock, Tracer
from repro.resilience.testing import FaultInjector, crash, kill
from repro.resilience.testing import KILL_EXIT_CODE
from repro.supervision import OverloadPolicy
from repro.serve import (
    MISS,
    EntityStore,
    GenerationCache,
    ResolutionService,
    TrafficConfig,
    run_traffic,
)
from tests.serve_driver import build_records

DRIVER = os.path.join(os.path.dirname(__file__), "serve_driver.py")


def make_service(root, tracer=None, resilience=None, accuracies=None):
    return ResolutionService(
        root,
        key_functions=[first_token_key("name")],
        comparator=default_product_comparator(),
        classifier=ThresholdClassifier(0.72),
        refresh_blocker=StandardBlocker(first_token_key("name")),
        source_accuracies=accuracies,
        resilience=resilience,
        tracer=tracer,
        durable=False,
    )


def camera(record_id, source, name, **extra):
    return Record(record_id, source, {"name": name, **extra})


class TestEntityStore:
    def test_append_and_replay_round_trip(self, tmp_path):
        store = EntityStore(tmp_path, durable=False)
        records = build_records(5)
        for index, record in enumerate(records):
            assert store.append_record(record) == index
        assert store.log_length == 5
        replayed = list(store.records_from(0))
        assert replayed == records
        assert list(store.records_from(3)) == records[3:]
        assert list(store.records_from(1, 3)) == records[1:3]

    def test_reopen_counts_existing_log(self, tmp_path):
        store = EntityStore(tmp_path, durable=False)
        for record in build_records(4):
            store.append_record(record)
        again = EntityStore(tmp_path, durable=False)
        assert again.log_length == 4

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        store = EntityStore(tmp_path, durable=False)
        for record in build_records(3):
            store.append_record(record)
        with store.log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"record_id": "torn", "sou')  # no newline
        reopened = EntityStore(tmp_path, durable=False)
        assert reopened.log_length == 3
        # The repaired log is fully indexable again.
        indexed = reopened.open_record_store()
        assert len(indexed) == 3

    def test_indexed_record_store_over_log(self, tmp_path):
        store = EntityStore(tmp_path, durable=False)
        records = build_records(6)
        for record in records:
            store.append_record(record)
        indexed = store.open_record_store()
        assert indexed[records[4].record_id] == records[4]

    def test_generation_publish_cycle(self, tmp_path):
        store = EntityStore(tmp_path, durable=False)
        assert store.current_generation() is None
        entities = {"ent:a": {"members": ["a"], "attributes": {}}}
        store.save_generation(1, 3, entities)
        assert store.current_generation() is None  # saved != published
        store.publish_generation(1)
        assert store.current_generation() == 1
        assert store.load_generation(1)["entities"] == entities
        assert store.load_generation(1)["watermark"] == 3

    def test_publish_unknown_generation_refused(self, tmp_path):
        store = EntityStore(tmp_path, durable=False)
        with pytest.raises(ConfigurationError):
            store.publish_generation(7)

    def test_generation_bytes_canonical(self, tmp_path):
        left = EntityStore(tmp_path / "a", durable=False)
        right = EntityStore(tmp_path / "b", durable=False)
        entities = {"ent:a": {"members": ["a", "b"], "attributes": {"x": "1"}}}
        left.save_generation(2, 5, entities)
        right.save_generation(2, 5, entities)
        assert left.generation_bytes(2) == right.generation_bytes(2)
        assert left.generation_bytes(99) is None


class TestGenerationCache:
    def test_miss_is_distinguishable_from_cached_none(self):
        cache = GenerationCache(capacity=4)
        assert cache.get((0, 0), "k") is MISS
        cache.put((0, 0), "k", None)
        assert cache.get((0, 0), "k") is None

    def test_version_change_invalidates_by_construction(self):
        cache = GenerationCache(capacity=4)
        cache.put((0, 0), "k", "old")
        assert cache.get((0, 1), "k") is MISS  # ingest bumped mutations
        assert cache.get((1, 0), "k") is MISS  # refresh swapped generation
        assert cache.get((0, 0), "k") == "old"

    def test_lru_eviction(self):
        cache = GenerationCache(capacity=2)
        cache.put((0, 0), "a", 1)
        cache.put((0, 0), "b", 2)
        cache.get((0, 0), "a")  # refresh a; b is now oldest
        cache.put((0, 0), "c", 3)
        assert cache.get((0, 0), "b") is MISS
        assert cache.get((0, 0), "a") == 1
        assert len(cache) == 2

    def test_counters(self):
        tracer = Tracer()
        cache = GenerationCache(capacity=2, tracer=tracer)
        cache.get((0, 0), "k")
        cache.put((0, 0), "k", 1)
        cache.get((0, 0), "k")
        counters = tracer.metrics
        assert counters.counter("serve.cache_hits").value == 1
        assert counters.counter("serve.cache_misses").value == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            GenerationCache(capacity=0)


class TestResolutionService:
    def test_ingest_match_get_entities(self, tmp_path):
        service = make_service(tmp_path)
        a = service.ingest(camera("s1/1", "s1", "canon a560", brand="canon"))
        b = service.ingest(camera("s2/1", "s2", "canon a560", brand="cannon"))
        c = service.ingest(camera("s1/2", "s1", "nikon p50", brand="nikon"))
        assert a.entity_id == b.entity_id == "ent:s1/1"
        assert b.matched_entities == ("ent:s1/1",)
        assert c.entity_id == "ent:s1/2"

        assert service.match(camera("q/1", "q", "canon a560")) == "ent:s1/1"
        assert service.match(camera("q/2", "q", "panasonic lumix")) is None

        entity = service.get("ent:s1/1")
        assert entity.members == ("s1/1", "s2/1")
        assert entity.attributes["name"] == "canon a560"
        # s1 (accuracy default) claimed "canon", s2 "cannon" — whichever
        # wins, provenance points at the records that claimed it.
        winner = entity.attributes["brand"]
        assert set(entity.provenance["brand"]) <= {"s1/1", "s2/1"}
        assert all(
            service.store.open_record_store()[rid].attributes["brand"]
            == winner
            for rid in entity.provenance["brand"]
        )
        assert 0.0 <= entity.confidence["brand"] <= 1.0

        listed = service.entities()
        assert [e.entity_id for e in listed] == ["ent:s1/1", "ent:s1/2"]
        assert service.get("ent:nope") is None

    def test_fusion_prefers_accurate_source(self, tmp_path):
        service = make_service(
            tmp_path, accuracies={"good": 0.95, "bad": 0.55}
        )
        service.ingest(camera("bad/1", "bad", "canon a560", zoom="9x"))
        service.ingest(camera("good/1", "good", "canon a560", zoom="4x"))
        entity = service.get("ent:bad/1")
        assert entity.attributes["zoom"] == "4x"
        assert entity.provenance["zoom"] == ("good/1",)

    def test_duplicate_ingest_rejected(self, tmp_path):
        service = make_service(tmp_path)
        service.ingest(camera("a", "s", "canon a560"))
        with pytest.raises(ConfigurationError):
            service.ingest(camera("a", "s", "canon a560"))

    def test_restart_replays_unpublished_log(self, tmp_path):
        service = make_service(tmp_path)
        for record in build_records(9):
            service.ingest(record)
        before = service.snapshot()
        reopened = make_service(tmp_path)
        assert reopened.snapshot() == before

    def test_restart_from_published_generation(self, tmp_path):
        tracer = Tracer()
        service = make_service(tmp_path)
        records = build_records(12)
        for record in records[:8]:
            service.ingest(record)
        service.refresh()
        for record in records[8:]:
            service.ingest(record)
        before = service.snapshot()
        reopened = ResolutionService(
            tmp_path,
            key_functions=[first_token_key("name")],
            comparator=default_product_comparator(),
            classifier=ThresholdClassifier(0.72),
            tracer=tracer,
            durable=False,
        )
        assert reopened.snapshot() == before
        assert reopened.generation == 1
        # Only the post-watermark tail was replayed, not the whole log.
        assert tracer.metrics.counter("serve.replayed_records").value == 4

    def test_checkpoint_shrinks_replay(self, tmp_path):
        service = make_service(tmp_path)
        for record in build_records(6):
            service.ingest(record)
        service.checkpoint()
        tracer = Tracer()
        reopened = make_service(tmp_path, tracer=tracer)
        assert reopened.snapshot() == service.snapshot()
        assert tracer.metrics.counter("serve.replayed_records").value == 0

    def test_refresh_is_equivalent_and_durable(self, tmp_path):
        tracer = Tracer()
        service = make_service(tmp_path, tracer=tracer)
        for record in build_records(12):
            service.ingest(record)
        before = service.snapshot()
        number = service.refresh()
        assert number == 1
        after = service.snapshot()
        assert after["generation"] == 1
        # Batch re-resolution decides the same entities as the
        # incremental path did.
        assert after["entities"] == before["entities"]
        assert service.store.current_generation() == 1
        assert tracer.metrics.counter("serve.generation_swaps").value == 1

    def test_refresh_requires_blocker(self, tmp_path):
        service = ResolutionService(
            tmp_path,
            key_functions=[first_token_key("name")],
            comparator=default_product_comparator(),
            classifier=ThresholdClassifier(0.72),
            durable=False,
        )
        with pytest.raises(ConfigurationError):
            service.refresh()

    def test_cache_hits_and_ingest_invalidation(self, tmp_path):
        tracer = Tracer()
        service = make_service(tmp_path, tracer=tracer)
        service.ingest(camera("a", "s", "canon a560"))
        counters = tracer.metrics
        service.get("ent:a")
        service.get("ent:a")
        assert counters.counter("serve.cache_hits").value == 1
        # An ingest bumps the generation stamp: previously cached reads
        # are unreachable, the next read recomputes.
        service.ingest(camera("b", "s2", "canon a560"))
        hits = counters.counter("serve.cache_hits").value
        service.get("ent:a")
        assert counters.counter("serve.cache_hits").value == hits

    def test_match_caches_under_generation_stamp(self, tmp_path):
        tracer = Tracer()
        service = make_service(tmp_path, tracer=tracer)
        service.ingest(camera("a", "s", "canon a560"))
        probe = camera("q", "q", "canon a560")
        assert service.match(probe) == "ent:a"
        assert service.match(probe) == "ent:a"
        assert tracer.metrics.counter("serve.cache_hits").value == 1
        assert tracer.metrics.counter("serve.queries").value == 2

    def test_skip_policy_quarantines_and_refresh_reconciles(
        self, tmp_path, resilience_config
    ):
        tracer = Tracer()
        # The record at log position 1 fails linking on every attempt.
        config = resilience_config(
            failure="skip", max_attempts=2, injector=FaultInjector(crash(chunk=1))
        )
        service = make_service(tmp_path, tracer=tracer, resilience=config)
        service.ingest(camera("a", "s1", "canon a560"))
        result = service.ingest(camera("b", "s2", "canon a560"))
        assert result.quarantined
        assert result.entity_id is None
        assert result.position == 1
        [entry] = service.dead_letters.entries
        assert entry.scope == "serve.ingest"
        assert entry.items == ("b",)
        assert tracer.metrics.counter("serve.quarantined_ingests").value == 1
        # Quarantined-but-durable: invisible to reads now...
        assert service.get("ent:a").members == ("a",)
        assert service.store.log_length == 2
        # ...and reconciled by the next batch refresh, which re-reads
        # the full log.
        service.refresh()
        assert service.get("ent:a").members == ("a", "b")

    def test_retry_policy_recovers_transient_ingest_faults(
        self, tmp_path, resilience_config
    ):
        config = resilience_config(
            failure="retry",
            max_attempts=3,
            injector=FaultInjector(crash(chunk=1, attempts=1)),
        )
        service = make_service(tmp_path, resilience=config)
        service.ingest(camera("a", "s1", "canon a560"))
        result = service.ingest(camera("b", "s2", "canon a560"))
        assert not result.quarantined
        assert result.entity_id == "ent:a"
        # The retry consumed backoff on the injected clock.
        assert config.clock.now() > 0.0

    def test_concurrent_readers_see_consistent_generations(self, tmp_path):
        tracer = Tracer()
        service = make_service(tmp_path, tracer=tracer)
        records = build_records(30)
        for record in records[:10]:
            service.ingest(record)

        errors: list[str] = []
        seen_generations: list[int] = []
        stop = threading.Event()

        def reader():
            last_generation = -1
            while not stop.is_set():
                snapshot = service.snapshot()
                generation = snapshot["generation"]
                if generation < last_generation:
                    errors.append(
                        f"generation went backwards: {last_generation} "
                        f"-> {generation}"
                    )
                last_generation = generation
                seen_generations.append(generation)
                members_seen: set[str] = set()
                for entity_id, entity in snapshot["entities"].items():
                    if min(entity["members"]) != entity_id[4:]:
                        errors.append(
                            f"{entity_id} inconsistent with members "
                            f"{entity['members']}"
                        )
                    overlap = members_seen.intersection(entity["members"])
                    if overlap:
                        errors.append(f"member in two entities: {overlap}")
                    members_seen.update(entity["members"])

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            cursor = 10
            for _ in range(3):
                refresh = service.refresh_async()
                while cursor < len(records) and refresh.is_alive():
                    service.ingest(records[cursor])
                    cursor += 1
                refresh.join(timeout=60)
                assert not refresh.is_alive()
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not errors, errors[:3]
        assert tracer.metrics.counter("serve.generation_swaps").value == 3
        assert max(seen_generations, default=0) <= 3

    def test_fingerprint_guards_store_identity(self, tmp_path):
        from repro.recovery import CheckpointMismatchError

        ResolutionService(
            tmp_path,
            key_functions=[first_token_key("name")],
            comparator=default_product_comparator(),
            classifier=ThresholdClassifier(0.72),
            fingerprint="a" * 64,
            durable=False,
        )
        with pytest.raises(CheckpointMismatchError):
            ResolutionService(
                tmp_path,
                key_functions=[first_token_key("name")],
                comparator=default_product_comparator(),
                classifier=ThresholdClassifier(0.72),
                fingerprint="b" * 64,
                durable=False,
            )


class TestServeTraffic:
    def test_deterministic_workload(self, tmp_path):
        pool = build_records(20)
        first = run_traffic(
            make_service(tmp_path / "a"), pool, TrafficConfig(n_ops=80, seed=5)
        )
        second = run_traffic(
            make_service(tmp_path / "b"), pool, TrafficConfig(n_ops=80, seed=5)
        )
        assert first.ingested == second.ingested
        assert first.matches_found == second.matches_found
        assert {
            kind: len(samples) for kind, samples in first.latencies.items()
        } == {
            kind: len(samples) for kind, samples in second.latencies.items()
        }
        summary = first.summary()
        assert summary["ops"] == first.n_ops
        assert summary["query_p99_ms"] >= summary["query_p50_ms"] >= 0.0

    def test_fractions_validated(self):
        with pytest.raises(ConfigurationError):
            TrafficConfig(n_ops=0)
        with pytest.raises(ConfigurationError):
            TrafficConfig(ingest_fraction=0.8, get_fraction=0.5)


def _run_driver(*args, expect=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(
            None,
            [
                os.path.join(os.path.dirname(DRIVER), "..", "src"),
                env.get("PYTHONPATH", ""),
            ],
        )
    )
    process = subprocess.run(
        [sys.executable, DRIVER, *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert process.returncode == expect, (
        f"driver {args} exited {process.returncode}, expected {expect}\n"
        f"stderr: {process.stderr}"
    )
    return process.stdout


@pytest.mark.slow
class TestServeKillRestart:
    """The acceptance contract: murder the serving process mid-ingest,
    restart it, and it serves exactly what an unkilled deployment
    serves — byte-identical artifacts for completed generations."""

    def test_kill_mid_ingest_restart_serves_same_entities(self, tmp_path):
        # The doomed run: refresh (durable generation 1) after 12
        # ingests, die at log position 18 — after the durable append,
        # before linking.
        _run_driver(
            str(tmp_path / "killed"),
            "--n",
            "24",
            "--refresh-at",
            "12",
            "--kill-at",
            "18",
            expect=KILL_EXIT_CODE,
        )
        # The reference deployment ingests exactly the records the
        # doomed run acknowledged (positions 0..18), never dying.
        reference = json.loads(
            _run_driver(
                str(tmp_path / "reference"),
                "--n",
                "19",
                "--refresh-at",
                "12",
            )
        )
        restarted = json.loads(
            _run_driver(str(tmp_path / "killed"), "--report")
        )
        assert restarted["log_length"] == 19
        assert restarted["generation"] == 1
        assert restarted["snapshot"] == reference["snapshot"]
        # Completed generations are byte-identical across deployments.
        assert restarted["generation_sha"] == reference["generation_sha"]
        assert restarted["generation_sha"] is not None

    def test_kill_before_any_generation(self, tmp_path):
        _run_driver(
            str(tmp_path / "killed"),
            "--n",
            "10",
            "--kill-at",
            "6",
            expect=KILL_EXIT_CODE,
        )
        reference = json.loads(
            _run_driver(str(tmp_path / "reference"), "--n", "7")
        )
        restarted = json.loads(
            _run_driver(str(tmp_path / "killed"), "--report")
        )
        assert restarted["snapshot"]["entities"] == (
            reference["snapshot"]["entities"]
        )


class _FlakyRefreshBlocker(Blocker):
    """A batch blocker that fails its first ``failures`` calls."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self._inner = StandardBlocker(first_token_key("name"))

    def block(self, records):
        if self.failures > 0:
            self.failures -= 1
            raise RuntimeError("injected refresh failure")
        return self._inner.block(records)


class TestDegradedRefreshRace:
    """Concurrent ingest + failing background refreshes.

    The satellite contract: while the breaker is open because
    ``refresh_async`` keeps failing, readers never observe a torn or
    advanced generation, concurrent writes are shed into the
    dead-letter log (not the durable record log), and one successful
    refresh re-arms the whole service.
    """

    def test_readers_stay_consistent_while_breaker_open(self, tmp_path):
        clock = ManualClock(start=0.0, tick=0.0)
        blocker = _FlakyRefreshBlocker(failures=3)
        tracer = Tracer()
        service = ResolutionService(
            tmp_path,
            key_functions=[first_token_key("name")],
            comparator=default_product_comparator(),
            classifier=ThresholdClassifier(0.72),
            refresh_blocker=blocker,
            tracer=tracer,
            durable=False,
            overload=OverloadPolicy(
                max_pending_writes=8,
                failure_threshold=1,
                reset_timeout=1e9,
                shed="dead_letter",
                clock=clock,
            ),
        )
        for record in build_records(4):
            assert not service.ingest(record).quarantined
        baseline = service.snapshot()

        stop = threading.Event()
        torn: list = []

        def reader() -> None:
            while not stop.is_set():
                snap = service.snapshot()
                if snap != baseline:
                    torn.append(snap)
                probe = service.health()
                if probe["generation"] != baseline["generation"]:
                    torn.append(probe)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            # Three background refreshes fail; the first opens the
            # breaker (threshold 1, effectively-infinite window).
            for _ in range(3):
                service.refresh_async().join()
            assert service.health()["status"] == "degraded"
            # Concurrent writes while degraded: all shed, none appended.
            shed_results: list = []
            writers = [
                threading.Thread(
                    target=lambda i=i: shed_results.append(
                        service.ingest(
                            Record(f"w{i}", "s9", {"name": f"flood {i}"})
                        )
                    ),
                )
                for i in range(6)
            ]
            for thread in writers:
                thread.start()
            for thread in writers:
                thread.join()
        finally:
            stop.set()
            for thread in readers:
                thread.join()

        assert torn == []
        assert len(shed_results) == 6
        assert all(result.shed for result in shed_results)
        assert service.store.log_length == 4
        assert len(service.dead_letters.by_kind("overload")) == 6
        health = service.health()
        assert health["status"] == "degraded"
        assert health["last_refresh_error"].startswith("RuntimeError")
        counters = tracer.report().metrics["counters"]
        assert counters["serve.refresh_failures"] == 3

        # Recovery: the dependency healed, and a successful refresh is
        # the automatic re-arm path -- no breaker window wait needed.
        assert service.refresh() == 1
        health = service.health()
        assert health["status"] == "ok"
        assert health["breaker"] == "closed"
        assert health["last_refresh_error"] is None
        accepted = service.ingest(Record("w9", "s9", {"name": "flood 9"}))
        assert not accepted.quarantined and accepted.entity_id
