"""Tests for comparators and the three classifier families."""

import pytest

from repro.core import ConfigurationError, EmptyInputError, Record
from repro.linkage import (
    ComparisonVector,
    FieldComparator,
    MatchDecision,
    MatchRule,
    RecordComparator,
    RuleBasedClassifier,
    ThresholdClassifier,
    default_product_comparator,
    fit_fellegi_sunter,
    rule_for,
)
from repro.text import exact_similarity, jaro_winkler_similarity


def record(rid, **attrs):
    return Record(rid, "s", {k: str(v) for k, v in attrs.items()})


@pytest.fixture
def comparator():
    return RecordComparator(
        [
            FieldComparator("name", jaro_winkler_similarity, weight=2.0),
            FieldComparator("color", exact_similarity, weight=1.0),
        ]
    )


class TestFieldComparator:
    def test_missing_returns_none(self, comparator):
        vector = comparator.compare(
            record("a", name="canon"), record("b", name="canon", color="red")
        )
        assert vector.similarities[1] is None

    def test_normalization_applied(self):
        field = FieldComparator("color", exact_similarity)
        assert field.compare({"color": " RED "}, {"color": "red"}) == 1.0

    def test_normalization_disabled(self):
        field = FieldComparator("color", exact_similarity, normalize=False)
        assert field.compare({"color": " RED "}, {"color": "red"}) == 0.0

    def test_aliases(self):
        field = FieldComparator(
            "color", exact_similarity, aliases=("colour",)
        )
        assert field.compare({"colour": "red"}, {"color": "red"}) == 1.0

    def test_invalid_weight(self):
        with pytest.raises(ConfigurationError):
            FieldComparator("x", exact_similarity, weight=0.0)


class TestRecordComparator:
    def test_weighted_score(self, comparator):
        vector = comparator.compare(
            record("a", name="canon", color="red"),
            record("b", name="canon", color="blue"),
        )
        assert vector.score == pytest.approx((2.0 * 1.0 + 1.0 * 0.0) / 3.0)

    def test_missing_fields_excluded_from_average(self, comparator):
        vector = comparator.compare(
            record("a", name="canon"), record("b", name="canon")
        )
        assert vector.score == pytest.approx(1.0)

    def test_missing_penalty(self):
        comparator = RecordComparator(
            [
                FieldComparator("name", exact_similarity, weight=1.0),
                FieldComparator("color", exact_similarity, weight=1.0),
            ],
            missing_penalty=0.0,
        )
        vector = comparator.compare(
            record("a", name="x"), record("b", name="x")
        )
        assert vector.score == pytest.approx(0.5)

    def test_all_fields_missing_scores_zero(self, comparator):
        vector = comparator.compare(record("a", other="1"), record("b"))
        assert vector.score == 0.0

    def test_needs_fields(self):
        with pytest.raises(ConfigurationError):
            RecordComparator([])

    def test_agreement_pattern(self, comparator):
        vector = comparator.compare(
            record("a", name="canon", color="red"),
            record("b", name="canon", color="blue"),
        )
        assert vector.agreement_pattern() == (True, False)

    def test_default_comparator_separates_products(self):
        comparator = default_product_comparator()
        same = comparator.score(
            record("a", name="canon pro 512", brand="canon"),
            record("b", title="canon pro 512", manufacturer="canon"),
        )
        different = comparator.score(
            record("a", name="canon pro 512", brand="canon"),
            record("c", title="canon pro 3", manufacturer="canon"),
        )
        assert same > 0.9
        assert different < 0.7


class TestThresholdClassifier:
    def test_decisions(self, comparator):
        classifier = ThresholdClassifier(0.9, review_threshold=0.5)
        high = comparator.compare(
            record("a", name="canon", color="red"),
            record("b", name="canon", color="red"),
        )
        mid = comparator.compare(
            record("a", name="canon", color="red"),
            record("b", name="canon", color="blue"),
        )
        low = comparator.compare(
            record("a", name="zzz", color="red"),
            record("b", name="qqq", color="blue"),
        )
        assert classifier.classify(high) == MatchDecision.MATCH
        assert classifier.classify(mid) == MatchDecision.POSSIBLE
        assert classifier.classify(low) == MatchDecision.NON_MATCH

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            ThresholdClassifier(1.5)
        with pytest.raises(ConfigurationError):
            ThresholdClassifier(0.5, review_threshold=0.9)


class TestRuleClassifier:
    def test_rule_fires_conjunctively(self, comparator):
        rule = MatchRule({0: 0.95, 1: 0.95})
        classifier = RuleBasedClassifier([rule])
        both = comparator.compare(
            record("a", name="canon", color="red"),
            record("b", name="canon", color="red"),
        )
        one = comparator.compare(
            record("a", name="canon", color="red"),
            record("b", name="canon", color="blue"),
        )
        assert classifier.is_match(both)
        assert not classifier.is_match(one)

    def test_missing_field_fails_rule(self, comparator):
        rule = MatchRule({1: 0.9})
        classifier = RuleBasedClassifier([rule])
        vector = comparator.compare(
            record("a", name="canon"), record("b", name="canon")
        )
        assert not classifier.is_match(vector)

    def test_rule_for_names(self, comparator):
        rule = rule_for(comparator, name=0.9, color=0.9)
        assert rule.requirements == {0: 0.9, 1: 0.9}

    def test_rule_for_unknown_attribute(self, comparator):
        with pytest.raises(ConfigurationError):
            rule_for(comparator, nonexistent=0.5)

    def test_firing_rule_identified(self, comparator):
        strict = MatchRule({0: 0.99, 1: 0.99}, label="strict")
        loose = MatchRule({0: 0.8}, label="loose")
        classifier = RuleBasedClassifier([strict, loose])
        vector = comparator.compare(
            record("a", name="canon", color="red"),
            record("b", name="canon", color="blue"),
        )
        assert classifier.firing_rule(vector).label == "loose"


class TestFellegiSunter:
    def _vectors(self):
        # 30 matching-looking pairs (agree on both fields), 170 random.
        vectors = []
        for i in range(30):
            vectors.append(
                ComparisonVector(f"m{i}", f"m{i}'", (0.99, 0.95), 0.97)
            )
        for i in range(170):
            sims = (0.2, 0.9) if i % 4 == 0 else (0.1, 0.05)
            vectors.append(
                ComparisonVector(f"u{i}", f"u{i}'", sims, sum(sims) / 2)
            )
        return vectors

    def test_em_finds_separating_parameters(self):
        model = fit_fellegi_sunter(self._vectors())
        assert all(m > u for m, u in zip(model.m, model.u))

    def test_match_pattern_scores_above_nonmatch(self):
        model = fit_fellegi_sunter(self._vectors())
        assert model.pattern_weight((True, True)) > model.pattern_weight(
            (False, False)
        )

    def test_classifies_clear_match(self):
        model = fit_fellegi_sunter(self._vectors())
        match_vector = ComparisonVector("a", "b", (0.99, 0.99), 0.99)
        nonmatch_vector = ComparisonVector("a", "c", (0.1, 0.1), 0.1)
        assert model.is_match(match_vector)
        assert not model.is_match(nonmatch_vector)

    def test_match_probability_monotone(self):
        model = fit_fellegi_sunter(self._vectors())
        p_match = model.match_probability(
            ComparisonVector("a", "b", (0.99, 0.99), 0.99)
        )
        p_non = model.match_probability(
            ComparisonVector("a", "c", (0.1, 0.1), 0.1)
        )
        assert p_match > p_non
        assert 0.0 <= p_non <= p_match <= 1.0

    def test_prevalence_estimated(self):
        model = fit_fellegi_sunter(self._vectors())
        assert 0.05 < model.prevalence < 0.4

    def test_empty_input(self):
        with pytest.raises(EmptyInputError):
            fit_fellegi_sunter([])

    def test_inconsistent_lengths_rejected(self):
        model = fit_fellegi_sunter(self._vectors())
        with pytest.raises(ConfigurationError):
            model.pattern_weight((True,))
