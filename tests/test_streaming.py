"""Tests for drift-aware continuous ingestion (`repro.streaming`).

The load-bearing suites:

* **Differential**: on a drift-free stream with ``decay=None``, the
  streaming projection at *every* window boundary is byte-identical
  (JSON-serialized) to a from-scratch batch resolve + fuse over the
  records of all closed windows — two genuinely different engines
  agreeing exactly.
* **Arrival-order property** (Hypothesis): window-close output is
  insensitive to intra-window arrival order, across window sizes,
  feeding batch sizes, and stream seeds.
* **Drift regressions**: seeded accuracy-flip and copier-appears
  scenarios pin that decayed posteriors track the shift (and undecayed
  ones go stale), and that monitors fire once per sustained shift.
"""

import itertools
import json
import math
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Record
from repro.fusion import Claim, ClaimSet, OnlineFusion
from repro.linkage import (
    StandardBlocker,
    ThresholdClassifier,
    default_product_comparator,
)
from repro.linkage.blocking import first_token_key
from repro.obs import ManualClock, Tracer, observe_stream_window
from repro.quality import estimation_rmse
from repro.recovery import RunStore
from repro.streaming import (
    CONFLICT_ATTRIBUTES,
    AccuracyShiftMonitor,
    DecayedAccuracyTracker,
    DriftStreamConfig,
    DriftWorld,
    MatchRateMonitor,
    StreamFusion,
    StreamingResolver,
    TumblingWindower,
    WindowConfig,
    batch_reference_snapshot,
    fuse_entity,
    projection_accuracy,
)

MATCH_THRESHOLD = 0.72


def make_resolver(accuracies, **kwargs):
    kwargs.setdefault("window", WindowConfig(size=2.0))
    return StreamingResolver(
        key_functions=[first_token_key("name")],
        comparator=default_product_comparator(),
        classifier=ThresholdClassifier(MATCH_THRESHOLD),
        source_accuracies=accuracies,
        **kwargs,
    )


def reference_snapshot(records, accuracies):
    return batch_reference_snapshot(
        records,
        StandardBlocker(first_token_key("name")),
        default_product_comparator(),
        ThresholdClassifier(MATCH_THRESHOLD),
        accuracies,
    )


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def record(record_id, source, name, timestamp, **attributes):
    return Record(
        record_id=record_id,
        source_id=source,
        attributes={"name": name, **attributes},
        timestamp=timestamp,
    )


# ---------------------------------------------------------------------
# Event-time windowing


class TestTumblingWindower:

    def test_records_buffer_until_watermark_passes_window_end(self):
        windower = TumblingWindower(WindowConfig(size=1.0))
        assert windower.feed(record("a", "s", "x", 0.1)) == []
        assert windower.feed(record("b", "s", "x", 0.9)) == []
        closed = windower.feed(record("c", "s", "x", 1.0))
        assert [window.index for window in closed] == [0]
        assert [r.record_id for r in closed[0].records] == ["a", "b"]

    def test_window_records_are_in_canonical_event_time_order(self):
        windower = TumblingWindower(WindowConfig(size=1.0))
        windower.feed(record("b", "s", "x", 0.5))
        windower.feed(record("a", "s", "x", 0.5))
        windower.feed(record("c", "s", "x", 0.2))
        (window,) = windower.feed(record("d", "s", "x", 1.5))
        assert [r.record_id for r in window.records] == ["c", "a", "b"]

    def test_lag_delays_close(self):
        windower = TumblingWindower(WindowConfig(size=1.0, lag=0.5))
        assert windower.feed(record("a", "s", "x", 0.5)) == []
        # Watermark 1.2 - lag 0.5 = 0.7: window [0, 1) still open.
        assert windower.feed(record("b", "s", "x", 1.2)) == []
        closed = windower.feed(record("c", "s", "x", 1.6))
        assert [window.index for window in closed] == [0]

    def test_empty_windows_close_skip_free(self):
        windower = TumblingWindower(WindowConfig(size=1.0))
        windower.feed(record("a", "s", "x", 0.5))
        closed = windower.feed(record("b", "s", "x", 3.5))
        assert [window.index for window in closed] == [0, 1, 2]
        assert closed[1].records == () and closed[2].records == ()

    def test_late_record_dropped_and_counted(self):
        windower = TumblingWindower(WindowConfig(size=1.0))
        windower.feed(record("a", "s", "x", 0.5))
        windower.feed(record("b", "s", "x", 2.5))
        assert windower.feed(record("late", "s", "x", 0.7)) == []
        assert windower.late_records == 1
        (window,) = windower.flush()
        assert "late" not in [r.record_id for r in window.records]

    def test_late_record_raises_under_error_policy(self):
        windower = TumblingWindower(WindowConfig(size=1.0, late="error"))
        windower.feed(record("a", "s", "x", 2.5))
        with pytest.raises(ConfigurationError):
            windower.feed(record("late", "s", "x", 0.5))

    def test_missing_timestamp_rejected(self):
        windower = TumblingWindower()
        with pytest.raises(ConfigurationError):
            windower.feed(Record("a", "s", {"name": "x"}))

    def test_flush_closes_all_buffered_windows(self):
        windower = TumblingWindower(WindowConfig(size=1.0))
        windower.feed(record("a", "s", "x", 0.5))
        # Feeding ts=2.5 advances the watermark past windows 0 and 1.
        closed = windower.feed(record("b", "s", "x", 2.5))
        assert [window.index for window in closed] == [0, 1]
        (window,) = windower.flush()
        assert window.index == 2
        assert [r.record_id for r in window.records] == ["b"]
        assert windower.next_window == 3
        assert windower.flush() == []

    def test_restore_resumes_position_and_pending(self):
        windower = TumblingWindower(WindowConfig(size=1.0))
        pending = (record("a", "s", "x", 3.2), record("b", "s", "x", 3.7))
        windower.restore(3, 3.7, pending, late_records=2)
        assert windower.next_window == 3
        assert windower.late_records == 2
        assert windower.feed(record("old", "s", "x", 1.0)) == []
        assert windower.late_records == 3
        (window,) = windower.feed(record("c", "s", "x", 4.1))
        assert [r.record_id for r in window.records] == ["a", "b"]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            WindowConfig(size=0.0)
        with pytest.raises(ConfigurationError):
            WindowConfig(lag=-1.0)
        with pytest.raises(ConfigurationError):
            WindowConfig(late="ignore")


# ---------------------------------------------------------------------
# Decayed posteriors


class TestDecayedAccuracyTracker:

    def test_prior_before_evidence(self):
        tracker = DecayedAccuracyTracker({"s": 0.7}, default_prior=0.55)
        assert tracker.accuracy("s") == 0.7
        assert tracker.accuracy("unseen") == 0.55

    def test_blend_formula_exact(self):
        tracker = DecayedAccuracyTracker({"s": 0.6}, prior_strength=8.0)
        for correct in (True, True, True, False):
            tracker.observe("s", correct)
        assert tracker.accuracy("s") == pytest.approx(
            (8.0 * 0.6 + 3.0) / (8.0 + 4.0)
        )

    def test_advance_decays_counts(self):
        tracker = DecayedAccuracyTracker(
            {"s": 0.6}, decay=0.5, prior_strength=8.0
        )
        for correct in (True, True, True, False):
            tracker.observe("s", correct)
        tracker.advance()
        assert tracker.accuracy("s") == pytest.approx(
            (8.0 * 0.6 + 1.5) / (8.0 + 2.0)
        )

    def test_decay_one_is_lossless(self):
        tracker = DecayedAccuracyTracker({"s": 0.6}, decay=1.0)
        tracker.observe("s", True)
        before = tracker.accuracy("s")
        for _ in range(5):
            tracker.advance()
        assert tracker.accuracy("s") == before

    def test_forgetting_tracks_a_flip(self):
        decayed = DecayedAccuracyTracker({"s": 0.8}, decay=0.5)
        undecayed = DecayedAccuracyTracker({"s": 0.8}, decay=1.0)
        for tracker in (decayed, undecayed):
            for _ in range(10):
                tracker.advance()
                for _ in range(5):
                    tracker.observe("s", True)
            for _ in range(6):
                tracker.advance()
                for _ in range(5):
                    tracker.observe("s", False)
        assert decayed.accuracy("s") < 0.45 < undecayed.accuracy("s")

    def test_state_restore_round_trip(self):
        tracker = DecayedAccuracyTracker({"s": 0.8}, decay=0.7)
        for index in range(7):
            tracker.advance()
            tracker.observe("s", index % 3 != 0)
            tracker.observe("t", index % 2 == 0)
        twin = DecayedAccuracyTracker({"s": 0.8}, decay=0.7)
        twin.restore(tracker.state())
        assert twin.estimates() == tracker.estimates()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DecayedAccuracyTracker({}, decay=0.0)
        with pytest.raises(ConfigurationError):
            DecayedAccuracyTracker({}, prior_strength=0.0)


def synthetic_claim_windows(n_windows, flip_after=None, seed=3):
    """Deterministic claim windows over 3 sources and 5 items.

    ``good0``/``good1`` always claim the truth; ``shifty`` claims the
    truth until ``flip_after`` windows have passed, then always a wrong
    value.
    """
    import random

    rng = random.Random(seed)
    windows = []
    for window_index in range(n_windows):
        claims = []
        for item in range(5):
            item_id = f"i{item}"
            claims.append(Claim("good0", item_id, "t"))
            claims.append(Claim("good1", item_id, "t"))
            flipped = flip_after is not None and window_index >= flip_after
            claims.append(
                Claim("shifty", item_id, "w" if flipped else "t")
            )
        rng.shuffle(claims)
        windows.append(claims)
    return windows


class TestStreamFusion:

    ACCURACIES = {"good0": 0.85, "good1": 0.8, "shifty": 0.8}

    def test_decay_none_is_bitwise_batch_fusion(self):
        """The drift-free anchor: static mode == OnlineFusion, exactly.

        Accumulation keeps the latest claim per (source, item) — the
        batch side sees the same deduplicated claim set.
        """
        fusion = StreamFusion(self.ACCURACIES, decay=None)
        latest = {}
        for window_index, claims in enumerate(
            synthetic_claim_windows(6, flip_after=3)
        ):
            for claim in claims:
                latest[(claim.source_id, claim.item_id)] = claim
            streamed = fusion.fuse_window(claims)
            batch, _ = OnlineFusion(self.ACCURACIES).run(
                ClaimSet(list(latest.values()))
            )
            assert streamed.chosen == batch.chosen
            assert streamed.confidence == batch.confidence
            assert streamed.source_accuracy == batch.source_accuracy
            assert streamed.iterations == window_index + 1

    def test_static_accuracies_are_the_priors(self):
        fusion = StreamFusion(self.ACCURACIES, decay=None)
        fusion.fuse_window(synthetic_claim_windows(1)[0])
        assert fusion.accuracies() == dict(sorted(self.ACCURACIES.items()))

    def test_decayed_estimates_cross_over_after_flip(self):
        decayed = StreamFusion(self.ACCURACIES, decay=0.5)
        undecayed = StreamFusion(self.ACCURACIES, decay=1.0)
        for claims in synthetic_claim_windows(16, flip_after=10):
            decayed.fuse_window(claims)
            undecayed.fuse_window(claims)
        assert decayed.accuracies()["shifty"] < 0.45
        assert undecayed.accuracies()["shifty"] > 0.6
        # Both keep trusting the stable sources.
        for fusion in (decayed, undecayed):
            assert fusion.accuracies()["good0"] > 0.7

    def test_decayed_leaders_follow_recent_claims(self):
        """After the flip the decayed fuser's answers stay with the
        (still majority) truth, and the flipped source's claims lose."""
        fusion = StreamFusion(self.ACCURACIES, decay=0.5)
        result = None
        for claims in synthetic_claim_windows(14, flip_after=8):
            result = fusion.fuse_window(claims)
        assert all(value == "t" for value in result.chosen.values())
        assert result.iterations == 14

    def test_state_restore_round_trip_drift_mode(self):
        fusion = StreamFusion(self.ACCURACIES, decay=0.6)
        windows = synthetic_claim_windows(8, flip_after=4)
        for claims in windows[:5]:
            fusion.fuse_window(claims)
        twin = StreamFusion(self.ACCURACIES, decay=0.6)
        twin.restore(fusion.state())
        for claims in windows[5:]:
            expected = fusion.fuse_window(claims)
            resumed = twin.fuse_window(claims)
            assert resumed.chosen == expected.chosen
            assert resumed.confidence == expected.confidence
            assert resumed.source_accuracy == expected.source_accuracy

    def test_state_restore_round_trip_static_mode(self):
        fusion = StreamFusion(self.ACCURACIES, decay=None)
        windows = synthetic_claim_windows(6)
        for claims in windows[:3]:
            fusion.fuse_window(claims)
        twin = StreamFusion(self.ACCURACIES, decay=None)
        twin.restore(fusion.state())
        for claims in windows[3:]:
            assert (
                twin.fuse_window(claims).chosen
                == fusion.fuse_window(claims).chosen
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamFusion({})
        with pytest.raises(ConfigurationError):
            StreamFusion({"s": 0.8}, decay=1.5)


# ---------------------------------------------------------------------
# Monitors


class TestMonitors:

    def test_accuracy_shift_fires_once_per_sustained_shift(self):
        monitor = AccuracyShiftMonitor(threshold=0.1, patience=2)
        events = []
        levels = [0.9] * 4 + [0.5] * 8
        for window, level in enumerate(levels):
            events.extend(monitor.observe(window, {"s": level}))
        assert len(events) == 1
        assert events[0].window == 5  # second sustained shifted window
        assert events[0].subject == "s"
        assert events[0].baseline == pytest.approx(0.9)
        assert events[0].value == pytest.approx(0.5)

    def test_one_noisy_window_never_fires(self):
        monitor = AccuracyShiftMonitor(threshold=0.1, patience=2)
        events = []
        for window, level in enumerate([0.9, 0.9, 0.4, 0.9, 0.9, 0.9]):
            events.extend(monitor.observe(window, {"s": level}))
        assert events == []

    def test_relatch_fires_again_on_second_shift(self):
        monitor = AccuracyShiftMonitor(threshold=0.1, patience=1)
        events = []
        for window, level in enumerate([0.9, 0.5, 0.5, 0.5, 0.9, 0.9]):
            events.extend(monitor.observe(window, {"s": level}))
        # One event per level change, never one per window.
        assert [event.window for event in events] == [1, 4]

    def test_prior_anchored_baseline_flags_new_source(self):
        monitor = AccuracyShiftMonitor(
            threshold=0.1, patience=2, default_baseline=0.8
        )
        events = []
        for window in range(4):
            events.extend(monitor.observe(window, {"new": 0.5}))
        assert [event.window for event in events] == [1]
        assert events[0].baseline == pytest.approx(0.8)

    def test_match_rate_monitor_fires_on_sustained_rate_shift(self):
        monitor = MatchRateMonitor(threshold=0.2, patience=2)
        events = []
        rates = [(8, 10)] * 3 + [(2, 10)] * 5
        for window, (matches, comparisons) in enumerate(rates):
            events.extend(monitor.observe(window, matches, comparisons))
        assert [event.window for event in events] == [4]
        assert events[0].subject == "match_rate"

    def test_match_rate_skips_thin_windows(self):
        monitor = MatchRateMonitor(
            threshold=0.2, patience=1, min_comparisons=5
        )
        assert monitor.observe(0, 4, 5) == []
        # 0/2 would be a huge shift, but 2 comparisons is noise.
        assert monitor.observe(1, 0, 2) == []
        assert monitor.observe(2, 0, 0) == []
        (event,) = monitor.observe(3, 0, 10)
        assert event.window == 3

    def test_state_restore_round_trip(self):
        monitor = AccuracyShiftMonitor(threshold=0.1, patience=3)
        for window, level in enumerate([0.9, 0.9, 0.6, 0.6]):
            monitor.observe(window, {"s": level})
        twin = AccuracyShiftMonitor(threshold=0.1, patience=3)
        twin.restore(monitor.state())
        # Both are one sustained window away from firing.
        assert len(twin.observe(4, {"s": 0.6})) == 1
        assert len(monitor.observe(4, {"s": 0.6})) == 1

    def test_event_is_json_able(self):
        monitor = MatchRateMonitor(threshold=0.1, patience=1)
        monitor.observe(0, 9, 10)
        (event,) = monitor.observe(1, 1, 10)
        payload = json.loads(json.dumps(event.to_json()))
        assert payload["monitor"] == "match_rate"
        assert payload["window"] == 1

    def test_monitor_counters(self):
        tracer = Tracer()
        monitor = AccuracyShiftMonitor(
            threshold=0.1, patience=1, tracer=tracer
        )
        monitor.observe(0, {"s": 0.9})
        monitor.observe(1, {"s": 0.5})
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["streaming.monitor.fired"] == 1
        assert counters["streaming.monitor.accuracy_shift.fired"] == 1


# ---------------------------------------------------------------------
# The drift-injecting stream


class TestDriftWorld:

    def test_stream_is_deterministic_and_restartable(self):
        world = DriftWorld(DriftStreamConfig(seed=41))
        assert world.take(200) == world.take(200)
        again = DriftWorld(DriftStreamConfig(seed=41))
        assert again.take(200) == world.take(200)

    def test_take_is_a_prefix_of_longer_takes(self):
        world = DriftWorld(DriftStreamConfig(seed=42))
        assert world.take(300)[:120] == world.take(120)

    def test_records_carry_event_time_and_entity_encoding(self):
        world = DriftWorld(DriftStreamConfig(seed=1))
        for rec in world.take(50):
            tick = int(rec.timestamp)
            assert rec.record_id.startswith(f"{rec.source_id}/{tick:06d}-")
            entity = world.entity_index_of(rec.record_id)
            assert rec.attributes["name"] == world.entity_name(entity)

    def test_accuracy_schedule_flips(self):
        config = DriftStreamConfig(flip_at=5.0, flip_source=1, flip_to=0.3)
        world = DriftWorld(config)
        assert world.accuracy_at("src01", 4.9) == world.base_accuracy(1)
        assert world.accuracy_at("src01", 5.0) == 0.3
        assert world.accuracy_at("src00", 5.0) == world.base_accuracy(0)

    def test_copier_only_after_copier_at(self):
        config = DriftStreamConfig(
            copier_at=3.0, copier_parent=0, seed=9, coverage=0.9
        )
        world = DriftWorld(config)
        records = world.take(800)
        copier_ticks = {
            int(r.timestamp) for r in records if r.source_id == "cop00"
        }
        assert copier_ticks and min(copier_ticks) >= 3
        assert world.copier_of == {"cop00": "src00"}

    def test_truth_at_replays_evolving_truth(self):
        config = DriftStreamConfig(truth_change_rate=0.3, seed=13)
        world = DriftWorld(config)
        assert world.truth_at(7.0) == world.truth_at(7.0)
        assert world.truth_at(0.0) != world.truth_at(20.0)
        # Emitted true values match the replayed truth schedule: with
        # accuracy_high == accuracy_low == high, claims are mostly true.
        sure = DriftWorld(
            DriftStreamConfig(
                truth_change_rate=0.3,
                accuracy_high=0.99,
                accuracy_low=0.99,
                n_sources=2,
                seed=13,
            )
        )
        hits = total = 0
        for rec in sure.take(400):
            truth = sure.truth_at(rec.timestamp)
            entity = sure.entity_index_of(rec.record_id)
            for attribute in CONFLICT_ATTRIBUTES:
                value = rec.attributes.get(attribute)
                if value is None:
                    continue
                total += 1
                hits += value == truth[f"{entity:04d}.{attribute}"]
        assert total and hits / total > 0.95

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftStreamConfig(n_entities=0)
        with pytest.raises(ConfigurationError):
            DriftStreamConfig(flip_to=1.5)
        with pytest.raises(ConfigurationError):
            DriftStreamConfig(copier_parent=7)


# ---------------------------------------------------------------------
# Differential: streaming == batch at every window boundary


DIFF_CONFIG = DriftStreamConfig(n_entities=8, n_sources=4, seed=7)


def run_differential(n_windows):
    world = DriftWorld(DIFF_CONFIG)
    accuracies = world.accuracies_at(0.0)
    resolver = make_resolver(accuracies, window=WindowConfig(size=1.0))
    seen = []

    def tee(records):
        for rec in records:
            seen.append(rec)
            yield rec

    boundary_pairs = []
    for result in resolver.process(tee(world.stream())):
        closed = {
            member
            for entity in resolver.snapshot()["entities"].values()
            for member in entity["members"]
        }
        closed_records = [rec for rec in seen if rec.record_id in closed]
        assert len(closed_records) == len(closed)
        boundary_pairs.append(
            (
                canonical(resolver.snapshot()["entities"]),
                canonical(
                    reference_snapshot(closed_records, accuracies)[
                        "entities"
                    ]
                ),
            )
        )
        if len(boundary_pairs) >= n_windows:
            break
    return boundary_pairs


class TestDriftFreeDifferential:

    def test_streaming_matches_batch_at_every_window_boundary(self):
        for index, (streamed, batch) in enumerate(run_differential(6)):
            assert streamed == batch, f"diverged at window {index}"

    @settings(max_examples=12, deadline=None)
    @given(
        window_size=st.sampled_from([1.0, 2.0, 3.5]),
        batch_size=st.sampled_from([1, 4, 9]),
        seed=st.integers(min_value=0, max_value=30),
        order_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_window_close_insensitive_to_intra_window_arrival_order(
        self, window_size, batch_size, seed, order_seed
    ):
        """The Hypothesis property over (window size x batch size x
        seed x arrival order): canonical per-window output is identical
        whether records arrive in stream order or shuffled within their
        window, and regardless of how the feed is chunked."""
        import random

        world = DriftWorld(
            DriftStreamConfig(n_entities=6, n_sources=3, seed=seed)
        )
        records = world.take(80)
        accuracies = world.accuracies_at(0.0)

        def run(feed, batch):
            resolver = make_resolver(
                accuracies, window=WindowConfig(size=window_size)
            )
            outputs = []
            for start in range(0, len(feed), batch):
                for result in resolver.process(
                    feed[start : start + batch]
                ):
                    outputs.append(
                        (
                            result.index,
                            result.n_records,
                            result.matches,
                            result.comparisons,
                            canonical(resolver.snapshot()["entities"]),
                        )
                    )
            for result in resolver.flush():
                outputs.append(
                    (
                        result.index,
                        result.n_records,
                        result.matches,
                        result.comparisons,
                        canonical(resolver.snapshot()["entities"]),
                    )
                )
            return outputs

        by_window = {}
        for rec in records:
            by_window.setdefault(
                int(rec.timestamp // window_size), []
            ).append(rec)
        rng = random.Random(order_seed)
        shuffled = []
        for index in sorted(by_window):
            group = list(by_window[index])
            rng.shuffle(group)
            shuffled.extend(group)

        assert run(shuffled, batch_size) == run(records, 1)


# ---------------------------------------------------------------------
# Drift-scenario regressions


FLIP_CONFIG = DriftStreamConfig(
    n_entities=10, n_sources=5, flip_at=12.0, flip_source=0, flip_to=0.2,
    seed=11,
)


def run_flip(decay, n_windows=16):
    world = DriftWorld(FLIP_CONFIG)
    resolver = make_resolver(
        world.accuracies_at(0.0),
        decay=decay,
        tracked_attributes=CONFLICT_ATTRIBUTES,
    )
    results = resolver.run(
        itertools.islice(world.stream(), 50_000), max_windows=n_windows
    )
    return world, resolver, results


class TestAccuracyFlipRegression:

    @pytest.fixture(scope="class")
    def flip_runs(self):
        return {decay: run_flip(decay) for decay in (0.7, 1.0)}

    def test_decayed_posterior_crosses_over_within_windows(self, flip_runs):
        """Within 10 windows of the flip the decayed estimate has
        crossed below 0.3 while the undecayed lifetime average has not.
        """
        _, decayed, _ = flip_runs[0.7]
        _, undecayed, _ = flip_runs[1.0]
        assert decayed.estimates()["src00"] < 0.3
        assert undecayed.estimates()["src00"] > 0.4

    def test_decayed_tracking_beats_undecayed_rmse(self, flip_runs):
        world, decayed, results = flip_runs[0.7]
        _, undecayed, _ = flip_runs[1.0]
        planted = world.accuracies_at(results[-1].end - 1.0)
        decayed_error = estimation_rmse(decayed.estimates(), planted)
        undecayed_error = estimation_rmse(undecayed.estimates(), planted)
        assert decayed_error < undecayed_error

    def test_monitor_fires_for_the_flipped_source_and_settles(
        self, flip_runs
    ):
        _, decayed, results = flip_runs[0.7]
        flipped = [
            event
            for event in decayed.events
            if event.monitor == "accuracy_shift" and event.subject == "src00"
        ]
        flip_window = int(FLIP_CONFIG.flip_at // 2.0)
        assert flipped, "no event for the flipped source"
        assert all(event.window >= flip_window for event in flipped)
        # The shift latches: once estimates settle at the new level the
        # monitor goes quiet (no event in the last three windows).
        last_windows = {result.index for result in results[-3:]}
        assert not any(event.window in last_windows for event in flipped)

    def test_no_events_for_stable_sources(self, flip_runs):
        _, decayed, _ = flip_runs[0.7]
        subjects = {
            event.subject
            for event in decayed.events
            if event.monitor == "accuracy_shift"
        }
        assert subjects == {"src00"}

    def test_projection_accuracy_scored_against_planted_truth(
        self, flip_runs
    ):
        world, decayed, results = flip_runs[0.7]
        accuracy = projection_accuracy(
            world, decayed.snapshot()["entities"], results[-1].end - 1.0
        )
        assert 0.7 < accuracy <= 1.0


class TestCopierAppearsRegression:

    COPIER_CONFIG = DriftStreamConfig(
        n_entities=8, n_sources=4, copier_at=8.0, copier_parent=3,
        copy_rate=0.9, copier_accuracy=0.3, coverage=0.9, seed=23,
    )

    @pytest.fixture(scope="class")
    def copier_run(self):
        world = DriftWorld(self.COPIER_CONFIG)
        resolver = make_resolver(
            world.accuracies_at(0.0),
            decay=0.8,
            tracked_attributes=CONFLICT_ATTRIBUTES,
        )
        resolver.run(
            itertools.islice(world.stream(), 50_000), max_windows=14
        )
        return world, resolver

    def test_new_source_posterior_diverges_from_prior(self, copier_run):
        _, resolver = copier_run
        # The copier-of-a-bad-parent earns a posterior well below the
        # 0.8 assumed for unknown sources.
        assert resolver.estimates()["cop00"] < 0.65

    def test_monitor_flags_the_new_source_exactly_once(self, copier_run):
        _, resolver = copier_run
        copier_events = [
            event for event in resolver.events if event.subject == "cop00"
        ]
        assert len(copier_events) == 1
        appear_window = int(self.COPIER_CONFIG.copier_at // 2.0)
        assert copier_events[0].window >= appear_window

    def test_independent_sources_keep_their_standing(self, copier_run):
        world, resolver = copier_run
        estimates = resolver.estimates()
        for source in world.sources:
            assert estimates[source] > 0.5


# ---------------------------------------------------------------------
# The streaming resolver: projection, re-resolution, serving hooks


class TestFuseEntity:

    def test_pick_first_vs_latest(self):
        members = [
            record("s0/000000-1", "s0", "acme unit", 0.0, color="red"),
            record("s0/000005-1", "s0", "acme unit", 5.0, color="green"),
            record("s1/000001-1", "s1", "acme unit", 1.0),
        ]
        accuracy_of = lambda source: 0.8  # noqa: E731
        first, _, _ = fuse_entity(members, accuracy_of, pick="first")
        latest, _, _ = fuse_entity(members, accuracy_of, pick="latest")
        assert first["color"] == "red"
        assert latest["color"] == "green"
        assert first["name"] == latest["name"] == "acme unit"
        with pytest.raises(ConfigurationError):
            fuse_entity(members, accuracy_of, pick="newest")

    def test_drift_mode_projects_the_newest_claims(self):
        """A source that corrects itself updates the drift projection;
        the static projection keeps the serving first-wins rule."""
        records = [
            record("s0/000000-0001", "s0", "acme unit", 0.0, color="red"),
            record("s1/000000-0001", "s1", "acme unit", 0.0, color="red"),
            record("s0/000002-0001", "s0", "acme unit", 2.0, color="blue"),
            record("s1/000002-0001", "s1", "acme unit", 2.0, color="blue"),
            record("s2/000004-0001", "s2", "acme unit", 4.0),
        ]
        accuracies = {"s0": 0.8, "s1": 0.8, "s2": 0.8}
        static = make_resolver(accuracies, window=WindowConfig(size=1.0))
        static.run(records)
        drifting = make_resolver(
            accuracies, window=WindowConfig(size=1.0), decay=0.9
        )
        drifting.run(records)
        (static_entity,) = static.snapshot()["entities"].values()
        (drift_entity,) = drifting.snapshot()["entities"].values()
        assert static_entity["members"] == drift_entity["members"]
        assert static_entity["attributes"]["color"] == "red"
        assert drift_entity["attributes"]["color"] == "blue"


class TestStreamingResolver:

    def test_decay_none_resolver_uses_static_accuracies(self):
        world = DriftWorld(DIFF_CONFIG)
        accuracies = world.accuracies_at(0.0)
        resolver = make_resolver(accuracies)
        resolver.run(world.take(150))
        assert resolver.accuracies() == dict(sorted(accuracies.items()))

    def test_window_results_carry_costs_and_lags(self):
        world = DriftWorld(DIFF_CONFIG)
        clock = ManualClock(start=0.0, tick=1.0)
        resolver = make_resolver(world.accuracies_at(0.0), clock=clock)
        results = resolver.run(world.take(120))
        assert sum(result.n_records for result in results) == 120
        for result in results:
            assert result.comparisons >= result.matches >= 0
            assert len(result.lags) == result.n_records
            assert all(lag >= 0.0 for lag in result.lags)

    def test_re_resolve_preserves_partition_and_counts(self):
        world = DriftWorld(DIFF_CONFIG)
        resolver = make_resolver(world.accuracies_at(0.0))
        resolver.run(world.take(150))
        before = canonical(resolver.snapshot()["entities"])
        count = resolver.re_resolve(
            StandardBlocker(first_token_key("name"))
        )
        assert count == resolver.n_entities
        assert resolver.re_resolutions == 1
        # Batch re-resolution of a static-mode projection is a no-op:
        # greedy incremental already equals batch connected components.
        assert canonical(resolver.snapshot()["entities"]) == before

    def test_on_drift_callback_can_trigger_re_resolution(self):
        world = DriftWorld(FLIP_CONFIG)
        blocker = StandardBlocker(first_token_key("name"))
        resolver = make_resolver(
            world.accuracies_at(0.0),
            decay=0.7,
            tracked_attributes=CONFLICT_ATTRIBUTES,
            on_drift=lambda event, r: r.re_resolve(blocker),
        )
        results = resolver.run(
            itertools.islice(world.stream(), 50_000), max_windows=16
        )
        assert resolver.re_resolutions >= 1
        fired = [result for result in results if result.events]
        assert fired and all(result.re_resolved for result in fired)

    def test_streaming_monitor_updates_serving_accuracies(self, tmp_path):
        """The serve integration: a drift event pushes fresh estimates
        into a live ResolutionService, which re-fuses under them."""
        from repro.serve import ResolutionService

        service = ResolutionService(
            tmp_path,
            key_functions=[first_token_key("name")],
            comparator=default_product_comparator(),
            classifier=ThresholdClassifier(MATCH_THRESHOLD),
            source_accuracies={"src00": 0.9},
            durable=False,
        )
        world = DriftWorld(FLIP_CONFIG)
        pushed = []

        def on_drift(event, resolver):
            estimates = resolver.estimates()
            service.set_source_accuracies(estimates)
            pushed.append(estimates)

        resolver = make_resolver(
            world.accuracies_at(0.0),
            decay=0.7,
            tracked_attributes=CONFLICT_ATTRIBUTES,
            on_drift=on_drift,
        )
        resolver.run(
            itertools.islice(world.stream(), 50_000), max_windows=16
        )
        assert pushed
        assert service._source_accuracies == pushed[-1]

    def test_tracer_counters(self):
        world = DriftWorld(DIFF_CONFIG)
        tracer = Tracer()
        resolver = make_resolver(
            world.accuracies_at(0.0), tracer=tracer
        )
        results = resolver.run(world.take(120))
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["streaming.windows_closed"] == len(results)
        assert counters["streaming.window_records"] == 120


class TestCheckpointResume:

    def make_stored(self, tmp_path, name, decay=0.7):
        world = DriftWorld(FLIP_CONFIG)
        store = RunStore(tmp_path / name, durable=False)
        resolver = make_resolver(
            world.accuracies_at(0.0),
            decay=decay,
            tracked_attributes=CONFLICT_ATTRIBUTES,
            checkpoint_store=store,
        )
        return world, resolver

    def test_resume_converges_byte_identical(self, tmp_path):
        world, baseline = self.make_stored(tmp_path, "baseline")
        baseline.run(
            itertools.islice(world.stream(), 50_000), max_windows=10
        )
        expected = canonical(baseline.snapshot())

        world2, first = self.make_stored(tmp_path, "killed")
        first.run(
            itertools.islice(world2.stream(), 50_000), max_windows=6
        )
        # "Kill": drop the resolver; only the RunStore survives.
        _, resumed = self.make_stored(tmp_path, "killed")
        stream = iter(world2.stream())
        replayed = resumed.resume(stream)
        assert replayed == first.consumed
        for _ in resumed.process(stream):
            if resumed.windows_closed >= 10:
                break
        assert canonical(resumed.snapshot()) == expected
        assert [event.to_json() for event in resumed.events] == [
            event.to_json() for event in baseline.events
        ]

    def test_resume_without_checkpoint_is_a_fresh_start(self, tmp_path):
        world, resolver = self.make_stored(tmp_path, "fresh")
        assert resolver.resume(iter(world.stream())) == 0

    def test_resume_requires_store_and_fresh_resolver(self, tmp_path):
        world = DriftWorld(FLIP_CONFIG)
        resolver = make_resolver(world.accuracies_at(0.0))
        with pytest.raises(ConfigurationError):
            resolver.resume(iter(world.stream()))
        _, stored = self.make_stored(tmp_path, "used")
        stored.run(world.take(100))
        with pytest.raises(ConfigurationError):
            stored.resume(iter(world.stream()))


# ---------------------------------------------------------------------
# Serve: accuracy hot-swap


class TestServeAccuracyUpdate:

    def build(self, tmp_path, accuracies):
        from repro.serve import ResolutionService

        return ResolutionService(
            tmp_path,
            key_functions=[first_token_key("name")],
            comparator=default_product_comparator(),
            classifier=ThresholdClassifier(MATCH_THRESHOLD),
            source_accuracies=accuracies,
            durable=False,
        )

    def conflicted_records(self):
        return [
            record("s0/r0", "s0", "acme unit 1", None, color="red"),
            record("s1/r1", "s1", "acme unit 1", None, color="blue"),
            record("s2/r2", "s2", "acme unit 1", None, color="blue"),
        ]

    def test_refuses_invalid_accuracy(self, tmp_path):
        service = self.build(tmp_path, {"s0": 0.9})
        with pytest.raises(ConfigurationError):
            service.set_source_accuracies({"s0": 1.5})

    def test_swap_re_fuses_in_place_and_flips_fused_values(self, tmp_path):
        service = self.build(tmp_path, {"s0": 0.95, "s1": 0.55, "s2": 0.55})
        entity_id = None
        for rec in self.conflicted_records():
            entity_id = service.ingest(
                Record(rec.record_id, rec.source_id, rec.attributes)
            ).entity_id
        assert service.get(entity_id).attributes["color"] == "red"
        generation = service.generation
        service.set_source_accuracies({"s0": 0.2, "s1": 0.9, "s2": 0.9})
        updated = service.get(entity_id)
        assert updated.attributes["color"] == "blue"
        assert updated.members == ("s0/r0", "s1/r1", "s2/r2")
        assert service.generation == generation


# ---------------------------------------------------------------------
# Unbounded synth generators: bounded outputs are exact prefixes


class TestUnboundedGeneratorPins:

    def test_evolve_world_is_a_prefix_of_the_snapshot_stream(self):
        from repro.synth import (
            EvolvingWorldConfig,
            WorldConfig,
            evolve_world,
            generate_world,
            stream_world_snapshots,
        )

        world = generate_world(
            WorldConfig(
                categories=("camera",), entities_per_category=12, seed=5
            )
        )
        config = EvolvingWorldConfig(
            n_snapshots=4, change_rate=0.2, death_rate=0.1, seed=6
        )
        bounded = evolve_world(world, config)
        streamed = list(
            itertools.islice(stream_world_snapshots(world, config), 6)
        )
        assert [w.entities for w in streamed[:4]] == [
            w.entities for w in bounded
        ]
        # Fresh iterators replay identically (restartability).
        again = list(
            itertools.islice(stream_world_snapshots(world, config), 6)
        )
        assert [w.entities for w in again] == [w.entities for w in streamed]

    def test_temporal_dataset_is_a_prefix_of_the_record_stream(self):
        from repro.synth import (
            TemporalStreamConfig,
            generate_temporal_dataset,
            stream_temporal_records,
        )

        config = TemporalStreamConfig(
            n_entities=6, n_epochs=3, observations_per_epoch=2, seed=17
        )
        dataset = generate_temporal_dataset(config)
        bounded = sorted(
            dataset.records(), key=lambda r: r.record_id
        )
        streamed = list(
            itertools.islice(stream_temporal_records(config), len(bounded))
        )
        assert sorted(streamed, key=lambda r: r.record_id) == bounded
        # The stream keeps going past the bounded horizon, with epochs
        # advancing as event time.
        tail = list(
            itertools.islice(
                stream_temporal_records(config), len(bounded) + 12
            )
        )[len(bounded) :]
        assert tail and all(
            r.timestamp >= config.n_epochs for r in tail
        )

    def test_drift_stream_feeds_the_resolver_unbounded(self):
        """End-to-end: an unbounded generator drives the resolver and
        is stopped by window count, never by input exhaustion."""
        world = DriftWorld(DIFF_CONFIG)
        resolver = make_resolver(world.accuracies_at(0.0))
        results = resolver.run(world.stream(), max_windows=3)
        assert len(results) == 3
        assert resolver.windows_closed == 3


# ---------------------------------------------------------------------
# Velocity: pull-driven snapshot maintenance


class TestSnapshotMaintainerStream:

    def test_process_stream_matches_the_snapshot_loop(self):
        from repro.synth import (
            CorpusConfig,
            EvolvingWorldConfig,
            WorldConfig,
            evolve_world,
            generate_world,
        )
        from repro.velocity import (
            SnapshotConfig,
            SnapshotMaintainer,
            render_snapshots,
        )

        world = generate_world(
            WorldConfig(
                categories=("camera",), entities_per_category=20, seed=5
            )
        )
        worlds = evolve_world(
            world,
            EvolvingWorldConfig(
                n_snapshots=4, change_rate=0.2, death_rate=0.08, seed=6
            ),
        )
        datasets = render_snapshots(
            worlds,
            CorpusConfig(
                n_sources=4, min_source_size=8, max_source_size=20, seed=7
            ),
            SnapshotConfig(seed=8),
        )

        def maintainer():
            return SnapshotMaintainer(
                [first_token_key("name")],
                default_product_comparator(),
                ThresholdClassifier(MATCH_THRESHOLD),
            )

        loop = maintainer()
        expected = [loop.process_snapshot(d) for d in datasets]
        streaming = maintainer()
        streamed = list(streaming.process_stream(iter(datasets)))
        assert streamed == expected
        assert streaming.clusters() == loop.clusters()

        bounded = maintainer()
        assert (
            list(bounded.process_stream(iter(datasets), max_snapshots=2))
            == expected[:2]
        )


# ---------------------------------------------------------------------
# Kill/restart: the chaos acceptance test (subprocess, os._exit(137))


DRIVER = Path(__file__).parent / "streaming_driver.py"


def run_driver(root, *extra):
    return subprocess.run(
        [sys.executable, str(DRIVER), str(root), *extra],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.slow
class TestKillRestart:

    def test_killed_consumer_resumes_byte_identical(self, tmp_path):
        """Kill -9 mid-open-window; the restarted consumer converges
        byte-identically to one that never died."""
        clean = run_driver(tmp_path / "clean", "--windows", "10")
        assert clean.returncode == 0, clean.stderr

        chaos_root = tmp_path / "chaos"
        killed = run_driver(
            chaos_root, "--windows", "10", "--kill-after-record", "250"
        )
        assert killed.returncode == 137, killed.stderr
        assert killed.stdout == ""

        resumed = run_driver(chaos_root, "--windows", "10")
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean.stdout

    def test_double_kill_still_converges(self, tmp_path):
        clean = run_driver(tmp_path / "clean", "--windows", "8")
        assert clean.returncode == 0, clean.stderr
        chaos_root = tmp_path / "chaos"
        for kill_at in ("120", "260"):
            killed = run_driver(
                chaos_root, "--windows", "8", "--kill-after-record", kill_at
            )
            assert killed.returncode == 137, killed.stderr
        resumed = run_driver(chaos_root, "--windows", "8")
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean.stdout


# ---------------------------------------------------------------------
# Observability instrument


class TestObserveStreamWindow:

    def test_emits_counters_gauges_and_lag_histogram(self):
        world = DriftWorld(DIFF_CONFIG)
        resolver = make_resolver(world.accuracies_at(0.0))
        (result, *_rest) = resolver.run(world.take(120))
        tracer = Tracer()
        observe_stream_window(tracer, result, prefix="probe")
        snapshot = tracer.metrics.snapshot()
        assert snapshot["counters"]["probe.windows_closed"] == 1
        assert (
            snapshot["counters"]["probe.window_records"]
            == result.n_records
        )
        assert snapshot["gauges"]["probe.watermark"] == result.watermark
        histogram = snapshot["histograms"]["probe.lag"]
        assert histogram["count"] == result.n_records
