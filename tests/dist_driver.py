"""Sacrificial subprocess for the sharded kill/resume acceptance tests.

The sharded runtime's resilience contract: kill one shard's worker
mid-matching, relaunch against the same checkpoint store, and only that
shard replays (from its engine chunk ledger) while every shard that
finished before the kill is reused from its recorded result artifact —
with final output byte-identical to a run that never died.

Like ``tests/recovery_driver.py``, the kill fault (``os._exit(137)``)
can only be exercised from a process built to die, and the ``inline``
shard backend makes its timeline deterministic: shards run in shard
order, so a kill at shard *s*, chunk *c* leaves shards ``< s``
persisted, exactly ``c`` chunks of shard *s* checkpointed, and shards
``> s`` untouched.

The corpus/kill-point helpers (:func:`make_corpus`,
:func:`choose_kill`) are importable by the tests, so a property test
can pick a kill point it knows is mid-run before launching anything.

Modes
-----

``serial``
    The plain single-process :func:`repro.linkage.resolve` over the
    same corpus — the differential baseline.
``sharded``
    :func:`repro.dist.sharded_resolve` with the inline backend; with
    ``--kill-shard``/``--kill-chunk`` it dies with exit status 137,
    without them it runs (or resumes) to completion and prints a JSON
    document with the merged result plus per-shard forensics.
"""

import argparse
import json
import math
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.dist import sharded_resolve  # noqa: E402
from repro.dist.runtime import (  # noqa: E402
    _canonical_pairs,
    _partition_pairs,
)
from repro.linkage import ThresholdClassifier, resolve  # noqa: E402
from repro.linkage.blocking.token import TokenBlocker  # noqa: E402
from repro.linkage.comparison import (  # noqa: E402
    default_product_comparator,
)
from repro.obs import Tracer  # noqa: E402
from repro.resilience import ResilienceConfig, RetryPolicy  # noqa: E402
from repro.resilience.testing import FaultInjector, kill  # noqa: E402
from repro.synth import (  # noqa: E402
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


def make_corpus(n_entities: int, seed: int):
    """The shared deterministic workload of one driver invocation."""
    world = generate_world(
        WorldConfig(
            categories=("camera",), entities_per_category=n_entities, seed=seed
        )
    )
    dataset = generate_dataset(
        world, CorpusConfig(n_sources=5, seed=seed + 1)
    )
    records = list(dataset.records())
    blocker = TokenBlocker(max_block_size=40)
    comparator = default_product_comparator()
    classifier = ThresholdClassifier(0.72)
    return records, blocker, comparator, classifier


def shard_pair_counts(records, blocker, n_shards: int) -> list[int]:
    """Per-shard candidate-pair counts, exactly as the runtime shards."""
    pairs = blocker.block(records).candidate_pairs()
    buckets, __ = _partition_pairs(_canonical_pairs(pairs), n_shards)
    return [len(bucket) for bucket in buckets]


def choose_kill(records, blocker, n_shards: int, chunk_size: int):
    """A kill point guaranteed to be mid-run, or ``None``.

    Picks the shard with the most pairs (ties to the smaller id) and
    kills its second chunk — so at least one chunk is durably
    checkpointed before death and at least one is never attempted.
    Returns ``(shard, kill_chunk, n_chunks)`` or ``None`` when no
    shard spans two chunks.
    """
    counts = shard_pair_counts(records, blocker, n_shards)
    shard = max(range(n_shards), key=lambda k: (counts[k], -k))
    n_chunks = math.ceil(counts[shard] / chunk_size)
    if n_chunks < 2:
        return None
    return shard, 1, n_chunks


def _result_document(result) -> dict:
    return {
        "match_pairs": sorted(sorted(pair) for pair in result.match_pairs),
        "scored_edges": [
            [left, right, round(score, 12)]
            for left, right, score in result.scored_edges
        ],
        "clusters": sorted(sorted(cluster) for cluster in result.clusters),
        "n_candidates": result.n_candidates,
    }


def run_serial(n_entities: int, seed: int) -> dict:
    records, blocker, comparator, classifier = make_corpus(n_entities, seed)
    return _result_document(
        resolve(records, blocker, comparator, classifier)
    )


def run_sharded(
    root: str,
    n_entities: int,
    seed: int,
    n_shards: int,
    chunk_size: int,
    kill_shard,
    kill_chunk,
) -> dict:
    records, blocker, comparator, classifier = make_corpus(n_entities, seed)
    injector = None
    if kill_shard is not None:
        injector = FaultInjector(
            kill(chunk=kill_chunk, shard=kill_shard, attempts=1)
        )
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=2, base_delay=0.01),
        failure="retry",
        fault_injector=injector,
    )
    tracer = Tracer()
    run = sharded_resolve(
        records,
        blocker,
        comparator,
        classifier,
        n_shards=n_shards,
        backend="inline",
        chunk_size=chunk_size,
        tracer=tracer,
        resilience=resilience,
        checkpoint=root,
    )
    counters = tracer.report().metrics.get("counters", {})
    document = _result_document(run.result)
    document["shards"] = [
        {
            "shard": shard.shard,
            "n_pairs": shard.n_pairs,
            "n_chunks": shard.n_chunks,
            "completed_chunks": shard.completed_chunks,
            "replayed_chunks": shard.replayed_chunks,
            "resumed": shard.resumed,
        }
        for shard in run.shards
    ]
    document["counters"] = {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith(("dist.", "recovery."))
    }
    return document


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=("serial", "sharded"))
    parser.add_argument(
        "root", nargs="?", default=None, help="run-store directory"
    )
    parser.add_argument("--entities", type=int, default=24)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--chunk-size", type=int, default=64)
    parser.add_argument("--kill-shard", type=int, default=None)
    parser.add_argument("--kill-chunk", type=int, default=None)
    options = parser.parse_args()
    if options.mode == "serial":
        document = run_serial(options.entities, options.seed)
    else:
        if options.root is None:
            parser.error("sharded mode requires a run-store directory")
        document = run_sharded(
            options.root,
            options.entities,
            options.seed,
            options.shards,
            options.chunk_size,
            options.kill_shard,
            options.kill_chunk,
        )
    json.dump(document, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
