"""Tests for the fast pair-comparison engine.

Covers the three engine layers against the naive path: prepared
records must give byte-identical comparison vectors, staged early-exit
scoring must agree with full scoring at every threshold (including
exact-boundary scores, missing fields, and missing_penalty), and the
multiprocess backend must produce identical vectors and final cluster
sets to serial execution on a seeded corpus.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Record
from repro.core.pipeline import PipelineConfig
from repro.dist import run_distributed_linkage
from repro.linkage import (
    Block,
    BlockCollection,
    ParallelComparisonEngine,
    PreparedRecord,
    RecordComparator,
    FieldComparator,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    prepare_records,
    resolve,
)
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)
from repro.text import exact_similarity, jaro_winkler_similarity


@pytest.fixture(scope="module")
def corpus():
    world = generate_world(
        WorldConfig(
            categories=("camera",), entities_per_category=15, seed=3
        )
    )
    dataset = generate_dataset(
        world, CorpusConfig(n_sources=5, typo_rate=0.05, seed=4)
    )
    records = list(dataset.records())
    by_id = {record.record_id: record for record in records}
    candidates = TokenBlocker(max_block_size=60).block(
        records
    ).candidate_pairs()
    pairs = [
        (ids[0], ids[1])
        for ids in (sorted(pair) for pair in sorted(candidates, key=sorted))
    ]
    return records, by_id, pairs


class TestPreparedRecords:
    def test_prepared_vectors_byte_identical(self, corpus):
        records, by_id, pairs = corpus
        comparator = default_product_comparator()
        prepared = prepare_records(comparator, records)
        for left, right in pairs:
            naive = comparator.compare(by_id[left], by_id[right])
            fast = comparator.compare_prepared(prepared[left], prepared[right])
            assert fast == naive  # dataclass equality: ids, sims, score

    def test_prepare_keyed_by_record_id(self, corpus):
        records, __, __ = corpus
        comparator = default_product_comparator()
        prepared = prepare_records(comparator, records)
        assert set(prepared) == {record.record_id for record in records}
        assert all(
            isinstance(p, PreparedRecord) for p in prepared.values()
        )

    def test_record_pickle_roundtrip(self, corpus):
        records, __, __ = corpus
        clone = pickle.loads(pickle.dumps(records[0]))
        assert clone == records[0]

    def test_comparator_pickle_roundtrip(self):
        comparator = default_product_comparator()
        clone = pickle.loads(pickle.dumps(comparator))
        left = Record("a", "s1", {"name": "canon pro 512", "brand": "canon"})
        right = Record("b", "s2", {"name": "cannon pro 512", "brand": "canon"})
        assert clone.compare(left, right) == comparator.compare(left, right)


class TestScoreBounded:
    THRESHOLDS = (0.3, 0.5, 0.7, 0.72, 0.85, 0.95)

    def test_decisions_agree_with_full_scoring(self, corpus):
        records, by_id, pairs = corpus
        comparator = default_product_comparator()
        prepared = prepare_records(comparator, records)
        n_early = 0
        for left, right in pairs:
            full = comparator.compare(by_id[left], by_id[right])
            for threshold in self.THRESHOLDS:
                bounded = comparator.score_bounded(
                    prepared[left], prepared[right], threshold
                )
                assert bounded.is_match == (full.score >= threshold)
                if bounded.exact:
                    assert bounded.vector == full
                    assert bounded.score == full.score
                else:
                    n_early += 1
                decision_only = comparator.score_bounded(
                    prepared[left],
                    prepared[right],
                    threshold,
                    exact_scores=False,
                )
                assert decision_only.is_match == bounded.is_match
        assert n_early > 0  # the staged scorer actually skips work

    def test_accepts_raw_records(self):
        comparator = default_product_comparator()
        left = Record("a", "s1", {"name": "canon pro 512"})
        right = Record("b", "s2", {"name": "canon pro 512"})
        bounded = comparator.score_bounded(left, right, 0.7)
        assert bounded.is_match
        assert bounded.score == comparator.compare(left, right).score

    def test_boundary_score_exactly_at_threshold(self):
        comparator = RecordComparator(
            fields=[
                FieldComparator("a", exact_similarity, weight=1.0),
                FieldComparator("b", exact_similarity, weight=1.0),
            ]
        )
        left = Record("l", "s1", {"a": "same", "b": "one"})
        right = Record("r", "s2", {"a": "same", "b": "two"})
        assert comparator.compare(left, right).score == 0.5
        assert comparator.score_bounded(left, right, 0.5).is_match
        assert not comparator.score_bounded(left, right, 0.5 + 1e-6).is_match
        # well away from the boundary the staged scorer may exit early,
        # but the decision still matches full scoring
        assert not comparator.score_bounded(left, right, 0.99).is_match
        assert comparator.score_bounded(left, right, 0.01).is_match

    def test_missing_fields_excluded_like_compare(self):
        comparator = RecordComparator(
            fields=[
                FieldComparator("a", exact_similarity, weight=3.0),
                FieldComparator("b", jaro_winkler_similarity, weight=1.0),
            ]
        )
        left = Record("l", "s1", {"a": "x"})
        right = Record("r", "s2", {"a": "x", "b": "whatever"})
        full = comparator.compare(left, right)
        assert full.score == 1.0  # field b missing on the left: excluded
        bounded = comparator.score_bounded(left, right, 0.9)
        assert bounded.is_match
        assert bounded.score == full.score

    def test_all_fields_missing(self):
        comparator = RecordComparator(
            fields=[FieldComparator("a", exact_similarity)]
        )
        left = Record("l", "s1", {"z": "1"})
        right = Record("r", "s2", {"z": "2"})
        assert comparator.compare(left, right).score == 0.0
        bounded = comparator.score_bounded(left, right, 0.5)
        assert not bounded.is_match
        assert bounded.score == 0.0
        assert bounded.exact

    def test_missing_penalty_respected(self):
        for penalty in (0.0, 0.3, 1.0):
            comparator = RecordComparator(
                fields=[
                    FieldComparator("a", exact_similarity, weight=2.0),
                    FieldComparator("b", exact_similarity, weight=1.0),
                ],
                missing_penalty=penalty,
            )
            left = Record("l", "s1", {"a": "x"})
            right = Record("r", "s2", {"a": "x", "b": "y"})
            full = comparator.compare(left, right)
            for threshold in (0.1, full.score, 0.99):
                bounded = comparator.score_bounded(left, right, threshold)
                assert bounded.is_match == (full.score >= threshold)
            exact = comparator.score_bounded(left, right, full.score)
            assert exact.score == full.score

    @given(
        values=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=48, max_codepoint=122),
                max_size=12,
            ),
            min_size=4,
            max_size=4,
        ),
        threshold=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_agrees_for_arbitrary_values(self, values, threshold):
        comparator = default_product_comparator()
        left = Record(
            "l", "s1", {"name": values[0], "brand": values[1]}
        )
        right = Record(
            "r", "s2", {"name": values[2], "brand": values[3]}
        )
        full = comparator.compare(left, right)
        bounded = comparator.score_bounded(left, right, threshold)
        assert bounded.is_match == (full.score >= threshold)


class TestProcessBackend:
    @pytest.mark.slow
    def test_vectors_identical_serial_vs_process(self, corpus):
        records, by_id, pairs = corpus
        comparator = default_product_comparator()
        serial = ParallelComparisonEngine(comparator, execution="serial")
        process = ParallelComparisonEngine(
            comparator, execution="process", n_workers=2
        )
        subset = pairs[:300]
        assert process.compare_pairs(by_id, subset) == serial.compare_pairs(
            by_id, subset
        )

    @pytest.mark.slow
    def test_resolve_identical_clusters(self, corpus):
        records, __, __ = corpus
        comparator = default_product_comparator()
        classifier = ThresholdClassifier(0.72)
        blocker = TokenBlocker(max_block_size=60)
        serial = resolve(records, blocker, comparator, classifier)
        process = resolve(
            records,
            blocker,
            comparator,
            classifier,
            execution="process",
            n_workers=2,
        )
        assert process.match_pairs == serial.match_pairs
        assert process.clusters == serial.clusters
        assert process.scored_edges == serial.scored_edges

    def test_unknown_execution_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelComparisonEngine(
                default_product_comparator(), execution="threads"
            )
        with pytest.raises(ConfigurationError):
            ParallelComparisonEngine(
                default_product_comparator(), n_workers=0
            )
        with pytest.raises(ConfigurationError):
            PipelineConfig(execution="threads")

    @pytest.mark.slow
    def test_serial_and_process_counters_identical(self, corpus):
        from repro.obs import Tracer

        records, by_id, pairs = corpus
        comparator = default_product_comparator()
        classifier = ThresholdClassifier(0.72)
        subset = pairs[:300]
        counters = {}
        for mode, n_workers in (("serial", None), ("process", 2)):
            tracer = Tracer()
            engine = ParallelComparisonEngine(
                comparator,
                execution=mode,
                n_workers=n_workers,
                tracer=tracer,
            )
            engine.match_pairs(by_id, subset, classifier)
            counters[mode] = tracer.metrics.snapshot()["counters"]
        # Comparison outcomes must not depend on the backend; only the
        # per-worker prepared caches may legitimately differ.
        for name in (
            "engine.pairs_total",
            "engine.pairs_matched",
            "engine.pairs_early_exit",
        ):
            assert counters["serial"][name] == counters["process"][name]
        assert counters["serial"]["engine.pairs_total"] == len(subset)
        assert counters["serial"]["engine.pairs_early_exit"] > 0

    def test_match_pairs_skips_unknown_ids(self, corpus):
        records, by_id, __ = corpus
        engine = ParallelComparisonEngine(default_product_comparator())
        known = records[0].record_id
        run = engine.match_pairs(
            by_id,
            [(known, "missing/0"), ("missing/1", "missing/2")],
            ThresholdClassifier(0.5),
        )
        assert run.n_pairs == 0
        assert run.match_pairs == set()


class TestDistributedMemoization:
    @pytest.fixture(scope="class")
    def overlapping(self, request):
        world = generate_world(
            WorldConfig(
                categories=("camera",), entities_per_category=12, seed=3
            )
        )
        dataset = generate_dataset(
            world, CorpusConfig(n_sources=4, seed=5)
        )
        records = list(dataset.records())
        ids = [record.record_id for record in records]
        # Two overlapping blocks duplicate every pair of the shared
        # prefix — exactly the cross-block redundancy MapReduce ER pays.
        blocks = BlockCollection(
            [
                Block("left", tuple(ids[: len(ids) * 2 // 3])),
                Block("right", tuple(ids[len(ids) // 3 :])),
            ]
        )
        return records, blocks

    def test_duplicated_pairs_scored_once(self, overlapping):
        records, blocks = overlapping
        comparator = default_product_comparator()
        classifier = ThresholdClassifier(0.72)
        memoized = run_distributed_linkage(
            records, blocks, comparator, classifier, "naive", 3
        )
        raw = run_distributed_linkage(
            records, blocks, comparator, classifier, "naive", 3,
            memoize=False,
        )
        assert memoized.match_pairs == raw.match_pairs
        assert memoized.n_unique_comparisons < memoized.n_comparisons
        assert raw.n_comparisons == memoized.n_comparisons

    def test_strategies_report_same_unique_count(self, overlapping):
        records, blocks = overlapping
        comparator = default_product_comparator()
        classifier = ThresholdClassifier(0.72)
        runs = [
            run_distributed_linkage(
                records, blocks, comparator, classifier, strategy, 4
            )
            for strategy in ("naive", "blocksplit", "pairrange")
        ]
        assert len({run.n_unique_comparisons for run in runs}) == 1
        assert (
            runs[0].match_pairs
            == runs[1].match_pairs
            == runs[2].match_pairs
        )

    @pytest.mark.slow
    def test_process_execution_matches_serial(self, overlapping):
        records, blocks = overlapping
        comparator = default_product_comparator()
        classifier = ThresholdClassifier(0.72)
        serial = run_distributed_linkage(
            records, blocks, comparator, classifier, "blocksplit", 4
        )
        process = run_distributed_linkage(
            records, blocks, comparator, classifier, "blocksplit", 4,
            execution="process", n_workers=2,
        )
        assert process.match_pairs == serial.match_pairs
