"""Tests for probabilistic mediated schemas and query answering."""

import pytest

from repro.core import ConfigurationError
from repro.schema import (
    answer_with_pschema,
    answer_with_schema,
    answer_without_alignment,
    build_mediated_schema,
    build_probabilistic_mediated_schema,
    cell_quality,
    true_answer_cells,
)
from repro.schema.probabilistic import _top_k_subsets
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)


@pytest.fixture(scope="module")
def dataset():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=50, seed=2)
    )
    return generate_dataset(
        world,
        CorpusConfig(n_sources=10, dialect_noise=0.7, seed=7),
    )


class TestTopKSubsets:
    def test_empty(self):
        assert _top_k_subsets([], 4) == [(1.0, ())]

    def test_single_edge(self):
        results = _top_k_subsets([0.8], 4)
        assert results[0] == (pytest.approx(0.8), (True,))
        assert results[1] == (pytest.approx(0.2), (False,))

    def test_probabilities_descending(self):
        results = _top_k_subsets([0.9, 0.6, 0.3], 8)
        probabilities = [p for p, __ in results]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_all_subsets_enumerated(self):
        results = _top_k_subsets([0.9, 0.6, 0.3], 8)
        assert len(results) == 8
        assert len({assignment for __, assignment in results}) == 8

    def test_total_probability_is_one(self):
        results = _top_k_subsets([0.7, 0.4], 4)
        assert sum(p for p, __ in results) == pytest.approx(1.0)

    def test_best_assignment_is_mode(self):
        results = _top_k_subsets([0.9, 0.2], 1)
        assert results[0][1] == (True, False)


class TestProbabilisticSchema:
    def test_candidates_normalized(self, dataset):
        pschema = build_probabilistic_mediated_schema(dataset)
        total = sum(c.probability for c in pschema.candidates)
        assert total == pytest.approx(1.0)

    def test_most_probable_first_class(self, dataset):
        pschema = build_probabilistic_mediated_schema(dataset)
        best = pschema.most_probable()
        assert len(best) >= 1

    def test_invalid_thresholds(self, dataset):
        with pytest.raises(ConfigurationError):
            build_probabilistic_mediated_schema(
                dataset, certain_threshold=0.4, uncertain_threshold=0.6
            )

    def test_mapping_probability_bounds(self, dataset):
        pschema = build_probabilistic_mediated_schema(dataset)
        schema = pschema.most_probable()
        mediated = schema.attributes[0]
        if len(mediated.members) >= 2:
            p = pschema.mapping_probability(
                mediated.members[0], mediated.members[1]
            )
            assert 0.0 <= p <= 1.0


class TestQueryAnswering:
    def test_true_cells_nonempty(self, dataset):
        cells = true_answer_cells(dataset, "weight")
        assert cells

    def test_schema_answers_beat_no_alignment(self, dataset):
        actual = true_answer_cells(dataset, "weight")
        schema = build_mediated_schema(dataset, threshold=0.6)
        aligned = cell_quality(
            answer_with_schema(dataset, schema, "weight"), actual
        )
        baseline = cell_quality(
            answer_without_alignment(dataset, "weight"), actual
        )
        assert aligned.f1 >= baseline.f1

    def test_pschema_recall_geq_deterministic(self, dataset):
        actual = true_answer_cells(dataset, "weight")
        pschema = build_probabilistic_mediated_schema(
            dataset, certain_threshold=0.8, uncertain_threshold=0.45
        )
        deterministic = pschema.most_probable()
        det_cells = answer_with_schema(dataset, deterministic, "weight")
        prob_cells = set(
            answer_with_pschema(
                dataset, pschema, "weight", min_probability=0.2
            )
        )
        det_quality = cell_quality(det_cells, actual)
        prob_quality = cell_quality(prob_cells, actual)
        assert prob_quality.recall >= det_quality.recall - 1e-9

    def test_pschema_scores_in_range(self, dataset):
        pschema = build_probabilistic_mediated_schema(dataset)
        scored = answer_with_pschema(dataset, pschema, "color")
        assert all(0.0 <= p <= 1.0 + 1e-9 for p in scored.values())
