"""Unit tests for world generation and vocabularies."""

import random

import pytest

from repro.core import ConfigurationError
from repro.synth import WorldConfig, builtin_catalog, category, generate_world
from repro.synth.world import zipf_weights


class TestVocab:
    def test_catalog_has_expected_categories(self):
        catalog = builtin_catalog()
        assert {"camera", "notebook", "headphone", "book", "flight"} <= set(
            catalog
        )

    def test_unknown_category_raises(self):
        with pytest.raises(ConfigurationError):
            category("spaceship")

    def test_every_category_has_identifier(self):
        for vocab in builtin_catalog().values():
            kinds = [spec.kind for spec in vocab.attributes]
            assert "identifier" in kinds

    def test_head_and_tail_split(self):
        vocab = category("camera")
        heads = vocab.head_attributes()
        tails = vocab.tail_attributes()
        assert heads and tails
        assert set(heads) | set(tails) == set(vocab.attributes)

    def test_dialects_include_variants(self):
        vocab = category("notebook")
        spec = vocab.spec("screen size")
        assert len(spec.dialects) >= 2

    def test_draw_categorical_value_in_pool(self):
        vocab = category("camera")
        spec = vocab.spec("color")
        rng = random.Random(1)
        for _ in range(10):
            assert spec.draw_true_value(rng, 0) in spec.values

    def test_draw_numeric_value_in_range(self):
        vocab = category("camera")
        spec = vocab.spec("resolution")
        rng = random.Random(1)
        value = float(spec.draw_true_value(rng, 0).split()[0])
        assert spec.low <= value <= spec.high

    def test_identifier_is_per_entity(self):
        vocab = category("camera")
        spec = vocab.spec("product id")
        rng = random.Random(1)
        id_a = spec.draw_true_value(rng, 1)
        id_b = spec.draw_true_value(rng, 2)
        assert id_a != id_b
        assert "000001" in id_a


class TestZipf:
    def test_weights_sum_to_one(self):
        weights = zipf_weights(100, 1.0)
        assert sum(weights) == pytest.approx(1.0)

    def test_weights_monotone(self):
        weights = zipf_weights(10, 1.0)
        assert weights == sorted(weights, reverse=True)

    def test_zero_exponent_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert all(w == pytest.approx(0.25) for w in weights)


class TestGenerateWorld:
    def test_deterministic(self):
        config = WorldConfig(entities_per_category=20, seed=5)
        w1 = generate_world(config)
        w2 = generate_world(config)
        assert [e.entity_id for e in w1.entities] == [
            e.entity_id for e in w2.entities
        ]
        assert [dict(e.true_values) for e in w1.entities] == [
            dict(e.true_values) for e in w2.entities
        ]

    def test_seed_changes_world(self):
        w1 = generate_world(WorldConfig(entities_per_category=20, seed=5))
        w2 = generate_world(WorldConfig(entities_per_category=20, seed=6))
        assert [dict(e.true_values) for e in w1.entities] != [
            dict(e.true_values) for e in w2.entities
        ]

    def test_entity_counts(self):
        world = generate_world(
            WorldConfig(categories=("camera", "book"), entities_per_category=7)
        )
        assert len(world) == 14
        assert len(world.entities_in("camera")) == 7

    def test_every_entity_has_all_attributes(self):
        world = generate_world(WorldConfig(entities_per_category=5))
        for entity in world.entities:
            vocab = world.vocabulary(entity.category)
            for spec in vocab.attributes:
                assert spec.name in entity.true_values

    def test_names_unique_within_category(self):
        world = generate_world(WorldConfig(entities_per_category=50))
        for cat in world.categories:
            names = [e.name for e in world.entities_in(cat)]
            assert len(names) == len(set(names))

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(categories=())
        with pytest.raises(ConfigurationError):
            WorldConfig(entities_per_category=0)
        with pytest.raises(ConfigurationError):
            WorldConfig(zipf_exponent=-1)

    def test_entity_lookup(self):
        world = generate_world(WorldConfig(entities_per_category=3))
        entity = world.entities[0]
        assert world.entity(entity.entity_id) is entity
        with pytest.raises(ConfigurationError):
            world.entity("ghost")

    def test_true_values_read_only(self):
        world = generate_world(WorldConfig(entities_per_category=3))
        with pytest.raises(TypeError):
            world.entities[0].true_values["color"] = "purple"
