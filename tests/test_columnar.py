"""Tests for the columnar block representation and batch kernels.

The contract under test is bit-identity: every kernel output — full
comparison vectors, staged match decisions, early-exit counts — must
equal the scalar prepared-record path byte for byte, on adversarial
Hypothesis corpora covering every similarity the comparator registry
ships, across serial/process/stream execution, through ``resolve`` and
the pipeline, out of core, and across a kill-and-resume checkpoint
boundary. The satellite similarity-helper fixes (pre-tokenized input
handling in ``_as_set``/``_as_counts``/``_numeric_token_set``) are
pinned here too.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Record
from repro.core.pipeline import BDIPipeline, PipelineConfig
from repro.columnar import (
    ColumnarBlock,
    block_from_bytes,
    block_to_bytes,
    build_block,
    column_kind,
    match_block,
    match_id_pairs,
    score_block,
    score_id_pairs,
)
from repro.columnar.block import (
    KIND_COUNTS,
    KIND_EXACT,
    KIND_MEASUREMENT,
    KIND_SCALAR,
    KIND_TOKEN_SET,
)
from repro.linkage import (
    FieldComparator,
    ParallelComparisonEngine,
    RecordComparator,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    prepare_records,
    resolve,
)
from repro.obs import Tracer
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)
from repro.text import (
    cosine_similarity,
    dice_similarity,
    exact_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    measurement_similarity,
    monge_elkan_similarity,
    overlap_coefficient,
    product_name_similarity,
)
from repro.text.similarity import _as_set, _numeric_token_set


def _suffix_equal(a: str, b: str) -> float:
    """An unregistered similarity: exercises the KIND_SCALAR fallback."""
    return 1.0 if a[-1:] == b[-1:] else 0.0


#: One field per registered similarity plus one unknown callable — a
#: block built from this comparator materializes every column kind.
ALL_FIELDS = (
    ("pid", exact_similarity, 1.5),
    ("size", measurement_similarity, 1.0),
    ("tags", jaccard_similarity, 0.5),
    ("words", dice_similarity, 0.75),
    ("kws", overlap_coefficient, 0.5),
    ("desc", cosine_similarity, 1.0),
    ("code", jaro_similarity, 0.5),
    ("brand", jaro_winkler_similarity, 1.0),
    ("sku", levenshtein_similarity, 0.5),
    ("title", monge_elkan_similarity, 1.0),
    ("name", product_name_similarity, 2.0),
    ("suffix", _suffix_equal, 0.25),
)


def _all_kinds_comparator(missing_penalty: float = 0.0) -> RecordComparator:
    return RecordComparator(
        fields=[
            FieldComparator(attr, sim, weight=weight)
            for attr, sim, weight in ALL_FIELDS
        ],
        missing_penalty=missing_penalty,
    )


_WORDS = st.text(
    alphabet="abcxyz0123589 éµ-.", min_size=0, max_size=24
)
_MEASUREMENT = st.one_of(
    _WORDS,
    st.builds(
        "{:.2f} {}".format,
        st.floats(0.01, 999.0, allow_nan=False),
        st.sampled_from(["in", "cm", "mm", "g", "kg", "lb", "hz"]),
    ),
)


@st.composite
def _record_batches(draw):
    """3–7 records over the all-kinds schema, attributes dropping out."""
    n = draw(st.integers(min_value=3, max_value=7))
    records = []
    for i in range(n):
        attributes = {}
        for attr, __, __w in ALL_FIELDS:
            strategy = _MEASUREMENT if attr == "size" else _WORDS
            value = draw(st.one_of(st.none(), strategy))
            if value is not None:
                attributes[attr] = value
        records.append(Record(f"r{i}", f"s{i % 3}", attributes))
    return records


def _all_pairs(records):
    ids = [record.record_id for record in records]
    return [
        (ids[i], ids[j])
        for i in range(len(ids))
        for j in range(i + 1, len(ids))
    ]


class TestKernelScalarEquality:
    """Hypothesis: kernels == scalar path for every registered similarity."""

    @given(records=_record_batches())
    @settings(max_examples=60, deadline=None)
    def test_score_vectors_byte_identical(self, records):
        comparator = _all_kinds_comparator()
        prepared = prepare_records(comparator, records)
        block = build_block(comparator, records)
        pairs = _all_pairs(records)
        vectors, __ = score_id_pairs(block, pairs)
        for (left, right), vector in zip(pairs, vectors):
            assert vector == comparator.compare_prepared(
                prepared[left], prepared[right]
            )

    @given(
        records=_record_batches(),
        threshold=st.sampled_from((0.0, 0.3, 0.5, 0.7, 0.85, 1.0)),
        penalty=st.sampled_from((0.0, 0.1)),
    )
    @settings(max_examples=60, deadline=None)
    def test_match_decisions_identical(self, records, threshold, penalty):
        comparator = _all_kinds_comparator(missing_penalty=penalty)
        prepared = prepare_records(comparator, records)
        block = build_block(comparator, records)
        pairs = _all_pairs(records)
        matches, __, stats = match_id_pairs(block, pairs, threshold)
        expected = []
        for left, right in pairs:
            bounded = comparator.score_bounded(
                prepared[left], prepared[right], threshold, exact_scores=True
            )
            if bounded.is_match:
                expected.append((left, right, bounded.score))
        assert matches == expected
        assert (
            stats["columnar.pairs_vectorized"]
            + stats["columnar.pairs_residual"]
        ) == len(pairs)

    @given(records=_record_batches())
    @settings(max_examples=30, deadline=None)
    def test_serialized_block_scores_identically(self, records):
        comparator = _all_kinds_comparator()
        block = build_block(comparator, records)
        clone = block_from_bytes(block_to_bytes(block))
        pairs = _all_pairs(records)
        assert score_id_pairs(clone, pairs)[0] == score_id_pairs(block, pairs)[0]
        assert match_id_pairs(clone, pairs, 0.7) == match_id_pairs(
            block, pairs, 0.7
        )


class TestBlockStructure:
    def test_column_kind_registry(self):
        assert column_kind(exact_similarity) == KIND_EXACT
        assert column_kind(jaccard_similarity) == KIND_TOKEN_SET
        assert column_kind(dice_similarity) == KIND_TOKEN_SET
        assert column_kind(overlap_coefficient) == KIND_TOKEN_SET
        assert column_kind(cosine_similarity) == KIND_COUNTS
        assert column_kind(measurement_similarity) == KIND_MEASUREMENT
        for similarity in (
            jaro_similarity,
            jaro_winkler_similarity,
            levenshtein_similarity,
            monge_elkan_similarity,
            product_name_similarity,
            _suffix_equal,
        ):
            assert column_kind(similarity) == KIND_SCALAR

    def test_block_exposes_deterministic_nbytes(self):
        records = [
            Record("a", "s1", {"name": "canon pro 512", "tags": "x y"}),
            Record("b", "s2", {"name": "cannon pro 512"}),
        ]
        comparator = _all_kinds_comparator()
        first = build_block(comparator, records)
        second = build_block(comparator, records)
        assert isinstance(first, ColumnarBlock)
        assert first.nbytes == second.nbytes > 0
        from repro.outofcore import columnar_block_nbytes

        assert columnar_block_nbytes(first) == first.nbytes

    def test_sugar_apis_cover_cross_products(self):
        records = [
            Record("a", "s1", {"name": "canon pro 512"}),
            Record("b", "s2", {"name": "canon pro 512"}),
            Record("c", "s3", {"name": "nikon z50"}),
        ]
        comparator = default_product_comparator()
        block = build_block(comparator, records)
        vectors = score_block(block, left_ids=["a"])
        assert [(v.left_id, v.right_id) for v in vectors] == [
            ("a", "a"), ("a", "b"), ("a", "c")
        ]
        matches, __ = match_block(block, 0.7, left_ids=["a"], right_ids=["b"])
        assert [(left, right) for left, right, __s in matches] == [("a", "b")]

    def test_unknown_record_id_raises(self):
        block = build_block(
            default_product_comparator(),
            [Record("a", "s1", {"name": "x"})],
        )
        with pytest.raises(KeyError):
            score_id_pairs(block, [("a", "missing")])


class TestSimilarityHelperFixes:
    """Pins for the pre-tokenized-input bugfix in the text layer."""

    def test_token_set_metrics_accept_pretokenized(self):
        tokens = ["canon", "pro", "512"]
        assert jaccard_similarity(tokens, "canon pro 512") == 1.0
        assert dice_similarity(tokens, ("canon", "pro")) == 0.8
        assert overlap_coefficient(tokens, {"canon"}) == 1.0

    def test_cosine_accepts_pretokenized_and_counters(self):
        # Historically crashed: the list was handed to the tokenizer.
        assert cosine_similarity(
            ["a", "a", "b"], Counter({"a": 2, "b": 1})
        ) == pytest.approx(1.0)
        assert cosine_similarity(["a", "a"], "a a") == 1.0
        assert cosine_similarity([], "") == 1.0
        assert cosine_similarity([], "a") == 0.0

    def test_as_set_preserves_tokens_verbatim(self):
        assert _as_set(["", "É", "a"]) == {"", "É", "a"}
        assert _as_set("Canon PRO-512") == {"canon", "pro", "512"}
        assert jaccard_similarity([""], [""]) == 1.0

    def test_numeric_token_set_uses_unicode_digits(self):
        assert _numeric_token_set(["٣", "abc", "", "mk2"]) == {"٣", "mk2"}


@pytest.fixture(scope="module")
def corpus():
    world = generate_world(
        WorldConfig(categories=("camera",), entities_per_category=15, seed=3)
    )
    dataset = generate_dataset(
        world, CorpusConfig(n_sources=5, typo_rate=0.05, seed=4)
    )
    records = list(dataset.records())
    by_id = {record.record_id: record for record in records}
    candidates = TokenBlocker(max_block_size=60).block(records).candidate_pairs()
    pairs = [
        (ids[0], ids[1])
        for ids in (sorted(pair) for pair in sorted(candidates, key=sorted))
    ]
    return dataset, records, by_id, pairs


CLASSIFIER = ThresholdClassifier(0.7)


def _columnar_engine(execution="serial", **kwargs):
    return ParallelComparisonEngine(
        default_product_comparator(),
        execution=execution,
        representation="columnar",
        **kwargs,
    )


class TestEngineIntegration:
    def test_rejects_unknown_representation(self):
        with pytest.raises(ConfigurationError):
            ParallelComparisonEngine(
                default_product_comparator(), representation="arrow"
            )

    def test_serial_match_identical_to_dict(self, corpus):
        __, __, by_id, pairs = corpus
        reference = ParallelComparisonEngine(
            default_product_comparator()
        ).match_pairs(by_id, pairs, CLASSIFIER)
        run = _columnar_engine().match_pairs(by_id, pairs, CLASSIFIER)
        assert run.representation == "columnar"
        assert run.match_pairs == reference.match_pairs
        assert run.scored_edges == reference.scored_edges

    def test_serial_vectors_identical_to_dict(self, corpus):
        __, __, by_id, pairs = corpus
        reference = ParallelComparisonEngine(
            default_product_comparator()
        ).compare_pairs(by_id, pairs)
        assert _columnar_engine().compare_pairs(by_id, pairs) == reference

    def test_counters_and_gauges_published(self, corpus):
        __, __, by_id, pairs = corpus
        tracer = Tracer()
        run = _columnar_engine(tracer=tracer).match_pairs(
            by_id, pairs, CLASSIFIER
        )
        metrics = tracer.report().metrics
        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
        assert (
            counters["columnar.pairs_vectorized"]
            + counters["columnar.pairs_residual"]
        ) == len(pairs)
        assert gauges["columnar.block_bytes"] > 0
        assert run.n_early_exit == counters["engine.pairs_early_exit"]

        dict_tracer = Tracer()
        ParallelComparisonEngine(
            default_product_comparator(), tracer=dict_tracer
        ).match_pairs(by_id, pairs, CLASSIFIER)
        dict_gauges = dict_tracer.report().metrics.get("gauges", {})
        assert dict_gauges["engine.prepared_bytes"] > 0

    def test_stream_serial_identical_to_plain(self, corpus):
        from repro.outofcore import MemoryBudget

        __, __, by_id, pairs = corpus
        plain = _columnar_engine().match_pairs(by_id, pairs, CLASSIFIER)
        streamed = _columnar_engine().match_pairs_stream(
            by_id, iter(pairs), CLASSIFIER, budget=MemoryBudget(1 << 26)
        )
        assert streamed.match_pairs == plain.match_pairs
        assert streamed.scored_edges == plain.scored_edges
        assert streamed.n_early_exit == plain.n_early_exit

    @pytest.mark.slow
    def test_process_identical_to_serial(self, corpus):
        __, __, by_id, pairs = corpus
        serial = _columnar_engine().match_pairs(by_id, pairs, CLASSIFIER)
        process = _columnar_engine("process", n_workers=2).match_pairs(
            by_id, pairs, CLASSIFIER
        )
        assert process.match_pairs == serial.match_pairs
        assert process.scored_edges == serial.scored_edges
        assert process.n_early_exit == serial.n_early_exit

    @pytest.mark.slow
    def test_stream_process_identical_to_serial(self, corpus):
        from repro.outofcore import MemoryBudget

        __, __, by_id, pairs = corpus
        serial = _columnar_engine().match_pairs(by_id, pairs, CLASSIFIER)
        streamed = _columnar_engine("process", n_workers=2).match_pairs_stream(
            by_id, iter(pairs), CLASSIFIER, budget=MemoryBudget(1 << 26)
        )
        assert streamed.match_pairs == serial.match_pairs
        assert streamed.scored_edges == serial.scored_edges
        assert streamed.n_early_exit == serial.n_early_exit


class TestResolveAndPipeline:
    def test_resolve_parity(self, corpus):
        __, records, __, __ = corpus
        blocker = TokenBlocker(max_block_size=60)
        comparator = default_product_comparator()
        reference = resolve(records, blocker, comparator, CLASSIFIER)
        columnar = resolve(
            records, blocker, comparator, CLASSIFIER,
            representation="columnar",
        )
        assert columnar.match_pairs == reference.match_pairs
        assert columnar.scored_edges == reference.scored_edges
        assert columnar.clusters == reference.clusters

    def test_resolve_out_of_core_parity(self, corpus):
        __, records, __, __ = corpus
        blocker = TokenBlocker(max_block_size=60)
        comparator = default_product_comparator()
        reference = resolve(records, blocker, comparator, CLASSIFIER)
        bounded = resolve(
            records, blocker, comparator, CLASSIFIER,
            representation="columnar",
            memory_budget=256 * 1024,
        )
        assert bounded.match_pairs == reference.match_pairs
        assert bounded.clusters == reference.clusters

    def test_tight_budget_binds_for_columnar_chunks(self, corpus):
        # Chunks whose block would overflow the budget split in half
        # until each sub-block fits, so peak tracked bytes stay at or
        # under the limit — with output still byte-identical.
        from repro.outofcore import MemoryBudget

        __, records, __, __ = corpus
        blocker = TokenBlocker(max_block_size=60)
        comparator = default_product_comparator()
        reference = resolve(records, blocker, comparator, CLASSIFIER)
        budget = MemoryBudget(16 * 1024)
        bounded = resolve(
            records, blocker, comparator, CLASSIFIER,
            representation="columnar",
            memory_budget=budget,
        )
        assert bounded.match_pairs == reference.match_pairs
        assert bounded.scored_edges == reference.scored_edges
        assert bounded.clusters == reference.clusters
        assert budget.peak <= budget.limit
        assert budget.spill_count > 0

    def test_pipeline_config_validates_representation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(representation="arrow")

    def test_pipeline_parity(self, corpus):
        dataset, __, __, __ = corpus
        reference = BDIPipeline(PipelineConfig()).run(dataset)
        columnar = BDIPipeline(
            PipelineConfig(representation="columnar")
        ).run(dataset)
        assert columnar.clusters == reference.clusters
        assert columnar.entity_table == reference.entity_table
        assert columnar.fusion.chosen == reference.fusion.chosen


class TestCheckpointResume:
    def test_aborted_columnar_run_resumes_identically(self, corpus, tmp_path):
        from repro.recovery import RunStore
        from repro.resilience import (
            ChunkExecutionError,
            ResilienceConfig,
            RetryPolicy,
        )
        from repro.resilience.testing import FaultInjector, crash

        __, __, by_id, pairs = corpus
        baseline = _columnar_engine(chunk_size=500).match_pairs(
            by_id, pairs, CLASSIFIER
        )
        chaos = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
            failure="fail",
            fault_injector=FaultInjector(crash(chunk=2)),
        )
        with pytest.raises(ChunkExecutionError):
            _columnar_engine(
                chunk_size=500,
                resilience=chaos,
                checkpoint=RunStore(tmp_path),
            ).match_pairs(by_id, pairs, CLASSIFIER)

        tracer = Tracer()
        resumed = _columnar_engine(
            chunk_size=500, checkpoint=RunStore(tmp_path), tracer=tracer
        ).match_pairs(by_id, pairs, CLASSIFIER)
        assert resumed.match_pairs == baseline.match_pairs
        assert resumed.scored_edges == baseline.scored_edges
        counters = tracer.report().metrics.get("counters", {})
        assert counters["recovery.chunks_replayed"] == 2

    def test_dict_checkpoint_resumable_by_columnar(self, corpus, tmp_path):
        # Chunk artifacts carry plain match tuples, not representation
        # internals, so a run may switch layouts across a resume.
        from repro.recovery import RunStore

        __, __, by_id, pairs = corpus
        baseline = _columnar_engine(chunk_size=500).match_pairs(
            by_id, pairs, CLASSIFIER
        )
        ParallelComparisonEngine(
            default_product_comparator(),
            chunk_size=500,
            checkpoint=RunStore(tmp_path),
        ).match_pairs(by_id, pairs, CLASSIFIER)
        tracer = Tracer()
        resumed = _columnar_engine(
            chunk_size=500, checkpoint=RunStore(tmp_path), tracer=tracer
        ).match_pairs(by_id, pairs, CLASSIFIER)
        assert resumed.match_pairs == baseline.match_pairs
        assert resumed.scored_edges == baseline.scored_edges
        counters = tracer.report().metrics.get("counters", {})
        assert counters["recovery.chunks_replayed"] > 0
