"""Unit tests for the Record data model."""

import pytest

from repro.core import DataModelError, Record


def make_record(**overrides):
    defaults = dict(
        record_id="s1/001",
        source_id="s1",
        attributes={"name": "canon pro 5", "color": "black"},
    )
    defaults.update(overrides)
    return Record(**defaults)


class TestConstruction:
    def test_basic_fields(self):
        record = make_record(timestamp=3.0)
        assert record.record_id == "s1/001"
        assert record.source_id == "s1"
        assert record.timestamp == 3.0
        assert record["color"] == "black"

    def test_empty_record_id_rejected(self):
        with pytest.raises(DataModelError):
            make_record(record_id="")

    def test_empty_source_id_rejected(self):
        with pytest.raises(DataModelError):
            make_record(source_id="")

    def test_non_string_value_rejected(self):
        with pytest.raises(DataModelError):
            make_record(attributes={"pages": 42})

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(DataModelError):
            make_record(attributes={"": "x"})

    def test_attributes_are_read_only(self):
        record = make_record()
        with pytest.raises(TypeError):
            record.attributes["color"] = "red"

    def test_mutating_input_dict_does_not_affect_record(self):
        attrs = {"name": "a"}
        record = Record("r1", "s1", attrs)
        attrs["name"] = "b"
        assert record["name"] == "a"


class TestAccessors:
    def test_get_with_default(self):
        record = make_record()
        assert record.get("missing") is None
        assert record.get("missing", "d") == "d"

    def test_contains_iter_len(self):
        record = make_record()
        assert "name" in record
        assert "missing" not in record
        assert set(iter(record)) == {"name", "color"}
        assert len(record) == 2

    def test_text_concatenates_values(self):
        record = make_record()
        text = record.text()
        assert "canon pro 5" in text
        assert "black" in text

    def test_with_attributes_returns_new_record(self):
        record = make_record()
        updated = record.with_attributes({"name": "x"})
        assert updated.record_id == record.record_id
        assert updated["name"] == "x"
        assert record["name"] == "canon pro 5"


class TestEqualityHashing:
    def test_equal_by_content(self):
        assert make_record() == make_record()

    def test_hash_consistent_with_equality(self):
        assert hash(make_record()) == hash(make_record())

    def test_unequal_on_value_change(self):
        assert make_record() != make_record(
            attributes={"name": "canon pro 5", "color": "red"}
        )

    def test_unequal_on_timestamp(self):
        assert make_record(timestamp=1.0) != make_record(timestamp=2.0)

    def test_usable_in_set(self):
        assert len({make_record(), make_record()}) == 1
