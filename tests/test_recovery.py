"""Tests for durable checkpointing and crash-resumable runs.

Three layers of proof, from the store up:

1. **Store semantics** — atomic artifacts, checksums, corruption
   treated as absence, the fingerprint guard, the stage ledger.
2. **In-process resume** — engine chunk replay, solver mid-convergence
   resume, and full pipeline stage skipping all reproduce an
   uninterrupted run exactly, with the ``recovery.*`` counters
   accounting for every skip.
3. **Real process death** (``slow``) — ``tests/recovery_driver.py`` is
   launched as a subprocess, murdered via the ``kill`` fault
   (``os._exit(137)``, no unwinding) at a deterministic chunk or
   iteration boundary, and relaunched; the resumed run's JSON output
   must equal a never-killed run's byte for byte.
"""

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.core import ConfigurationError, Dataset, Record, Source
from repro.core.pipeline import BDIPipeline, PipelineConfig
from repro.fusion import AccuCopy, Claim, ClaimSet, TruthFinder
from repro.linkage import (
    FieldComparator,
    ParallelComparisonEngine,
    RecordComparator,
    ThresholdClassifier,
    fit_fellegi_sunter,
)
from repro.obs import Tracer
from repro.recovery import (
    CheckpointMismatchError,
    RunStore,
    claims_signature,
    config_fingerprint,
    dataset_fingerprint,
)
from repro.resilience import (
    DeadLetterEntry,
    DeadLetterLog,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.testing import KILL_EXIT_CODE, FaultSpec, kill
from repro.text import exact_similarity

DRIVER = os.path.join(os.path.dirname(__file__), "recovery_driver.py")


def _counters(tracer):
    return tracer.report().metrics.get("counters", {})


# --- the run store ---------------------------------------------------


class TestRunStore:
    def test_save_load_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        value = {"vectors": [1.5, 2.5], "pairs": [("a", "b")], "n": 3}
        meta = store.save("stage.schema", value)
        assert meta["key"] == "stage.schema"
        assert meta["size"] > 0
        assert store.load("stage.schema") == value

    def test_missing_key_is_none(self, tmp_path):
        store = RunStore(tmp_path, tracer=(tracer := Tracer()))
        assert store.load("nope") is None
        assert _counters(tracer)["recovery.misses"] == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        store = RunStore(tmp_path)
        store.save("a", 1)
        store.save("b", 2)
        leftovers = [
            name
            for name in os.listdir(tmp_path / "artifacts")
            if ".tmp-" in name
        ]
        assert leftovers == []

    def test_survives_reopen(self, tmp_path):
        RunStore(tmp_path).save("k", [1, 2, 3])
        assert RunStore(tmp_path).load("k") == [1, 2, 3]

    @pytest.mark.parametrize(
        "damage",
        [
            lambda raw: raw[: len(raw) // 2],  # torn write
            lambda raw: b"JUNK" + raw[4:],  # bad magic
            lambda raw: raw[:-3] + b"xyz",  # flipped payload bytes
            lambda raw: b"",  # empty file
        ],
    )
    def test_corruption_is_absence(self, tmp_path, damage):
        tracer = Tracer()
        store = RunStore(tmp_path, tracer=tracer)
        store.save("k", {"x": 1})
        (artifact,) = list((tmp_path / "artifacts").glob("*.ckpt"))
        artifact.write_bytes(damage(artifact.read_bytes()))
        assert store.load("k") is None
        assert _counters(tracer)["recovery.corrupt"] == 1

    def test_wrong_key_in_artifact_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.save("a", 1)
        (artifact,) = list((tmp_path / "artifacts").glob("*.ckpt"))
        target = store._path_for("b")  # noqa: SLF001 — simulate rename
        target.write_bytes(artifact.read_bytes())
        assert store.load("b") is None

    def test_none_is_not_storable(self, tmp_path):
        # None means "absent" to load(); a stored None round-trips to
        # a recompute, which is safe, just pointless.
        store = RunStore(tmp_path)
        store.save("k", None)
        assert store.load("k") is None

    def test_keys_and_delete(self, tmp_path):
        store = RunStore(tmp_path)
        store.save("b.two", 2)
        store.save("a.one", 1)
        assert store.keys() == ("a.one", "b.two")
        store.delete("a.one")
        store.delete("a.one")  # idempotent
        assert store.keys() == ("b.two",)

    def test_sub_view_namespacing(self, tmp_path):
        store = RunStore(tmp_path)
        engine = store.sub("engine")
        solver = store.sub("solver")
        engine.save("chunk.0", [1])
        solver.save("state", {"i": 1})
        assert engine.load("chunk.0") == [1]
        assert solver.load("chunk.0") is None
        assert engine.keys() == ("chunk.0",)
        nested = engine.sub("score")
        nested.save("chunk.1", [2])
        assert store.load("engine.score.chunk.1") == [2]

    def test_stage_ledger_order_and_refresh(self, tmp_path):
        store = RunStore(tmp_path)
        store.mark_stage("schema", "stage.schema", "abc")
        store.mark_stage("linkage", "stage.linkage", "def")
        assert store.completed_stages() == ("schema", "linkage")
        store.mark_stage("schema", "stage.schema", "ghi")  # refreshed
        assert store.completed_stages() == ("linkage", "schema")
        assert not store.completed
        store.mark_complete()
        assert RunStore(tmp_path).completed

    def test_torn_manifest_starts_fresh_ledger(self, tmp_path):
        store = RunStore(tmp_path)
        store.save("k", 42)
        store.mark_stage("schema", "k", None)
        (tmp_path / "manifest.json").write_text('{"version": 1, "ru')
        reopened = RunStore(tmp_path, tracer=(tracer := Tracer()))
        assert reopened.completed_stages() == ()
        assert _counters(tracer)["recovery.corrupt"] == 1
        # Artifacts are self-describing and survive the torn manifest.
        assert reopened.load("k") == 42


# --- fingerprints ----------------------------------------------------


class TestFingerprints:
    def test_deterministic_and_distinct(self):
        assert config_fingerprint({"a": 1}) == config_fingerprint({"a": 1})
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_dict_key_order_irrelevant(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_nonsemantic_fields_excluded(self):
        from repro.obs import ManualClock

        clock = ManualClock()
        chaos = ResilienceConfig(
            fault_injector=object(), clock=clock, sleep=clock.advance
        )
        assert config_fingerprint(chaos) == config_fingerprint(
            ResilienceConfig()
        )

    def test_semantic_fields_included(self):
        assert config_fingerprint(
            ResilienceConfig(failure="skip")
        ) != config_fingerprint(ResilienceConfig(failure="retry"))

    def test_dataset_fingerprint_tracks_content(self):
        def dataset(value):
            return Dataset(
                [Source("s", [Record("s/0", "s", {"name": value})])]
            )

        assert dataset_fingerprint(dataset("x")) == dataset_fingerprint(
            dataset("x")
        )
        assert dataset_fingerprint(dataset("x")) != dataset_fingerprint(
            dataset("y")
        )

    def test_claims_signature_order_insensitive(self):
        forward, backward = ClaimSet(), ClaimSet()
        claims = [Claim("s1", "i1", "a"), Claim("s2", "i1", "b")]
        for claim in claims:
            forward.add(claim)
        for claim in reversed(claims):
            backward.add(claim)
        assert claims_signature(forward) == claims_signature(backward)

    def test_bind_fingerprint_guard(self, tmp_path):
        store = RunStore(tmp_path)
        store.bind_fingerprint("aaa")
        store.bind_fingerprint("aaa")  # same run: fine
        with pytest.raises(CheckpointMismatchError) as excinfo:
            store.bind_fingerprint("bbb")
        assert excinfo.value.recorded == "aaa"
        assert excinfo.value.offered == "bbb"
        assert "refusing" in str(excinfo.value)
        # The guard survives reopening the directory.
        with pytest.raises(CheckpointMismatchError):
            RunStore(tmp_path, fingerprint="ccc")


# --- satellite: durable dead letters ---------------------------------


class TestDurableDeadLetter:
    def _entry(self, **overrides):
        fields = dict(
            scope="engine.chunk",
            chunk_id="3.1",
            kind="crash",
            error_type="RuntimeError",
            error="naïve café value — ₤ünïcödé",
            attempts=3,
            items=(("rä0", "rß1"), ("r2", "r3")),
            quarantined_at=12.5,
        )
        fields.update(overrides)
        return DeadLetterEntry(**fields)

    def test_durable_round_trip_non_ascii(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        log = DeadLetterLog(path=str(path))
        log.add(self._entry())
        log.add(self._entry(chunk_id="4", error="二番目のエラー"))
        restored = DeadLetterLog.from_jsonl(path.read_text("utf-8"))
        assert restored.entries == log.entries
        # Non-ASCII stays human-readable in the sink (ensure_ascii off).
        assert "café" in path.read_text("utf-8")

    def test_unpicklable_error_payload_survives(self, tmp_path):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        exc = Unpicklable("worker exploded")
        with pytest.raises(TypeError):
            pickle.dumps(exc)
        path = tmp_path / "dead.jsonl"
        log = DeadLetterLog(path=str(path))
        log.add(
            self._entry(
                error_type=type(exc).__name__,
                error=str(exc),
                items=(("a", "b"), exc),  # opaque item → repr
            )
        )
        restored = DeadLetterLog.from_jsonl(path.read_text("utf-8"))
        (entry,) = restored.entries
        assert entry.error == "worker exploded"
        assert entry.error_type == "Unpicklable"
        assert entry.items[0] == ("a", "b")
        assert "Unpicklable" in entry.items[1]

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        log = DeadLetterLog(path=str(path))
        log.add(self._entry())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"scope": "engine.chunk", "chu')  # crash-cut
        restored = DeadLetterLog.from_jsonl(path.read_text("utf-8"))
        assert restored.entries == log.entries

    def test_restore_does_not_rewrite_sink(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        log = DeadLetterLog(path=str(path))
        log.add(self._entry())
        before = path.read_text("utf-8")
        log.restore([self._entry(chunk_id="9")])
        assert len(log) == 2
        assert path.read_text("utf-8") == before

    def test_merge_is_durable(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        log = DeadLetterLog(path=str(path))
        log.merge(DeadLetterLog([self._entry(), self._entry(chunk_id="7")]))
        assert len(path.read_text("utf-8").splitlines()) == 2

    def test_memory_only_log_unchanged(self):
        log = DeadLetterLog()
        log.add(self._entry())
        assert log.path is None
        assert len(log) == 1


# --- satellite: config validation ------------------------------------


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_attempts": -2},
            {"max_attempts": 2.5},
            {"base_delay": -1.0},
            {"base_delay": float("nan")},
            {"multiplier": 0.5},
            {"max_delay": 0.05, "base_delay": 0.1},  # cap below base
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_retry_policy_rejects(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_cap_message_names_both_values(self):
        with pytest.raises(ValueError, match="backoff cap"):
            RetryPolicy(base_delay=2.0, max_delay=1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": -1.0},
            {"timeout": 0.0},
            {"timeout": float("inf")},
            {"deadline": -5.0},
            {"timeout": 10.0, "deadline": 5.0},  # deadline < timeout
            {"failure": "explode"},
        ],
    )
    def test_resilience_config_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)

    def test_validation_errors_are_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        assert issubclass(ConfigurationError, ValueError)

    def test_fault_spec_rejects_kind_and_fires(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("vaporize")
        with pytest.raises(ConfigurationError):
            FaultSpec("kill", max_fires=0)
        assert kill(chunk=2).kind == "kill"
        assert KILL_EXIT_CODE == 137


# --- in-process engine resume ----------------------------------------


def _records():
    return [
        Record(
            f"r{i}", f"s{i % 2}", {"name": f"item {i // 2}", "brand": "acme"}
        )
        for i in range(8)
    ]


def _pairs(records):
    ids = [record.record_id for record in records]
    return [
        (ids[i], ids[j])
        for i in range(len(ids))
        for j in range(i + 1, len(ids))
    ]


def _comparator():
    return RecordComparator(
        fields=[
            FieldComparator("name", exact_similarity, weight=2.0),
            FieldComparator("brand", exact_similarity, weight=1.0),
        ]
    )


CLASSIFIER = ThresholdClassifier(0.9)


def _engine(checkpoint=None, tracer=None, chunk_size=7):
    return ParallelComparisonEngine(
        _comparator(),
        execution="serial",
        n_workers=1,
        chunk_size=chunk_size,
        tracer=tracer,
        checkpoint=checkpoint,
    )


class TestEngineCheckpoint:
    def test_rerun_replays_every_chunk_identically(self, tmp_path):
        records, pairs = _records(), _pairs(_records())
        baseline = _engine().match_pairs(records, pairs, CLASSIFIER)

        tracer = Tracer()
        store = RunStore(tmp_path)
        first = _engine(store, tracer).match_pairs(records, pairs, CLASSIFIER)
        assert first.match_pairs == baseline.match_pairs
        assert first.scored_edges == baseline.scored_edges
        assert _counters(tracer)["recovery.saves"] == 4  # 4 chunks of 7

        tracer2 = Tracer()
        second = _engine(RunStore(tmp_path), tracer2).match_pairs(
            records, pairs, CLASSIFIER
        )
        assert second.match_pairs == baseline.match_pairs
        assert second.scored_edges == baseline.scored_edges
        assert second.completed_chunks == second.n_chunks == 4
        counters = _counters(tracer2)
        assert counters["recovery.chunks_replayed"] == 4
        assert "recovery.saves" not in counters

    def test_changed_pairs_invalidate_chunk_signature(self, tmp_path):
        records = _records()
        pairs = _pairs(records)
        store = RunStore(tmp_path)
        _engine(store).compare_pairs(records, pairs)

        reordered = pairs[7:14] + pairs[:7] + pairs[14:]
        tracer = Tracer()
        vectors = _engine(RunStore(tmp_path), tracer).compare_pairs(
            records, reordered
        )
        assert vectors == _engine().compare_pairs(records, reordered)
        counters = _counters(tracer)
        # Chunks 0 and 1 swapped content: both recomputed, not replayed.
        assert counters["recovery.signature_mismatch"] == 2
        assert counters["recovery.chunks_replayed"] == 2

    def test_compare_and_match_namespaces_do_not_collide(self, tmp_path):
        records, pairs = _records(), _pairs(_records())
        store = RunStore(tmp_path)
        vectors = _engine(store).compare_pairs(records, pairs)
        run = _engine(store).match_pairs(records, pairs, CLASSIFIER)
        baseline_vectors = _engine().compare_pairs(records, pairs)
        baseline_run = _engine().match_pairs(records, pairs, CLASSIFIER)
        assert vectors == baseline_vectors
        assert run.match_pairs == baseline_run.match_pairs
        assert run.scored_edges == baseline_run.scored_edges

    def test_checkpoint_accepts_directory_path(self, tmp_path):
        # resolve()/run_distributed_linkage()/the engine take a plain
        # path and open the store themselves, like BDIPipeline.run.
        from repro.linkage import TokenBlocker, resolve

        records = _records()
        baseline = resolve(
            records, TokenBlocker(), _comparator(), CLASSIFIER
        )
        first = resolve(
            records,
            TokenBlocker(),
            _comparator(),
            CLASSIFIER,
            checkpoint=str(tmp_path),
        )
        resumed = resolve(
            records,
            TokenBlocker(),
            _comparator(),
            CLASSIFIER,
            checkpoint=str(tmp_path),
        )
        assert first.clusters == baseline.clusters == resumed.clusters
        assert any(".chunk." in key for key in RunStore(tmp_path).keys())

    def test_aborted_run_resumes_from_completed_chunks(self, tmp_path):
        from repro.resilience import ChunkExecutionError
        from repro.resilience.testing import FaultInjector, crash

        records, pairs = _records(), _pairs(_records())
        baseline = _engine().match_pairs(records, pairs, CLASSIFIER)
        chaos = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
            failure="fail",
            fault_injector=FaultInjector(crash(chunk=2)),
        )

        engine = ParallelComparisonEngine(
            _comparator(),
            chunk_size=7,
            resilience=chaos,
            checkpoint=RunStore(tmp_path),
        )
        with pytest.raises(ChunkExecutionError):
            engine.match_pairs(records, pairs, CLASSIFIER)

        tracer = Tracer()
        resumed = _engine(RunStore(tmp_path), tracer).match_pairs(
            records, pairs, CLASSIFIER
        )
        assert resumed.match_pairs == baseline.match_pairs
        assert resumed.scored_edges == baseline.scored_edges
        assert _counters(tracer)["recovery.chunks_replayed"] == 2


# --- in-process solver resume ----------------------------------------


def _claims():
    claims = ClaimSet()
    for item in range(5):
        for source in range(4):
            value = "truth" if source < 3 else f"lie-{item}"
            claims.add(Claim(f"src{source}", f"item{item}", value))
    return claims


class _StopAfterSaves:
    """In-process stand-in for a kill: raise after N iteration saves."""

    class Stop(BaseException):
        pass

    def __init__(self, store, n):
        self._store, self._n, self._saves = store, n, 0

    def load(self, key):
        return self._store.load(key)

    def save(self, key, value):
        meta = self._store.save(key, value)
        self._saves += 1
        if self._saves >= self._n:
            raise self.Stop()
        return meta


class TestSolverResume:
    def test_truthfinder_resumes_identically(self, tmp_path):
        claims = _claims()
        baseline = TruthFinder(tolerance=1e-9).fuse(claims)
        store = RunStore(tmp_path)
        with pytest.raises(_StopAfterSaves.Stop):
            TruthFinder(
                tolerance=1e-9, checkpoint=_StopAfterSaves(store, 3)
            ).fuse(claims)
        tracer = Tracer()
        resumed = TruthFinder(
            tolerance=1e-9, tracer=tracer, checkpoint=store
        ).fuse(claims)
        assert resumed.chosen == baseline.chosen
        assert resumed.confidence == baseline.confidence
        assert resumed.source_accuracy == baseline.source_accuracy
        assert resumed.iterations == baseline.iterations
        assert _counters(tracer)["recovery.iterations_skipped"] == 3

    def test_truthfinder_resume_from_converged_state(self, tmp_path):
        claims = _claims()
        store = RunStore(tmp_path)
        first = TruthFinder(checkpoint=store).fuse(claims)
        tracer = Tracer()
        again = TruthFinder(tracer=tracer, checkpoint=store).fuse(claims)
        assert again.chosen == first.chosen
        assert again.confidence == first.confidence
        assert again.iterations == first.iterations
        assert "recovery.saves" not in _counters(tracer)

    def test_truthfinder_param_change_recomputes(self, tmp_path):
        claims = _claims()
        store = RunStore(tmp_path)
        TruthFinder(dampening=0.3, checkpoint=store).fuse(claims)
        baseline = TruthFinder(dampening=0.4).fuse(claims)
        resumed = TruthFinder(dampening=0.4, checkpoint=store).fuse(claims)
        assert resumed.chosen == baseline.chosen
        assert resumed.confidence == baseline.confidence
        assert resumed.iterations == baseline.iterations

    def test_accucopy_resumes_identically(self, tmp_path):
        claims = _claims()
        baseline = AccuCopy().fuse(claims)
        store = RunStore(tmp_path)
        with pytest.raises(_StopAfterSaves.Stop):
            AccuCopy(checkpoint=_StopAfterSaves(store, 2)).fuse(claims)
        resumed = AccuCopy(checkpoint=store).fuse(claims)
        assert resumed.chosen == baseline.chosen
        assert resumed.confidence == baseline.confidence
        assert resumed.source_accuracy == baseline.source_accuracy
        assert resumed.copy_probability == baseline.copy_probability
        assert resumed.iterations == baseline.iterations

    def test_em_resumes_identically(self, tmp_path):
        records, pairs = _records(), _pairs(_records())
        vectors = _engine().compare_pairs(records, pairs)
        baseline = fit_fellegi_sunter(vectors)
        store = RunStore(tmp_path)
        with pytest.raises(_StopAfterSaves.Stop):
            fit_fellegi_sunter(
                vectors, checkpoint=_StopAfterSaves(store, 2)
            )
        tracer = Tracer()
        resumed = fit_fellegi_sunter(vectors, tracer=tracer, checkpoint=store)
        assert resumed == baseline
        assert _counters(tracer)["recovery.iterations_skipped"] == 2


# --- pipeline stage ledger -------------------------------------------


def _dataset():
    sources = []
    for s in range(3):
        records = [
            Record(
                f"s{s}r{i}",
                f"src{s}",
                {
                    "title": f"widget model {i % 4} pro",
                    "brand": ["acme", "acme", "bolt"][s],
                    "price": str(10 + (i % 4)),
                },
            )
            for i in range(8)
        ]
        sources.append(Source(f"src{s}", records))
    return Dataset(sources)


PIPELINE_STAGES = ("schema", "linkage", "claims", "fusion", "entity_table")


class TestPipelineCheckpoint:
    def test_first_run_writes_full_ledger(self, tmp_path):
        pipeline = BDIPipeline(PipelineConfig(fusion="truthfinder"))
        dataset = _dataset()
        baseline = pipeline.run(dataset)
        result = pipeline.run(dataset, checkpoint=str(tmp_path))
        assert result.entity_table == baseline.entity_table
        store = RunStore(tmp_path)
        assert store.completed_stages() == PIPELINE_STAGES
        assert store.completed
        assert store.fingerprint is not None

    def test_completed_run_resumes_without_recompute(self, tmp_path):
        pipeline = BDIPipeline(PipelineConfig(fusion="truthfinder"))
        dataset = _dataset()
        baseline = pipeline.run(dataset)
        pipeline.run(dataset, checkpoint=str(tmp_path))
        tracer = Tracer()
        resumed = pipeline.run(dataset, tracer=tracer, checkpoint=str(tmp_path))
        assert resumed.entity_table == baseline.entity_table
        assert resumed.fusion.chosen == baseline.fusion.chosen
        assert resumed.clusters == baseline.clusters
        counters = _counters(tracer)
        assert counters["recovery.stages_skipped"] == len(PIPELINE_STAGES)
        assert "recovery.saves" not in counters

    def test_partial_ledger_resumes_mid_pipeline(self, tmp_path):
        pipeline = BDIPipeline(PipelineConfig(fusion="truthfinder"))
        dataset = _dataset()
        baseline = pipeline.run(dataset)
        pipeline.run(dataset, checkpoint=str(tmp_path))
        # Simulate a crash after the claims stage: truncate the ledger.
        store = RunStore(tmp_path)
        manifest = store.manifest
        manifest["stages"] = manifest["stages"][:3]
        manifest["completed"] = False
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        tracer = Tracer()
        resumed = pipeline.run(dataset, tracer=tracer, checkpoint=str(tmp_path))
        assert resumed.entity_table == baseline.entity_table
        assert resumed.fusion.chosen == baseline.fusion.chosen
        counters = _counters(tracer)
        assert counters["recovery.stages_skipped"] == 3
        assert RunStore(tmp_path).completed

    def test_config_change_refused(self, tmp_path):
        dataset = _dataset()
        BDIPipeline(PipelineConfig(fusion="truthfinder")).run(
            dataset, checkpoint=str(tmp_path)
        )
        with pytest.raises(CheckpointMismatchError):
            BDIPipeline(PipelineConfig(fusion="vote")).run(
                dataset, checkpoint=str(tmp_path)
            )

    def test_dataset_change_refused(self, tmp_path):
        pipeline = BDIPipeline(PipelineConfig(fusion="truthfinder"))
        pipeline.run(_dataset(), checkpoint=str(tmp_path))
        other = Dataset(
            [Source("sx", [Record("sx/0", "sx", {"title": "gizmo"})])]
        )
        with pytest.raises(CheckpointMismatchError):
            pipeline.run(other, checkpoint=str(tmp_path))

    def test_injected_chaos_does_not_change_fingerprint(self, tmp_path):
        # A run killed under fault injection must be resumable by the
        # same config *without* the injector: the injector (and clock)
        # are non-semantic and excluded from the fingerprint.
        from repro.resilience.testing import FaultInjector, crash

        dataset = _dataset()
        chaotic = PipelineConfig(
            fusion="truthfinder",
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                fault_injector=FaultInjector(crash(chunk=0, attempts=1)),
            ),
        )
        clean = PipelineConfig(
            fusion="truthfinder",
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2, base_delay=0.0)
            ),
        )
        BDIPipeline(chaotic).run(dataset, checkpoint=str(tmp_path))
        # Same fingerprint → valid resume, no CheckpointMismatchError.
        result = BDIPipeline(clean).run(dataset, checkpoint=str(tmp_path))
        assert result.entity_table


# --- real process death (subprocess kill/resume) ---------------------


def _run_driver(*args, expect=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(
            None,
            [
                os.path.join(os.path.dirname(DRIVER), "..", "src"),
                env.get("PYTHONPATH", ""),
            ],
        )
    )
    # Output goes to files, not pipes: a killed driver orphans its pool
    # workers, which inherit the output fds — waiting for pipe EOF
    # would hang until the workers notice the parent died. Waiting on
    # the process itself returns the moment os._exit fires.
    import tempfile

    with tempfile.TemporaryFile("w+") as out, tempfile.TemporaryFile(
        "w+"
    ) as err:
        process = subprocess.Popen(
            [sys.executable, DRIVER, *args],
            stdout=out,
            stderr=err,
            text=True,
            env=env,
        )
        try:
            returncode = process.wait(timeout=300)
        except subprocess.TimeoutExpired:
            process.kill()
            raise
        out.seek(0)
        err.seek(0)
        stdout, stderr = out.read(), err.read()
    assert returncode == expect, (
        f"driver {args} exited {returncode}, expected {expect}\n"
        f"stderr: {stderr}"
    )
    return stdout


def _payload(stdout):
    document = json.loads(stdout)
    document.pop("counters")
    return document


@pytest.mark.slow
class TestKillResume:
    """The acceptance contract: murder a real run, resume it, and the
    output is indistinguishable from a run that never died."""

    @pytest.mark.parametrize("execution", ["serial", "process"])
    def test_engine_kill_and_resume(self, tmp_path, execution):
        baseline = _run_driver(
            "engine", str(tmp_path / "base"), "--execution", execution
        )
        _run_driver(
            "engine",
            str(tmp_path / "killed"),
            "--execution",
            execution,
            "--kill-chunk",
            "2",
            expect=KILL_EXIT_CODE,
        )
        # The murdered run left chunks 0-1 durably checkpointed.
        store = RunStore(tmp_path / "killed")
        assert any("chunk" in key for key in store.keys())
        resumed = _run_driver(
            "engine", str(tmp_path / "killed"), "--execution", execution
        )
        assert _payload(resumed) == _payload(baseline)
        assert json.loads(resumed)["counters"][
            "recovery.chunks_replayed"
        ] == 2

    def test_pipeline_kill_and_resume(self, tmp_path):
        baseline = _run_driver("pipeline", str(tmp_path / "base"))
        _run_driver(
            "pipeline",
            str(tmp_path / "killed"),
            "--kill-chunk",
            "2",
            expect=KILL_EXIT_CODE,
        )
        store = RunStore(tmp_path / "killed")
        assert "schema" in store.completed_stages()
        assert not store.completed
        resumed = _run_driver("pipeline", str(tmp_path / "killed"))
        assert _payload(resumed) == _payload(baseline)
        counters = json.loads(resumed)["counters"]
        assert counters["recovery.stages_skipped"] >= 1
        assert counters["recovery.chunks_replayed"] == 2
        assert RunStore(tmp_path / "killed").completed

    def test_solver_kill_and_resume(self, tmp_path):
        baseline = _run_driver("solver", str(tmp_path / "base"))
        _run_driver(
            "solver",
            str(tmp_path / "killed"),
            "--kill-iter",
            "5",
            expect=KILL_EXIT_CODE,
        )
        resumed = _run_driver("solver", str(tmp_path / "killed"))
        assert _payload(resumed) == _payload(baseline)
        assert json.loads(resumed)["counters"][
            "recovery.iterations_skipped"
        ] == 5
