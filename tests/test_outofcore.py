"""Differential tests: out-of-core streaming vs the in-memory path.

The contract of :mod:`repro.outofcore` is *byte identity*: every
streaming path — blockers, resolve, the full pipeline with streamed
claims and fusion — must reproduce the in-memory result exactly while
keeping tracked resident bytes under the configured budget. These
tests assert that contract across synthetic worlds of varying skew,
through kill-and-resume mid-spill, and (via Hypothesis) over random
corpus × budget × chunk-size combinations.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Record
from repro.core.errors import EmptyInputError
from repro.core.pipeline import BDIPipeline, PipelineConfig
from repro.io import load_dataset, open_record_stream, save_dataset
from repro.linkage import (
    CanopyBlocker,
    ParallelComparisonEngine,
    SortedNeighborhoodBlocker,
    StandardBlocker,
    ThresholdClassifier,
    TokenBlocker,
    default_product_comparator,
    resolve,
)
from repro.obs import Tracer
from repro.outofcore import (
    ExternalPairDeduper,
    ExternalSorter,
    IndexedRecordStore,
    MemoryBudget,
    SpillSession,
    SpillableBlockIndex,
    SpillableClaimGroups,
    pair_nbytes,
    stream_accuvote,
    stream_voting,
)
from repro.recovery import RunStore
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.resilience.testing import FaultInjector, crash
from repro.synth import (
    CorpusConfig,
    WorldConfig,
    generate_dataset,
    generate_world,
)

COMPARATOR = default_product_comparator()
CLASSIFIER = ThresholdClassifier(0.6)

# Budgets small enough to force spilling on every corpus below.
TIGHT = 6_000
ROOMY = 50_000_000


def _dataset(seed=11, entities=12, sources=4, zipf=1.1):
    world = generate_world(
        WorldConfig(entities_per_category=entities, seed=seed)
    )
    return generate_dataset(
        world,
        CorpusConfig(n_sources=sources, source_size_zipf=zipf, seed=seed),
    )


def _records(seed=11, **kwargs):
    return list(_dataset(seed, **kwargs).records())


def _spill(tmp_path, limit=TIGHT, name="spill"):
    budget = MemoryBudget(limit)
    store = RunStore(tmp_path / name, durable=False)
    return SpillSession(store, budget), budget


def _block_list(collection):
    return [(block.key, block.record_ids) for block in collection.blocks]


# --- spill primitives ------------------------------------------------


class TestMemoryBudget:
    def test_tracks_peak_and_spills(self):
        budget = MemoryBudget(100)
        budget.add(60)
        budget.add(30)
        budget.remove(50)
        assert budget.tracked == 40
        assert budget.peak == 90
        assert budget.would_exceed(70)
        assert not budget.would_exceed(60)
        budget.record_spill(512)
        assert budget.spill_count == 1
        assert budget.spill_bytes == 512

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ConfigurationError):
            MemoryBudget(0)

    def test_publish_exports_gauges(self):
        tracer = Tracer()
        budget = MemoryBudget(100, tracer=tracer)
        budget.add(42)
        budget.publish()
        gauges = tracer.report().metrics.get("gauges", {})
        assert gauges["outofcore.peak_tracked_bytes"] == 42
        assert gauges["outofcore.spill_count"] == 0


class TestSpillableBlockIndex:
    def test_merged_equals_sorted_key_map(self, tmp_path):
        spill, budget = _spill(tmp_path, limit=500)
        index = SpillableBlockIndex(spill.store, spill.budget)
        expected: dict[str, list[str]] = {}
        for i in range(200):
            key, rid = f"k{i % 17:02d}", f"r{i:03d}"
            index.add(key, rid)
            expected.setdefault(key, []).append(rid)
        assert budget.spill_count > 0
        merged = list(index.merged())
        assert merged == [(key, expected[key]) for key in sorted(expected)]
        assert budget.peak <= 500

    def test_no_spill_under_roomy_budget(self, tmp_path):
        spill, budget = _spill(tmp_path, limit=ROOMY)
        index = SpillableBlockIndex(spill.store, spill.budget)
        for i in range(50):
            index.add(f"k{i % 5}", f"r{i}")
        assert list(index.merged())
        assert budget.spill_count == 0

    def test_add_after_merge_rejected(self, tmp_path):
        spill, __ = _spill(tmp_path)
        index = SpillableBlockIndex(spill.store, spill.budget)
        index.add("a", "r1")
        list(index.merged())
        with pytest.raises(RuntimeError):
            index.add("b", "r2")


class TestExternalSorter:
    def test_sorted_and_reiterable(self, tmp_path):
        spill, budget = _spill(tmp_path, limit=400)
        sorter = ExternalSorter(spill.store, spill.budget)
        items = [(i * 7919 % 101, f"v{i}") for i in range(150)]
        for item in items:
            sorter.add(item, 64)
        assert budget.spill_count > 0
        first = list(sorter.sorted_stream())
        second = list(sorter.sorted_stream())
        assert first == sorted(items)
        assert second == first

    def test_discard_removes_runs(self, tmp_path):
        spill, __ = _spill(tmp_path, limit=200)
        sorter = ExternalSorter(spill.store, spill.budget)
        for i in range(50):
            sorter.add((i,), 64)
        list(sorter.sorted_stream())
        assert sorter.n_runs > 0
        sorter.discard()
        assert sorter.n_runs == 0
        assert list(spill.store.keys()) == []


class TestExternalPairDeduper:
    def test_stream_equals_sorted_unique(self, tmp_path):
        spill, budget = _spill(tmp_path, limit=800)
        deduper = ExternalPairDeduper(spill.store, spill.budget)
        blocks = [
            [f"r{i}" for i in range(j, j + 6)] for j in range(0, 40, 3)
        ]
        for ids in blocks:
            deduper.add_block(ids)
        expected = set()
        for ids in blocks:
            for a in range(len(ids)):
                for b in range(a + 1, len(ids)):
                    expected.add(tuple(sorted((ids[a], ids[b]))))
        streamed = list(deduper.stream())
        assert streamed == sorted(expected)
        assert deduper.n_pairs == len(expected)
        assert budget.spill_count > 0
        assert budget.peak <= 800


class TestIndexedRecordStore:
    def test_matches_loaded_dataset(self, tmp_path):
        dataset = _dataset()
        stem = tmp_path / "corpus"
        save_dataset(dataset, stem)
        loaded = {r.record_id: r for r in load_dataset(stem).records()}
        store = IndexedRecordStore(
            stem.with_suffix(".records.jsonl"), MemoryBudget(TIGHT)
        )
        assert set(store) == set(loaded)
        assert len(store) == len(loaded)
        for rid, record in loaded.items():
            assert store[rid] == record
        assert [r.record_id for r in store.values()] == list(loaded)

    def test_cache_stays_under_budget(self, tmp_path):
        dataset = _dataset()
        stem = tmp_path / "corpus"
        save_dataset(dataset, stem)
        budget = MemoryBudget(3_000)
        store = IndexedRecordStore(stem.with_suffix(".records.jsonl"), budget)
        for rid in store:
            store[rid]
        assert budget.peak <= 3_000

    def test_missing_id_raises(self, tmp_path):
        dataset = _dataset()
        stem = tmp_path / "corpus"
        save_dataset(dataset, stem)
        store = IndexedRecordStore(stem.with_suffix(".records.jsonl"))
        with pytest.raises(KeyError):
            store["nope"]


class TestRecordStream:
    def test_stream_matches_load_dataset(self, tmp_path):
        dataset = _dataset()
        stem = tmp_path / "corpus"
        save_dataset(dataset, stem)
        stream = open_record_stream(stem)
        loaded = list(load_dataset(stem).records())
        assert list(stream) == loaded
        # Re-iterable: a second pass starts fresh.
        assert list(stream) == loaded


# --- streaming blockers ----------------------------------------------

def _first_value(record):
    # Synthetic sources rename attributes per dialect, so key on the
    # lexicographically smallest value: deterministic for any record.
    return min(map(str, record.attributes.values()), default="")


BLOCKERS = [
    pytest.param(lambda: TokenBlocker(max_block_size=40), id="token"),
    pytest.param(
        lambda: StandardBlocker(lambda r: _first_value(r)[:2]),
        id="standard",
    ),
    pytest.param(
        lambda: SortedNeighborhoodBlocker(_first_value, window=4),
        id="sorted-neighborhood",
    ),
]

SKEWS = [0.8, 1.1, 1.6]


class TestStreamingBlockers:
    @pytest.mark.parametrize("make_blocker", BLOCKERS)
    @pytest.mark.parametrize("zipf", SKEWS)
    def test_streamed_blocks_identical(self, tmp_path, make_blocker, zipf):
        records = _records(seed=7, zipf=zipf)
        blocker = make_blocker()
        expected = _block_list(blocker.block(records))
        spill, budget = _spill(tmp_path, limit=3_000)
        streamed = [
            (block.key, block.record_ids)
            for block in blocker.stream_blocks(records, spill)
        ]
        assert streamed == expected
        assert budget.peak <= 3_000
        assert budget.spill_count > 0

    @pytest.mark.parametrize("make_blocker", BLOCKERS)
    def test_streamed_blocks_identical_without_spilling(
        self, tmp_path, make_blocker
    ):
        records = _records(seed=8)
        blocker = make_blocker()
        expected = _block_list(blocker.block(records))
        spill, budget = _spill(tmp_path, limit=ROOMY)
        streamed = [
            (block.key, block.record_ids)
            for block in blocker.stream_blocks(records, spill)
        ]
        assert streamed == expected
        assert budget.spill_count == 0

    def test_supports_streaming_flag(self):
        assert TokenBlocker().supports_streaming
        assert not CanopyBlocker(lambda r: "k").supports_streaming

    def test_base_blocker_raises(self, tmp_path):
        spill, __ = _spill(tmp_path)
        with pytest.raises(NotImplementedError):
            list(CanopyBlocker(lambda r: "k").stream_blocks([], spill))


# --- streaming resolve -----------------------------------------------


class TestStreamingResolve:
    @pytest.mark.parametrize("zipf", SKEWS)
    def test_resolve_parity(self, tmp_path, zipf):
        records = _records(seed=5, zipf=zipf)
        blocker = TokenBlocker(max_block_size=40)
        base = resolve(records, blocker, COMPARATOR, CLASSIFIER)
        tracer = Tracer()
        streamed = resolve(
            records,
            blocker,
            COMPARATOR,
            CLASSIFIER,
            tracer=tracer,
            memory_budget=25_000,
            spill_dir=tmp_path,
        )
        assert streamed.clusters == base.clusters
        assert streamed.match_pairs == base.match_pairs
        assert streamed.scored_edges == base.scored_edges
        assert streamed.n_candidates == base.n_candidates
        gauges = tracer.report().metrics.get("gauges", {})
        assert gauges["outofcore.peak_tracked_bytes"] <= 25_000
        assert gauges["outofcore.spill_count"] > 0

    def test_resolve_parity_process_backend(self, tmp_path):
        records = _records(seed=6)
        blocker = TokenBlocker(max_block_size=40)
        base = resolve(records, blocker, COMPARATOR, CLASSIFIER)
        streamed = resolve(
            records,
            blocker,
            COMPARATOR,
            CLASSIFIER,
            execution="process",
            n_workers=2,
            memory_budget=25_000,
            spill_dir=tmp_path,
        )
        assert streamed.clusters == base.clusters
        assert streamed.scored_edges == base.scored_edges

    def test_resolve_with_candidate_pairs(self, tmp_path):
        records = _records(seed=5)
        blocker = TokenBlocker(max_block_size=40)
        pairs = blocker.block(records).candidate_pairs()
        base = resolve(
            records, blocker, COMPARATOR, CLASSIFIER, candidate_pairs=pairs
        )
        streamed = resolve(
            records,
            blocker,
            COMPARATOR,
            CLASSIFIER,
            candidate_pairs=pairs,
            memory_budget=25_000,
            spill_dir=tmp_path,
        )
        assert streamed.clusters == base.clusters
        assert streamed.n_candidates == base.n_candidates

    def test_non_streaming_blocker_refused(self, tmp_path):
        records = _records(seed=5)
        with pytest.raises(ConfigurationError):
            resolve(
                records,
                CanopyBlocker(lambda r: r.attributes.get("name")),
                COMPARATOR,
                CLASSIFIER,
                memory_budget=25_000,
                spill_dir=tmp_path,
            )

    def test_resolve_from_indexed_record_store(self, tmp_path):
        dataset = _dataset(seed=9)
        stem = tmp_path / "corpus"
        save_dataset(dataset, stem)
        records = list(load_dataset(stem).records())
        blocker = TokenBlocker(max_block_size=40)
        base = resolve(records, blocker, COMPARATOR, CLASSIFIER)
        budget = MemoryBudget(25_000)
        store = IndexedRecordStore(stem.with_suffix(".records.jsonl"), budget)
        streamed = resolve(
            store,
            blocker,
            COMPARATOR,
            CLASSIFIER,
            memory_budget=budget,
            spill_dir=tmp_path / "spill",
        )
        assert streamed.clusters == base.clusters
        assert streamed.scored_edges == base.scored_edges
        assert budget.peak <= 25_000

    def test_spill_count_monotone_in_budget(self, tmp_path):
        records = _records(seed=5)
        blocker = TokenBlocker(max_block_size=40)
        spills = []
        for index, limit in enumerate([8_000, 40_000, ROOMY]):
            tracer = Tracer()
            resolve(
                records,
                blocker,
                COMPARATOR,
                CLASSIFIER,
                tracer=tracer,
                memory_budget=limit,
                spill_dir=tmp_path / str(index),
            )
            gauges = tracer.report().metrics.get("gauges", {})
            spills.append(gauges["outofcore.spill_count"])
        assert spills == sorted(spills, reverse=True)
        assert spills[-1] == 0


# --- streaming engine ------------------------------------------------


class TestMatchPairsStream:
    def test_identical_across_chunk_sizes(self):
        records = _records(seed=4)
        blocker = TokenBlocker(max_block_size=40)
        pairs = [
            tuple(sorted(pair))
            for pair in sorted(
                blocker.block(records).candidate_pairs(), key=sorted
            )
        ]
        base = ParallelComparisonEngine(COMPARATOR).match_pairs(
            records, pairs, CLASSIFIER
        )
        for chunk_size in (1, 7, 100, 100_000):
            engine = ParallelComparisonEngine(
                COMPARATOR, chunk_size=chunk_size
            )
            run = engine.match_pairs_stream(
                records, iter(pairs), CLASSIFIER, budget=MemoryBudget(TIGHT)
            )
            assert run.match_pairs == base.match_pairs
            assert run.scored_edges == base.scored_edges
            assert run.n_pairs == base.n_pairs

    def test_non_threshold_classifier(self):
        records = _records(seed=4)
        blocker = TokenBlocker(max_block_size=40)
        pairs = [
            tuple(sorted(pair))
            for pair in sorted(
                blocker.block(records).candidate_pairs(), key=sorted
            )
        ]

        class Exact:
            def is_match(self, vector):
                return vector.score >= 0.8

        base = ParallelComparisonEngine(COMPARATOR).match_pairs(
            records, pairs, Exact()
        )
        run = ParallelComparisonEngine(COMPARATOR).match_pairs_stream(
            records, iter(pairs), Exact()
        )
        assert run.match_pairs == base.match_pairs
        assert run.scored_edges == base.scored_edges


# --- streaming claims + fusion ---------------------------------------


def _grouped(tmp_path, claims, limit=2_000):
    budget = MemoryBudget(limit)
    store = RunStore(tmp_path / "claims", durable=False)
    groups = SpillableClaimGroups(store, budget)
    for source, item, value in claims:
        groups.add(source, item, value)
    return groups, store, budget


class TestStreamingFusion:
    def _claims(self, n_items=30, n_sources=6):
        claims = []
        for item in range(n_items):
            for source in range(n_sources):
                value = f"v{(item + source) % 3}"
                claims.append((f"s{source}", f"i{item:03d}", value))
        return claims

    def test_stream_voting_matches_fuser(self, tmp_path):
        from repro.fusion import Claim, ClaimSet, VotingFuser

        claims = self._claims()
        base = VotingFuser().fuse(ClaimSet(Claim(*c) for c in claims))
        groups, __, budget = _grouped(tmp_path, claims)
        result = stream_voting(groups)
        assert dict(result.chosen) == dict(base.chosen)
        assert dict(result.confidence) == dict(base.confidence)
        assert budget.spill_count > 0

    def test_stream_accuvote_bit_identical(self, tmp_path):
        from repro.fusion import AccuVote, Claim, ClaimSet

        claims = self._claims()
        base = AccuVote(n_false_values=8).fuse(
            ClaimSet(Claim(*c) for c in claims)
        )
        groups, store, budget = _grouped(tmp_path, claims)
        result = stream_accuvote(
            groups, store.sub("accu"), budget, n_false_values=8
        )
        assert dict(result.chosen) == dict(base.chosen)
        assert dict(result.confidence) == dict(base.confidence)
        assert dict(result.source_accuracy) == dict(base.source_accuracy)
        assert result.iterations == base.iterations
        # Bit-level identity, not approximate equality.
        assert json.dumps(
            dict(result.confidence), sort_keys=True
        ) == json.dumps(dict(base.confidence), sort_keys=True)

    def test_duplicate_claims_first_wins(self, tmp_path):
        from repro.fusion import Claim, ClaimSet, VotingFuser

        claims = [
            ("s0", "i0", "a"),
            ("s1", "i0", "b"),
            ("s0", "i0", "b"),  # duplicate (s0, i0): dropped
            ("s2", "i0", "b"),
        ]
        claim_set = ClaimSet()
        seen = set()
        for source, item, value in claims:
            if (source, item) in seen:
                continue
            seen.add((source, item))
            claim_set.add(Claim(source, item, value))
        base = VotingFuser().fuse(claim_set)
        groups, __, ___ = _grouped(tmp_path, claims)
        result = stream_voting(groups)
        assert dict(result.chosen) == dict(base.chosen)
        assert dict(result.confidence) == dict(base.confidence)

    def test_empty_claims_raise(self, tmp_path):
        groups, store, budget = _grouped(tmp_path, [])
        with pytest.raises(EmptyInputError):
            stream_voting(groups)
        with pytest.raises(EmptyInputError):
            stream_accuvote(groups, store.sub("accu"), budget)


# --- end-to-end pipeline ---------------------------------------------


class TestStreamingPipeline:
    @pytest.mark.parametrize("fusion", ["vote", "accuvote"])
    @pytest.mark.parametrize("zipf", [0.8, 1.6])
    def test_pipeline_parity(self, tmp_path, fusion, zipf):
        dataset = _dataset(seed=11, zipf=zipf)
        config = PipelineConfig(fusion=fusion)
        base = BDIPipeline(config).run(dataset)
        tracer = Tracer()
        streamed = BDIPipeline(config).run(
            dataset,
            tracer=tracer,
            memory_budget=30_000,
            spill_dir=tmp_path,
        )
        assert streamed.clusters == base.clusters
        assert dict(streamed.fusion.chosen) == dict(base.fusion.chosen)
        assert dict(streamed.fusion.confidence) == dict(
            base.fusion.confidence
        )
        assert dict(streamed.fusion.source_accuracy) == dict(
            base.fusion.source_accuracy
        )
        assert streamed.fusion.iterations == base.fusion.iterations
        assert streamed.entity_table == base.entity_table
        assert streamed.claims.n_items == len(base.claims.items())
        gauges = tracer.report().metrics.get("gauges", {})
        assert gauges["outofcore.peak_tracked_bytes"] <= 30_000
        assert gauges["outofcore.spill_count"] > 0

    def test_evaluation_identical(self, tmp_path):
        dataset = _dataset(seed=13)
        pipeline = BDIPipeline(PipelineConfig(fusion="vote"))
        base = pipeline.evaluate(dataset, pipeline.run(dataset))
        streamed_result = pipeline.run(
            dataset, memory_budget=30_000, spill_dir=tmp_path
        )
        streamed = pipeline.evaluate(dataset, streamed_result)
        assert streamed == base

    def test_unsupported_configs_refused(self, tmp_path):
        dataset = _dataset()
        for config in [
            PipelineConfig(classifier="fellegi-sunter"),
            PipelineConfig(fusion="truthfinder"),
            PipelineConfig(fusion="vote", numeric_fusion=True),
        ]:
            with pytest.raises(ConfigurationError):
                BDIPipeline(config).run(
                    dataset, memory_budget=30_000, spill_dir=tmp_path
                )


# --- kill-and-resume mid-spill ---------------------------------------


class TestKillAndResume:
    def test_streamed_resolve_resumes_identically(self, tmp_path):
        from repro.resilience import ChunkExecutionError

        # Big enough for several 2048-pair engine chunks, so the crash
        # lands mid-stream with completed chunks already checkpointed.
        records = _records(seed=5, entities=35, sources=6)
        blocker = TokenBlocker(max_block_size=40)
        base = resolve(records, blocker, COMPARATOR, CLASSIFIER)
        chaos = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
            failure="fail",
            fault_injector=FaultInjector(crash(chunk=2)),
        )
        checkpoint = RunStore(tmp_path / "ckpt")
        spill_dir = tmp_path / "spill"
        # The aborted attempt dies on chunk 2 — mid-stream, after the
        # blocking stage already spilled runs into spill_dir.
        with pytest.raises(ChunkExecutionError):
            resolve(
                records,
                blocker,
                COMPARATOR,
                ThresholdClassifier(0.6),
                resilience=chaos,
                checkpoint=checkpoint,
                memory_budget=8_000,
                spill_dir=spill_dir,
            )
        assert any(
            key.endswith(".run.0") or ".run." in key
            for key in RunStore(spill_dir).keys()
        )
        # Resume against the same checkpoint store AND the same spill
        # directory: stale spill runs are rebuilt, completed chunks
        # replay, and the output matches an uninterrupted run.
        tracer = Tracer()
        resumed = resolve(
            records,
            blocker,
            COMPARATOR,
            ThresholdClassifier(0.6),
            tracer=tracer,
            checkpoint=RunStore(tmp_path / "ckpt"),
            memory_budget=8_000,
            spill_dir=spill_dir,
        )
        assert resumed.clusters == base.clusters
        assert resumed.match_pairs == base.match_pairs
        assert resumed.scored_edges == base.scored_edges
        counters = tracer.report().metrics.get("counters", {})
        assert counters.get("recovery.chunks_replayed", 0) >= 2

    def test_streamed_pipeline_resumes_identically(self, tmp_path):
        dataset = _dataset(seed=17)
        config = PipelineConfig(fusion="accuvote")
        base = BDIPipeline(config).run(dataset)

        class Boom(Exception):
            pass

        # Kill the run between linkage and fusion by poisoning the
        # schema translate call partway through the claims pass.
        calls = {"n": 0}
        original = type(base.schema).translate

        def exploding(self, record):
            calls["n"] += 1
            if calls["n"] == 40:
                raise Boom()
            return original(self, record)

        checkpoint = tmp_path / "ckpt"
        spill_dir = tmp_path / "spill"
        import unittest.mock as mock

        with mock.patch.object(type(base.schema), "translate", exploding):
            with pytest.raises(Boom):
                BDIPipeline(config).run(
                    dataset,
                    checkpoint=checkpoint,
                    memory_budget=30_000,
                    spill_dir=spill_dir,
                )
        resumed = BDIPipeline(config).run(
            dataset,
            checkpoint=checkpoint,
            memory_budget=30_000,
            spill_dir=spill_dir,
        )
        assert resumed.clusters == base.clusters
        assert dict(resumed.fusion.chosen) == dict(base.fusion.chosen)
        assert dict(resumed.fusion.confidence) == dict(
            base.fusion.confidence
        )
        assert resumed.entity_table == base.entity_table


# --- Hypothesis: random corpus × budget × chunk size -----------------

short_word = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)


@st.composite
def random_records(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    records = []
    for index in range(n):
        n_tokens = draw(st.integers(min_value=1, max_value=4))
        name = " ".join(draw(short_word) for __ in range(n_tokens))
        records.append(
            Record(f"r{index:03d}", f"s{index % 3}", {"name": name})
        )
    return records


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        records=random_records(),
        limit=st.sampled_from([1_500, 8_000, 10_000_000]),
        chunk_size=st.sampled_from([1, 5, 512]),
    )
    def test_random_corpus_identical_clusters(
        self, tmp_path_factory, records, limit, chunk_size
    ):
        tmp_path = tmp_path_factory.mktemp("oc")
        blocker = TokenBlocker(max_block_size=20, min_token_length=1)
        base = resolve(records, blocker, COMPARATOR, CLASSIFIER)
        base_blocks = _block_list(blocker.block(records))
        spill, budget = _spill(tmp_path, limit=limit)
        streamed_blocks = [
            (block.key, block.record_ids)
            for block in blocker.stream_blocks(records, spill)
        ]
        assert streamed_blocks == base_blocks
        assert budget.peak <= limit
        pairs = [
            tuple(sorted(pair))
            for pair in sorted(
                blocker.block(records).candidate_pairs(), key=sorted
            )
        ]
        engine = ParallelComparisonEngine(COMPARATOR, chunk_size=chunk_size)
        run = engine.match_pairs_stream(
            records, iter(pairs), CLASSIFIER, budget=MemoryBudget(limit)
        )
        streamed = resolve(
            records,
            blocker,
            COMPARATOR,
            CLASSIFIER,
            memory_budget=limit,
            spill_dir=tmp_path / "resolve",
        )
        assert run.match_pairs == base.match_pairs
        assert streamed.clusters == base.clusters
        assert streamed.scored_edges == base.scored_edges

    @settings(max_examples=15, deadline=None)
    @given(records=random_records())
    def test_spill_count_scales_down_with_budget(
        self, tmp_path_factory, records
    ):
        blocker = TokenBlocker(max_block_size=20, min_token_length=1)
        # Each structure spills *itself* before exceeding the shared
        # budget, but it cannot shrink its neighbours: when the limit
        # is smaller than the neighbours' irreducible residency (the
        # block index stays resident while its blocks stream into the
        # pair deduper), the first item added to an empty buffer lands
        # past the line. The true invariant is peak <= limit plus one
        # item's estimate.
        slack = max(
            pair_nbytes(a.record_id, b.record_id)
            for a in records
            for b in records
        )
        spills = []
        for limit in (1_200, 4_000, 20_000, 10_000_000):
            tmp_path = tmp_path_factory.mktemp("mono")
            tracer = Tracer()
            resolve(
                records,
                blocker,
                COMPARATOR,
                CLASSIFIER,
                tracer=tracer,
                memory_budget=limit,
                spill_dir=tmp_path,
            )
            gauges = tracer.report().metrics.get("gauges", {})
            assert gauges["outofcore.peak_tracked_bytes"] <= limit + slack
            spills.append(gauges["outofcore.spill_count"])
        # Spill counts are NOT strictly monotone between neighbouring
        # budgets: the spillable structures share one budget, and a
        # roomier limit can let one structure sit resident on most of
        # the headroom without ever flushing, squeezing a neighbour
        # into more, smaller spills (19 identical records: 28 spills at
        # 1 200 B but 35 at 4 000 B). The true invariants are weaker:
        # an order-of-magnitude more memory still means fewer spills,
        assert spills[2] <= spills[0]
        # a budget that held everything keeps holding it as it grows
        # (same insertion order, budget-independent charges),
        for tighter, roomier in zip(spills, spills[1:]):
            if tighter == 0:
                assert roomier == 0
        # and the roomiest tier never spills at this corpus size.
        assert spills[-1] == 0
