"""Unit and property tests for the union-find structure."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.unionfind import UnionFind


class TestBasics:
    def test_singletons(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")
        assert uf.groups() == [["a"], ["b"]]

    def test_union_connects(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")

    def test_transitivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_find_adds_implicitly(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        root = uf.union("a", "b")
        assert root == uf.find("a")

    def test_groups_sorted_and_deterministic(self):
        uf = UnionFind()
        uf.union("d", "c")
        uf.union("b", "a")
        assert uf.groups() == [["a", "b"], ["c", "d"]]

    def test_len(self):
        uf = UnionFind(["a"])
        uf.union("b", "c")
        assert len(uf) == 3


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=40,
        )
    )
    def test_groups_partition_items(self, unions):
        uf = UnionFind()
        for a, b in unions:
            uf.union(a, b)
        groups = uf.groups()
        flattened = [item for group in groups for item in group]
        assert len(flattened) == len(set(flattened)) == len(uf)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=30,
        )
    )
    def test_union_order_irrelevant(self, unions):
        forward = UnionFind()
        backward = UnionFind()
        for a, b in unions:
            forward.union(a, b)
        for a, b in reversed(unions):
            backward.union(b, a)
        assert forward.groups() == backward.groups()
