"""Attribute matchers: name-based, instance-based, and hybrid.

A matcher scores the similarity of two attribute profiles in
``[0, 1]``. The three families reflect the classical taxonomy:

* :class:`NameMatcher` compares the attribute *names* (string and token
  similarity) — cheap, blind to synonyms;
* :class:`InstanceMatcher` compares the attribute *values* (value
  overlap, token overlap, numeric-scale fingerprints) — finds synonyms,
  confused by attributes with shared vocabularies;
* :class:`HybridMatcher` combines both, which is the standard remedy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.schema.attribute_stats import AttributeProfile
from repro.text.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    monge_elkan_similarity,
)

__all__ = ["AttributeMatcher", "NameMatcher", "InstanceMatcher", "HybridMatcher"]


class AttributeMatcher:
    """Base class: scores two attribute profiles in [0, 1]."""

    name = "matcher"

    def score(self, a: AttributeProfile, b: AttributeProfile) -> float:
        raise NotImplementedError


@dataclass
class NameMatcher(AttributeMatcher):
    """Similarity of the attribute *names*.

    The score is the max of character-level (Jaro-Winkler on the
    normalized name) and token-level (Monge-Elkan over name tokens)
    similarity, so both ``"colour"``/``"color"`` and
    ``"display size"``/``"size of display"`` score high.
    """

    name = "name"

    def score(self, a: AttributeProfile, b: AttributeProfile) -> float:
        if not a.normalized_name or not b.normalized_name:
            return 0.0
        character = jaro_winkler_similarity(
            a.normalized_name, b.normalized_name
        )
        token = monge_elkan_similarity(a.normalized_name, b.normalized_name)
        return max(character, token)


@dataclass
class InstanceMatcher(AttributeMatcher):
    """Similarity of the attribute *values*.

    Combines three signals:

    * Jaccard overlap of distinct value strings (dominant for
      categorical attributes);
    * Jaccard overlap of value tokens (robust to small format noise);
    * agreement of numeric-scale fingerprints for numeric attributes
      (mean log-magnitude in base units), which separates numeric
      attributes measured on different scales.

    ``numeric_gate`` further suppresses matches between an essentially
    numeric attribute and an essentially textual one.
    """

    name = "instance"
    numeric_gate: float = 0.5

    def score(self, a: AttributeProfile, b: AttributeProfile) -> float:
        if a.n_records == 0 or b.n_records == 0:
            return 0.0
        numeric_a = a.numeric_fraction > self.numeric_gate
        numeric_b = b.numeric_fraction > self.numeric_gate
        if numeric_a != numeric_b:
            return 0.0
        value_overlap = jaccard_similarity(
            set(a.values.keys()), set(b.values.keys())
        )
        token_overlap = jaccard_similarity(a.value_tokens, b.value_tokens)
        if numeric_a and numeric_b:
            scale = self._scale_agreement(a, b)
            return max(value_overlap, 0.5 * token_overlap + 0.5 * scale)
        return max(value_overlap, token_overlap)

    @staticmethod
    def _scale_agreement(a: AttributeProfile, b: AttributeProfile) -> float:
        log_a = a.numeric_mean_log()
        log_b = b.numeric_mean_log()
        if log_a is None or log_b is None:
            return 0.0
        gap = abs(log_a - log_b)
        return max(0.0, 1.0 - gap / 1.5)


@dataclass
class HybridMatcher(AttributeMatcher):
    """Weighted blend of name and instance evidence.

    With ``name_weight`` w, the score is ``w * name + (1 - w) *
    instance``, plus a *corroboration bonus*: when both signals agree
    above their own soft thresholds the score is lifted toward their
    max, which keeps truly corresponding attributes above one global
    threshold even when each individual signal is middling.
    """

    name = "hybrid"
    name_weight: float = 0.45

    def __post_init__(self) -> None:
        if not 0.0 <= self.name_weight <= 1.0:
            raise ConfigurationError("name_weight must be in [0, 1]")
        self._name_matcher = NameMatcher()
        self._instance_matcher = InstanceMatcher()

    def score(self, a: AttributeProfile, b: AttributeProfile) -> float:
        name_score = self._name_matcher.score(a, b)
        instance_score = self._instance_matcher.score(a, b)
        blended = (
            self.name_weight * name_score
            + (1.0 - self.name_weight) * instance_score
        )
        if name_score > 0.75 and instance_score > 0.4:
            blended = max(blended, max(name_score, instance_score))
        return min(1.0, blended)
