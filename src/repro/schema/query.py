"""Keyword query answering over (probabilistic) mediated schemas.

The schema-alignment experiment scores alignment quality *extrinsically*
through queries: "return every record cell rendering mediated attribute
X". A deterministic schema answers with the cells of the matching
mediated attribute's cluster; a probabilistic schema scores each cell
by the total probability of the candidate schemas that support it.
Ground truth supplies the exactly-correct cell set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import Dataset
from repro.core.errors import GroundTruthError
from repro.quality.matching import PairQuality
from repro.schema.mediated import MediatedSchema
from repro.schema.probabilistic import ProbabilisticMediatedSchema
from repro.text.normalize import normalize_attribute_name

__all__ = [
    "Cell",
    "answer_with_schema",
    "answer_with_pschema",
    "answer_without_alignment",
    "true_answer_cells",
    "cell_quality",
]


@dataclass(frozen=True)
class Cell:
    """One retrieved record cell: a record id plus the value returned."""

    record_id: str
    value: str


def _cells_for_attributes(
    dataset: Dataset, wanted: set[tuple[str, str]]
) -> set[Cell]:
    cells: set[Cell] = set()
    for record in dataset.records():
        for attribute, value in record.attributes.items():
            if (record.source_id, attribute) in wanted:
                cells.add(Cell(record.record_id, value))
    return cells


def answer_with_schema(
    dataset: Dataset, schema: MediatedSchema, keyword: str
) -> set[Cell]:
    """Cells of every mediated attribute matching ``keyword``."""
    wanted: set[tuple[str, str]] = set()
    for mediated in schema.find(keyword):
        wanted.update(mediated.members)
    return _cells_for_attributes(dataset, wanted)


def answer_with_pschema(
    dataset: Dataset,
    pschema: ProbabilisticMediatedSchema,
    keyword: str,
    min_probability: float = 0.3,
) -> dict[Cell, float]:
    """Cells scored by total probability of supporting candidate schemas.

    Only cells whose aggregate probability reaches ``min_probability``
    are returned (by-table semantics with a confidence cutoff).
    """
    weight: dict[tuple[str, str], float] = {}
    for candidate in pschema.candidates:
        for mediated in candidate.schema.find(keyword):
            for member in mediated.members:
                weight[member] = weight.get(member, 0.0) + candidate.probability
    wanted = {
        member for member, probability in weight.items()
        if probability >= min_probability
    }
    cells = _cells_for_attributes(dataset, wanted)
    scored: dict[Cell, float] = {}
    for cell in cells:
        record = dataset.record(cell.record_id)
        best = 0.0
        for attribute, value in record.attributes.items():
            if value != cell.value:
                continue
            member = (record.source_id, attribute)
            best = max(best, weight.get(member, 0.0))
        scored[cell] = best
    return scored


def answer_without_alignment(dataset: Dataset, keyword: str) -> set[Cell]:
    """Baseline: cells whose *source* attribute name contains the keyword.

    This is what querying raw sources with no schema alignment gives —
    the lower bound the mediated-schema experiment compares against.
    """
    needle = normalize_attribute_name(keyword)
    cells: set[Cell] = set()
    for record in dataset.records():
        for attribute, value in record.attributes.items():
            if needle in normalize_attribute_name(attribute):
                cells.add(Cell(record.record_id, value))
    return cells


def true_answer_cells(dataset: Dataset, mediated_attribute: str) -> set[Cell]:
    """Ground-truth cells of one mediated attribute."""
    truth = dataset.ground_truth
    if truth is None or not truth.attribute_to_mediated:
        raise GroundTruthError("dataset lacks attribute-level ground truth")
    wanted = {
        source_attr
        for source_attr, mediated in truth.attribute_to_mediated.items()
        if mediated == mediated_attribute
    }
    return _cells_for_attributes(dataset, wanted)


def cell_quality(predicted: set[Cell], actual: set[Cell]) -> PairQuality:
    """Precision/recall/F1 of retrieved cells against the true cells."""
    true_positives = len(predicted & actual)
    return PairQuality(
        true_positives=true_positives,
        false_positives=len(predicted) - true_positives,
        false_negatives=len(actual) - true_positives,
    )
