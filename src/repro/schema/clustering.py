"""Attribute clustering: from pairwise correspondences to clusters.

Selected correspondences form a graph over source attributes; its
connected components are the attribute clusters that become mediated
attributes. :func:`cluster_attributes` is the standard transitive
closure; :func:`cluster_attributes_robust` additionally breaks
low-cohesion components (a guard against a single spurious
correspondence chaining two real clusters together).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.unionfind import UnionFind
from repro.schema.attribute_stats import SourceAttribute
from repro.schema.correspondence import Correspondence

__all__ = ["cluster_attributes", "cluster_attributes_robust"]


def cluster_attributes(
    correspondences: Iterable[Correspondence],
    all_attributes: Iterable[SourceAttribute] = (),
) -> list[list[SourceAttribute]]:
    """Connected components over the correspondence graph.

    ``all_attributes`` adds isolated attributes as singleton clusters so
    the clustering covers the whole corpus.
    """
    uf: UnionFind[SourceAttribute] = UnionFind(all_attributes)
    for correspondence in correspondences:
        uf.union(correspondence.left, correspondence.right)
    return uf.groups()


def cluster_attributes_robust(
    correspondences: Sequence[Correspondence],
    all_attributes: Iterable[SourceAttribute] = (),
    min_cohesion: float = 0.3,
) -> list[list[SourceAttribute]]:
    """Connected components, then split low-cohesion components.

    A component's *cohesion* is its number of internal correspondences
    divided by the pairs a clique would have. Components below
    ``min_cohesion`` are re-clustered keeping only their
    above-median-score edges — a cheap approximation of correlation
    clustering that reliably severs single-edge bridges.
    """
    components = cluster_attributes(correspondences, all_attributes)
    by_pair: dict[frozenset[SourceAttribute], float] = {
        c.as_pair(): c.score for c in correspondences
    }
    result: list[list[SourceAttribute]] = []
    for component in components:
        if len(component) <= 2:
            result.append(component)
            continue
        internal = [
            (a, b, by_pair[frozenset((a, b))])
            for i, a in enumerate(component)
            for b in component[i + 1 :]
            if frozenset((a, b)) in by_pair
        ]
        possible = len(component) * (len(component) - 1) // 2
        cohesion = len(internal) / possible if possible else 1.0
        if cohesion >= min_cohesion or not internal:
            result.append(component)
            continue
        scores = sorted(score for __, __, score in internal)
        median = scores[len(scores) // 2]
        uf: UnionFind[SourceAttribute] = UnionFind(component)
        for a, b, score in internal:
            if score >= median:
                uf.union(a, b)
        result.extend(uf.groups())
    result.sort(key=lambda group: group[0])
    return result
