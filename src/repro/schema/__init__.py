"""Schema alignment: profiling, matching, mediated and probabilistic schemas."""

from repro.schema.attribute_stats import (
    AttributeProfile,
    SourceAttribute,
    profile_attributes,
)
from repro.schema.clustering import (
    cluster_attributes,
    cluster_attributes_robust,
)
from repro.schema.correspondence import (
    Correspondence,
    score_all_pairs,
    select_correspondences,
)
from repro.schema.matchers import (
    AttributeMatcher,
    HybridMatcher,
    InstanceMatcher,
    NameMatcher,
)
from repro.schema.mediated import (
    MediatedAttribute,
    MediatedSchema,
    build_mediated_schema,
)
from repro.schema.probabilistic import (
    CandidateSchema,
    ProbabilisticMediatedSchema,
    build_probabilistic_mediated_schema,
)
from repro.schema.transforms import (
    ScaleTransform,
    discover_scale_transform,
    known_unit_ratios,
)
from repro.schema.query import (
    Cell,
    answer_with_pschema,
    answer_with_schema,
    answer_without_alignment,
    cell_quality,
    true_answer_cells,
)

__all__ = [
    "AttributeMatcher",
    "AttributeProfile",
    "CandidateSchema",
    "Cell",
    "Correspondence",
    "HybridMatcher",
    "InstanceMatcher",
    "MediatedAttribute",
    "MediatedSchema",
    "NameMatcher",
    "ProbabilisticMediatedSchema",
    "ScaleTransform",
    "SourceAttribute",
    "answer_with_pschema",
    "answer_with_schema",
    "answer_without_alignment",
    "build_mediated_schema",
    "build_probabilistic_mediated_schema",
    "cell_quality",
    "cluster_attributes",
    "cluster_attributes_robust",
    "discover_scale_transform",
    "known_unit_ratios",
    "profile_attributes",
    "score_all_pairs",
    "select_correspondences",
    "true_answer_cells",
]
