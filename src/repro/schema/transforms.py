"""Value-transformation discovery between corresponding attributes.

Knowing that two attributes *correspond* is half the job — aligning
their *values* needs the transformation between representations
("weight in pounds" ↔ "weight in grams", "GHz" ↔ "MHz"). For numeric
attributes the transformation is (almost always) a scale factor, and
scale factors are discoverable from data alone: the ratio of the two
columns' central values. This module estimates that factor robustly
and snaps it to the known unit-conversion table when one fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import EmptyInputError
from repro.schema.attribute_stats import AttributeProfile
from repro.text.normalize import UNIT_CONVERSIONS

__all__ = ["ScaleTransform", "discover_scale_transform", "known_unit_ratios"]


@dataclass(frozen=True)
class ScaleTransform:
    """A multiplicative transformation ``left ≈ factor · right``.

    ``unit_pair`` names the known conversion the factor snapped to
    (e.g. ``("lb", "g")``), or ``None`` for an unrecognized factor.
    ``confidence`` is 1 minus the relative snap error (0 when no known
    conversion is nearby).
    """

    factor: float
    unit_pair: tuple[str, str] | None
    confidence: float

    def apply(self, right_value: float) -> float:
        """Map a value of the right attribute into the left's scale."""
        return self.factor * right_value


def known_unit_ratios() -> dict[float, tuple[str, str]]:
    """All pairwise ratios between same-dimension known units.

    Returns ratio → (from_unit, to_unit), meaning one ``from_unit``
    equals ``ratio`` of the base, relative to ``to_unit``: a column in
    ``from_unit`` is ``ratio`` × the same column in ``to_unit``.

    Several conversions can share a ratio (kg→g and GHz→MHz are both
    1000×); the lexicographically first pair wins, so the mapping is
    deterministic but the named pair is one *representative* of the
    ratio, not a unique identification.
    """
    by_dimension: dict[str, list[tuple[str, float]]] = {}
    for unit, (dimension, factor) in sorted(UNIT_CONVERSIONS.items()):
        by_dimension.setdefault(dimension, []).append((unit, factor))
    ratios: dict[float, tuple[str, str]] = {}
    for dimension in sorted(by_dimension):
        units = by_dimension[dimension]
        for unit_a, factor_a in units:
            for unit_b, factor_b in units:
                if unit_a == unit_b:
                    continue
                ratios.setdefault(factor_a / factor_b, (unit_a, unit_b))
    return ratios


def _trimmed_mean(values: list[float], trim: float = 0.1) -> float:
    """Mean of the middle ``1 - 2·trim`` of the values."""
    ordered = sorted(values)
    cut = int(len(ordered) * trim)
    kept = ordered[cut : len(ordered) - cut] or ordered
    return sum(kept) / len(kept)


def discover_scale_transform(
    left: AttributeProfile,
    right: AttributeProfile,
    snap_tolerance: float = 0.1,
) -> ScaleTransform:
    """Estimate the scale factor between two numeric attribute profiles.

    Uses the ratio of the two columns' trimmed means (robust to a few
    outliers, and independent of which entities each source covers as
    long as both draw from the same underlying distribution). The
    factor snaps to the nearest known unit conversion within
    ``snap_tolerance`` relative error.

    Raises :class:`EmptyInputError` when either profile has no numeric
    values.
    """
    if not left.raw_numeric_values or not right.raw_numeric_values:
        raise EmptyInputError(
            "both profiles need numeric values to discover a transform"
        )
    # Raw (as-published) magnitudes, so the discovered factor reflects
    # the representations the sources actually use.
    left_center = _trimmed_mean(left.raw_numeric_values)
    right_center = _trimmed_mean(right.raw_numeric_values)
    if right_center == 0:
        raise EmptyInputError("right profile's central value is zero")
    factor = left_center / right_center
    best_pair: tuple[str, str] | None = None
    best_error = snap_tolerance
    for ratio, pair in known_unit_ratios().items():
        if ratio == 0:
            continue
        error = abs(factor - ratio) / abs(ratio)
        if error < best_error:
            best_error = error
            best_pair = pair
    if abs(factor - 1.0) <= snap_tolerance and (
        best_pair is None or abs(factor - 1.0) <= best_error
    ):
        return ScaleTransform(1.0, None, 1.0 - abs(factor - 1.0))
    if best_pair is not None:
        return ScaleTransform(factor, best_pair, 1.0 - best_error)
    return ScaleTransform(factor, None, 0.0)
