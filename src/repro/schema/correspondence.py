"""Attribute correspondences: scoring, thresholding, 1:1 selection.

Given attribute profiles and a matcher, :func:`score_all_pairs`
produces the similarity of every cross-source attribute pair;
:func:`select_correspondences` thresholds them, optionally enforcing a
1:1 constraint per source pair (each attribute of source A maps to at
most one attribute of source B — greedy best-first, the standard
stable-marriage-style cleanup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.errors import ConfigurationError
from repro.schema.attribute_stats import AttributeProfile, SourceAttribute
from repro.schema.matchers import AttributeMatcher

__all__ = ["Correspondence", "score_all_pairs", "select_correspondences"]


@dataclass(frozen=True)
class Correspondence:
    """A scored pair of source attributes believed to correspond."""

    left: SourceAttribute
    right: SourceAttribute
    score: float

    def as_pair(self) -> frozenset[SourceAttribute]:
        """Unordered view for set-based comparison."""
        return frozenset((self.left, self.right))


def score_all_pairs(
    profiles: Mapping[SourceAttribute, AttributeProfile],
    matcher: AttributeMatcher,
    min_score: float = 0.0,
    cross_source_only: bool = True,
) -> list[Correspondence]:
    """Score every attribute pair with ``matcher``.

    Pairs scoring below ``min_score`` are dropped (pass a small positive
    value to bound the output on wide corpora). With
    ``cross_source_only`` (default) attributes of the same source are
    never paired — sources rarely publish true duplicates, and skipping
    them quarters the work.
    """
    keys = sorted(profiles)
    correspondences: list[Correspondence] = []
    for i, left_key in enumerate(keys):
        left = profiles[left_key]
        for right_key in keys[i + 1 :]:
            if cross_source_only and right_key[0] == left_key[0]:
                continue
            right = profiles[right_key]
            score = matcher.score(left, right)
            if score >= min_score and score > 0.0:
                correspondences.append(
                    Correspondence(left_key, right_key, score)
                )
    return correspondences


def select_correspondences(
    scored: Iterable[Correspondence],
    threshold: float = 0.6,
    one_to_one: bool = True,
) -> list[Correspondence]:
    """Keep correspondences above ``threshold``.

    With ``one_to_one`` (default) a greedy best-first pass enforces
    that, per source pair, each attribute participates in at most one
    correspondence: pairs are taken in descending score order and a
    pair is kept only when both endpoints are still free with respect
    to the other's source.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ConfigurationError("threshold must be in [0, 1]")
    surviving = [c for c in scored if c.score >= threshold]
    if not one_to_one:
        return sorted(
            surviving, key=lambda c: (-c.score, c.left, c.right)
        )
    surviving.sort(key=lambda c: (-c.score, c.left, c.right))
    taken: set[tuple[SourceAttribute, str]] = set()
    selected: list[Correspondence] = []
    for correspondence in surviving:
        left, right = correspondence.left, correspondence.right
        # An endpoint is "busy" once matched to *some* attribute of the
        # other endpoint's source.
        left_slot = (left, right[0])
        right_slot = (right, left[0])
        if left_slot in taken or right_slot in taken:
            continue
        taken.add(left_slot)
        taken.add(right_slot)
        selected.append(correspondence)
    return selected
