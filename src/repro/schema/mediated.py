"""Deterministic mediated schema construction and record translation.

A :class:`MediatedSchema` is a set of *mediated attributes*, each
backed by a cluster of source attributes. It answers the two questions
the rest of the pipeline asks: "what mediated attribute does this
source attribute render?" (for record translation) and "which source
attributes render this mediated attribute?" (for query answering).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.dataset import Dataset
from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.schema.attribute_stats import (
    SourceAttribute,
    profile_attributes,
)
from repro.schema.clustering import cluster_attributes_robust
from repro.schema.correspondence import (
    score_all_pairs,
    select_correspondences,
)
from repro.schema.matchers import AttributeMatcher, HybridMatcher
from repro.text.normalize import normalize_attribute_name

__all__ = ["MediatedAttribute", "MediatedSchema", "build_mediated_schema"]


@dataclass(frozen=True)
class MediatedAttribute:
    """One mediated attribute: a canonical name over a source cluster."""

    name: str
    members: tuple[SourceAttribute, ...]

    def __len__(self) -> int:
        return len(self.members)


class MediatedSchema:
    """The mediated schema: mediated attributes plus lookup maps."""

    def __init__(self, attributes: Sequence[MediatedAttribute]) -> None:
        self._attributes = tuple(attributes)
        self._of_source_attribute: dict[SourceAttribute, MediatedAttribute] = {}
        for mediated in self._attributes:
            for member in mediated.members:
                if member in self._of_source_attribute:
                    raise ConfigurationError(
                        f"source attribute {member!r} assigned to two "
                        "mediated attributes"
                    )
                self._of_source_attribute[member] = mediated

    @property
    def attributes(self) -> tuple[MediatedAttribute, ...]:
        """All mediated attributes."""
        return self._attributes

    def mediated_for(
        self, source_id: str, attribute: str
    ) -> MediatedAttribute | None:
        """The mediated attribute a source attribute renders, if any."""
        return self._of_source_attribute.get((source_id, attribute))

    def by_name(self, name: str) -> MediatedAttribute | None:
        """Look up a mediated attribute by its canonical name."""
        for mediated in self._attributes:
            if mediated.name == name:
                return mediated
        return None

    def find(self, keyword: str) -> list[MediatedAttribute]:
        """Mediated attributes whose canonical name or members mention
        ``keyword`` (normalized substring match) — the entry point for
        keyword queries."""
        needle = normalize_attribute_name(keyword)
        found: list[MediatedAttribute] = []
        for mediated in self._attributes:
            if needle in mediated.name:
                found.append(mediated)
                continue
            member_names = {
                normalize_attribute_name(attribute)
                for __, attribute in mediated.members
            }
            if any(needle in name for name in member_names):
                found.append(mediated)
        return found

    def translate(self, record: Record) -> dict[str, str]:
        """Project a record onto the mediated schema.

        Attributes without a mediated assignment are kept under their
        normalized source name (pay-as-you-go: nothing is dropped).
        When several source attributes map to one mediated attribute,
        the first (in attribute order) wins.
        """
        translated: dict[str, str] = {}
        for attribute, value in record.attributes.items():
            mediated = self.mediated_for(record.source_id, attribute)
            key = (
                mediated.name
                if mediated is not None
                else normalize_attribute_name(attribute)
            )
            translated.setdefault(key, value)
        return translated

    def clusters(self) -> list[list[SourceAttribute]]:
        """The underlying attribute clusters (for evaluation)."""
        return [sorted(m.members) for m in self._attributes]

    def __len__(self) -> int:
        return len(self._attributes)

    def __repr__(self) -> str:
        return f"MediatedSchema(attributes={len(self._attributes)})"


def canonical_name(
    members: Iterable[SourceAttribute],
) -> str:
    """Most frequent normalized member name (ties break alphabetically)."""
    counts = Counter(
        normalize_attribute_name(attribute) for __, attribute in members
    )
    best = max(counts.items(), key=lambda kv: (kv[1], -len(kv[0]), kv[0]))
    # Prefer the most common; among equals prefer shorter, then earlier.
    candidates = [
        name for name, count in counts.items() if count == best[1]
    ]
    return sorted(candidates, key=lambda name: (len(name), name))[0]


def build_mediated_schema(
    dataset: Dataset,
    matcher: AttributeMatcher | None = None,
    threshold: float = 0.6,
    one_to_one: bool = True,
    min_cohesion: float = 0.3,
) -> MediatedSchema:
    """End-to-end deterministic mediated-schema construction.

    Profiles attributes, scores all cross-source pairs with ``matcher``
    (default :class:`HybridMatcher`), selects correspondences above
    ``threshold``, clusters them (with cohesion-based splitting), and
    names each cluster by its most common member name — with clusters
    sharing a name disambiguated by a numeric suffix.
    """
    matcher = matcher or HybridMatcher()
    profiles = profile_attributes(dataset)
    scored = score_all_pairs(profiles, matcher, min_score=threshold / 2)
    selected = select_correspondences(
        scored, threshold=threshold, one_to_one=one_to_one
    )
    clusters = cluster_attributes_robust(
        selected, all_attributes=profiles.keys(), min_cohesion=min_cohesion
    )
    used_names: Counter[str] = Counter()
    mediated: list[MediatedAttribute] = []
    for cluster in clusters:
        name = canonical_name(cluster)
        used_names[name] += 1
        if used_names[name] > 1:
            name = f"{name} ({used_names[name]})"
        mediated.append(MediatedAttribute(name, tuple(sorted(cluster))))
    return MediatedSchema(mediated)
