"""Attribute profiling: the statistics schema matchers consume.

For every ``(source, attribute)`` pair in a dataset we collect a
profile of its name and its values — token sets, value distributions,
and numeric summaries — so matchers can score attribute similarity
without re-scanning the corpus.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.dataset import Dataset
from repro.text.normalize import (
    normalize_attribute_name,
    normalize_value,
    parse_measurement,
)
from repro.text.tokens import word_tokens

__all__ = ["AttributeProfile", "profile_attributes", "SourceAttribute"]

SourceAttribute = tuple[str, str]  # (source_id, attribute_name)


@dataclass
class AttributeProfile:
    """Profile of one source attribute.

    Attributes
    ----------
    source_id, attribute:
        Identity of the profiled attribute.
    normalized_name:
        The attribute name after normalization.
    name_tokens:
        Word tokens of the normalized name.
    values:
        Multiset of normalized values observed.
    value_tokens:
        Set of word tokens across all values.
    n_records:
        How many records of the source carry this attribute.
    numeric_values:
        Parsed numeric magnitudes (converted to each dimension's base
        unit) for values that look like measurements.
    raw_numeric_values:
        The same magnitudes *before* unit conversion — i.e. as
        published. Transformation discovery compares these.
    """

    source_id: str
    attribute: str
    normalized_name: str
    name_tokens: tuple[str, ...]
    values: Counter[str] = field(default_factory=Counter)
    value_tokens: set[str] = field(default_factory=set)
    n_records: int = 0
    numeric_values: list[float] = field(default_factory=list)
    raw_numeric_values: list[float] = field(default_factory=list)

    @property
    def key(self) -> SourceAttribute:
        """The (source, attribute) identity of this profile."""
        return (self.source_id, self.attribute)

    @property
    def distinct_values(self) -> int:
        """Number of distinct normalized values."""
        return len(self.values)

    @property
    def uniqueness(self) -> float:
        """Distinct values over records; ~1 for identifier-like attributes."""
        if self.n_records == 0:
            return 0.0
        return self.distinct_values / self.n_records

    @property
    def numeric_fraction(self) -> float:
        """Fraction of observed values parseable as measurements."""
        if self.n_records == 0:
            return 0.0
        return len(self.numeric_values) / self.n_records

    def numeric_mean_log(self) -> float | None:
        """Mean log10 magnitude of numeric values (scale fingerprint).

        Comparing log-scale means distinguishes ``weight in grams``
        from ``screen size in inches`` even when both are numeric.
        """
        magnitudes = [abs(v) for v in self.numeric_values if v != 0]
        if not magnitudes:
            return None
        return sum(math.log10(m) for m in magnitudes) / len(magnitudes)

    def observe(self, raw_value: str) -> None:
        """Fold one raw value into the profile."""
        self.n_records += 1
        normalized = normalize_value(raw_value)
        self.values[normalized] += 1
        self.value_tokens.update(word_tokens(normalized))
        measurement = parse_measurement(normalized.replace(",", "."))
        if measurement is not None:
            base = measurement.in_base_unit()
            self.numeric_values.append(base.value)
            self.raw_numeric_values.append(measurement.value)


def profile_attributes(
    dataset: Dataset, sources: Iterable[str] | None = None
) -> dict[SourceAttribute, AttributeProfile]:
    """Build profiles for every (source, attribute) in ``dataset``.

    ``sources`` optionally restricts profiling to a subset of sources.
    """
    keep = set(sources) if sources is not None else None
    profiles: dict[SourceAttribute, AttributeProfile] = {}
    for source in dataset.sources:
        if keep is not None and source.source_id not in keep:
            continue
        for record in source:
            for attribute, value in record.attributes.items():
                key = (source.source_id, attribute)
                profile = profiles.get(key)
                if profile is None:
                    normalized = normalize_attribute_name(attribute)
                    profile = AttributeProfile(
                        source_id=source.source_id,
                        attribute=attribute,
                        normalized_name=normalized,
                        name_tokens=tuple(word_tokens(normalized)),
                    )
                    profiles[key] = profile
                profile.observe(value)
    return profiles
