"""Probabilistic mediated schemas and p-mappings (pay-as-you-go alignment).

Automatic attribute matching is uncertain: some correspondences are
clearly right, some clearly wrong, and a gray zone in between. The
probabilistic mediated schema keeps that uncertainty instead of
thresholding it away: *certain* edges are merged outright, while each
plausible resolution of the *uncertain* edges yields a candidate
mediated schema with a probability. Query answers are then weighted by
the total probability of the schemas that support them, which is what
lifts recall (gray-zone synonyms still contribute) without the
precision collapse of simply lowering the threshold.

The construction follows Das Sarma, Dong & Halevy (SIGMOD'08) adapted
to this library's matcher scores: edge probability is the matcher score
rescaled over the uncertain band, parallel uncertain edges between the
same certain clusters combine by noisy-or, and the top-K most probable
edge subsets (enumerated best-first) become the candidate schemas.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.dataset import Dataset
from repro.core.errors import ConfigurationError
from repro.core.unionfind import UnionFind
from repro.schema.attribute_stats import SourceAttribute, profile_attributes
from repro.schema.correspondence import Correspondence, score_all_pairs
from repro.schema.matchers import AttributeMatcher, HybridMatcher
from repro.schema.mediated import (
    MediatedAttribute,
    MediatedSchema,
    canonical_name,
)

__all__ = [
    "CandidateSchema",
    "ProbabilisticMediatedSchema",
    "build_probabilistic_mediated_schema",
]


@dataclass(frozen=True)
class CandidateSchema:
    """One candidate mediated schema with its probability."""

    schema: MediatedSchema
    probability: float


class ProbabilisticMediatedSchema:
    """A distribution over candidate mediated schemas."""

    def __init__(self, candidates: Sequence[CandidateSchema]) -> None:
        if not candidates:
            raise ConfigurationError(
                "a probabilistic schema needs at least one candidate"
            )
        total = sum(c.probability for c in candidates)
        if total <= 0:
            raise ConfigurationError("candidate probabilities must sum > 0")
        self._candidates = tuple(
            CandidateSchema(c.schema, c.probability / total)
            for c in candidates
        )

    @property
    def candidates(self) -> tuple[CandidateSchema, ...]:
        """Candidate schemas, probabilities normalized to sum to 1."""
        return self._candidates

    def most_probable(self) -> MediatedSchema:
        """The single most probable candidate schema."""
        return max(self._candidates, key=lambda c: c.probability).schema

    def mapping_probability(
        self, a: SourceAttribute, b: SourceAttribute
    ) -> float:
        """Total probability that ``a`` and ``b`` share a mediated
        attribute (the p-mapping weight of the correspondence)."""
        probability = 0.0
        for candidate in self._candidates:
            mediated_a = candidate.schema.mediated_for(*a)
            mediated_b = candidate.schema.mediated_for(*b)
            if (
                mediated_a is not None
                and mediated_b is not None
                and mediated_a is mediated_b
            ):
                probability += candidate.probability
        return probability

    def __len__(self) -> int:
        return len(self._candidates)

    def __repr__(self) -> str:
        return (
            f"ProbabilisticMediatedSchema(candidates={len(self._candidates)})"
        )


def _certain_clusters(
    certain: Sequence[Correspondence],
    all_attributes: Sequence[SourceAttribute],
) -> tuple[dict[SourceAttribute, int], list[list[SourceAttribute]]]:
    """Merge certain edges; return (attribute → cluster index, clusters)."""
    uf: UnionFind[SourceAttribute] = UnionFind(all_attributes)
    for correspondence in certain:
        uf.union(correspondence.left, correspondence.right)
    clusters = uf.groups()
    index_of: dict[SourceAttribute, int] = {}
    for index, cluster in enumerate(clusters):
        for attribute in cluster:
            index_of[attribute] = index
    return index_of, clusters


def _uncertain_cluster_edges(
    uncertain: Sequence[Correspondence],
    index_of: Mapping[SourceAttribute, int],
    low: float,
    high: float,
    max_edges: int,
) -> list[tuple[int, int, float]]:
    """Collapse uncertain correspondences onto certain-cluster pairs.

    Parallel edges between the same cluster pair combine by noisy-or;
    only the ``max_edges`` most probable cluster edges are kept (the
    rest are treated as absent, i.e. resolved to "no merge").
    """
    combined: dict[tuple[int, int], float] = {}
    band = max(high - low, 1e-9)
    for correspondence in uncertain:
        a = index_of[correspondence.left]
        b = index_of[correspondence.right]
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        p = min(0.99, max(0.01, (correspondence.score - low) / band))
        previous = combined.get(key, 0.0)
        combined[key] = 1.0 - (1.0 - previous) * (1.0 - p)
    edges = sorted(
        ((a, b, p) for (a, b), p in combined.items()),
        key=lambda edge: (-edge[2], edge[0], edge[1]),
    )
    return edges[:max_edges]


def _top_k_subsets(
    probabilities: Sequence[float], k: int
) -> list[tuple[float, tuple[bool, ...]]]:
    """The ``k`` most probable on/off assignments of independent edges.

    Best-first search over the binary choice tree: start from the
    maximum-probability assignment (each edge takes its more likely
    state) and expand by flipping edges in increasing cost order.
    """
    n = len(probabilities)
    if n == 0:
        return [(1.0, ())]
    best = [p >= 0.5 for p in probabilities]
    # Cost of flipping edge i away from its best state, in log-odds terms.
    flip_ratio = [
        (min(p, 1 - p) / max(p, 1 - p)) if 0 < p < 1 else 0.0
        for p in probabilities
    ]
    base = 1.0
    for p, state in zip(probabilities, best):
        base *= p if state else (1 - p)
    order = sorted(range(n), key=lambda i: -flip_ratio[i])
    # Nodes: (negative probability, tiebreak, flipped index frontier, flips)
    counter = itertools.count()
    heap: list[tuple[float, int, int, frozenset[int]]] = [
        (-base, next(counter), 0, frozenset())
    ]
    seen: set[frozenset[int]] = {frozenset()}
    results: list[tuple[float, tuple[bool, ...]]] = []
    while heap and len(results) < k:
        negative, __, frontier, flips = heapq.heappop(heap)
        probability = -negative
        assignment = tuple(
            (not best[i]) if i in flips else best[i] for i in range(n)
        )
        results.append((probability, assignment))
        for position in range(frontier, n):
            edge = order[position]
            if edge in flips or flip_ratio[edge] == 0.0:
                continue
            new_flips = flips | {edge}
            if new_flips in seen:
                continue
            seen.add(new_flips)
            heapq.heappush(
                heap,
                (
                    -(probability * flip_ratio[edge]),
                    next(counter),
                    position + 1,
                    new_flips,
                ),
            )
    return results


def _schema_from_assignment(
    clusters: Sequence[Sequence[SourceAttribute]],
    edges: Sequence[tuple[int, int, float]],
    assignment: Sequence[bool],
) -> MediatedSchema:
    uf: UnionFind[int] = UnionFind(range(len(clusters)))
    for (a, b, __), on in zip(edges, assignment):
        if on:
            uf.union(a, b)
    merged: dict[int, list[SourceAttribute]] = {}
    for index, cluster in enumerate(clusters):
        merged.setdefault(uf.find(index), []).extend(cluster)
    from collections import Counter

    used: Counter[str] = Counter()
    mediated: list[MediatedAttribute] = []
    for members in sorted(merged.values(), key=lambda m: sorted(m)[0]):
        name = canonical_name(members)
        used[name] += 1
        if used[name] > 1:
            name = f"{name} ({used[name]})"
        mediated.append(MediatedAttribute(name, tuple(sorted(members))))
    return MediatedSchema(mediated)


def build_probabilistic_mediated_schema(
    dataset: Dataset,
    matcher: AttributeMatcher | None = None,
    certain_threshold: float = 0.8,
    uncertain_threshold: float = 0.45,
    max_schemas: int = 8,
    max_uncertain_edges: int = 12,
    one_to_one: bool = True,
) -> ProbabilisticMediatedSchema:
    """Build a probabilistic mediated schema over ``dataset``.

    Correspondences scoring ≥ ``certain_threshold`` are merged in every
    candidate; those in ``[uncertain_threshold, certain_threshold)``
    become probabilistic edges; lower scores are discarded. The top
    ``max_schemas`` edge resolutions (by probability) become the
    candidate schemas.
    """
    if not 0 <= uncertain_threshold < certain_threshold <= 1:
        raise ConfigurationError(
            "need 0 <= uncertain_threshold < certain_threshold <= 1"
        )
    matcher = matcher or HybridMatcher()
    profiles = profile_attributes(dataset)
    scored = score_all_pairs(
        profiles, matcher, min_score=uncertain_threshold
    )
    if one_to_one:
        from repro.schema.correspondence import select_correspondences

        scored = select_correspondences(
            scored, threshold=uncertain_threshold, one_to_one=True
        )
    certain = [c for c in scored if c.score >= certain_threshold]
    uncertain = [c for c in scored if c.score < certain_threshold]
    all_attributes = sorted(profiles.keys())
    index_of, clusters = _certain_clusters(certain, all_attributes)
    edges = _uncertain_cluster_edges(
        uncertain,
        index_of,
        uncertain_threshold,
        certain_threshold,
        max_uncertain_edges,
    )
    subsets = _top_k_subsets([p for __, __, p in edges], max_schemas)
    candidates = [
        CandidateSchema(
            _schema_from_assignment(clusters, edges, assignment),
            probability,
        )
        for probability, assignment in subsets
    ]
    return ProbabilisticMediatedSchema(candidates)
