"""Source generation: rendering a world through heterogeneous sources.

This is the library's stand-in for the web. Each generated source

* covers a subset of entities, sampled by popularity — source sizes are
  Zipf-distributed, so a few *head* sources cover many entities and a
  long tail of sources covers a handful each;
* renders attributes through its own *schema dialect* (its own attribute
  names) and *format conventions* (its preferred units, decimal comma,
  upper/lower case) — the variety dimension;
* injects *typos* (surface corruption of a correct value) and *errors*
  (a semantically wrong value) at configurable rates — the veracity
  dimension;
* publishes the category's identifier attribute only with some
  probability — the hook for identifier-based linkage.

Everything is driven by one :class:`random.Random` seeded from the
config, so the same config yields byte-identical corpora.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.dataset import Dataset
from repro.core.errors import ConfigurationError
from repro.core.ground_truth import GroundTruth
from repro.core.record import Record
from repro.core.source import Source
from repro.synth.vocab import AttributeSpec, CategoryVocabulary
from repro.synth.world import Entity, World, zipf_weights
from repro.text.normalize import parse_measurement, to_base_unit

__all__ = [
    "CorpusConfig",
    "SourceProfile",
    "build_source_profiles",
    "generate_dataset",
    "render_value",
]

_NAME_DIALECTS = ("name", "title", "product name", "model", "item name")
_KEYBOARD_NEIGHBORS = {
    "a": "sq", "b": "vn", "c": "xv", "d": "sf", "e": "wr", "f": "dg",
    "g": "fh", "h": "gj", "i": "uo", "j": "hk", "k": "jl", "l": "k",
    "m": "n", "n": "bm", "o": "ip", "p": "o", "q": "wa", "r": "et",
    "s": "ad", "t": "ry", "u": "yi", "v": "cb", "w": "qe", "x": "zc",
    "y": "tu", "z": "x",
}


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for corpus generation — one knob per big-data dimension.

    Volume: ``n_sources`` and ``source_size_zipf`` (source-size skew).
    Variety: ``dialect_noise`` (chance a source picks a non-canonical
    attribute name), ``format_noise`` (chance it renders numeric values
    in an alternate unit), ``tail_attribute_rate`` (fraction of tail
    attributes a source renders).
    Veracity: ``typo_rate`` (surface corruption), ``error_rate``
    (semantically wrong values), ``missing_rate`` (dropped attributes),
    ``source_accuracy_range`` (planted per-source accuracy band from
    which error behaviour is drawn).
    Identifier availability: ``identifier_probability``.
    Attribute long tail: each source additionally invents up to
    ``max_custom_attributes`` source-local attributes (shipping notes,
    warranty text, …) that correspond to nothing anywhere else —
    reproducing the web statistic that most attribute names appear in
    almost no sources.
    """

    n_sources: int = 20
    min_source_size: int = 5
    max_source_size: int = 200
    source_size_zipf: float = 1.0
    dialect_noise: float = 0.5
    format_noise: float = 0.3
    tail_attribute_rate: float = 0.3
    typo_rate: float = 0.05
    error_rate: float = 0.05
    missing_rate: float = 0.1
    identifier_probability: float = 0.8
    source_accuracy_range: tuple[float, float] = (0.7, 0.99)
    max_custom_attributes: int = 0
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_sources < 1:
            raise ConfigurationError("n_sources must be >= 1")
        if not 1 <= self.min_source_size <= self.max_source_size:
            raise ConfigurationError(
                "need 1 <= min_source_size <= max_source_size"
            )
        for name in (
            "dialect_noise",
            "format_noise",
            "tail_attribute_rate",
            "typo_rate",
            "error_rate",
            "missing_rate",
            "identifier_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        low, high = self.source_accuracy_range
        if not 0.0 < low <= high <= 1.0:
            raise ConfigurationError(
                "source_accuracy_range must satisfy 0 < low <= high <= 1"
            )
        if self.max_custom_attributes < 0:
            raise ConfigurationError(
                "max_custom_attributes must be >= 0"
            )


@dataclass(frozen=True)
class SourceProfile:
    """One source's rendering conventions (its 'template').

    ``dialect`` maps mediated attribute → this source's attribute name.
    ``unit_preference`` maps numeric mediated attributes → the unit this
    source renders them in. ``accuracy`` is the planted probability that
    a rendered value is semantically correct (before typos).
    ``custom_attributes`` maps this source's invented attribute names to
    their value pools — the long tail of attributes nobody else has.
    """

    source_id: str
    dialect: Mapping[str, str]
    unit_preference: Mapping[str, str]
    rendered_attributes: tuple[str, ...]
    publishes_identifier: bool
    uppercase: bool
    decimal_comma: bool
    accuracy: float
    custom_attributes: Mapping[str, tuple[str, ...]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.custom_attributes is None:
            object.__setattr__(self, "custom_attributes", {})


_CUSTOM_ATTRIBUTE_HEADS = (
    "shipping", "warranty", "availability", "condition", "rating",
    "stock", "delivery", "packaging", "origin", "bundle", "promo",
    "listing", "return", "payment", "seller", "handling",
)
_CUSTOM_ATTRIBUTE_TAILS = (
    "info", "notes", "policy", "status", "time", "details", "class",
    "terms", "code", "level", "options", "region",
)
_CUSTOM_VALUE_POOL = (
    "yes", "no", "free", "standard", "express", "2-5 days", "in stock",
    "limited", "new", "refurbished", "eu only", "worldwide", "30 days",
    "1 year", "2 years", "prepaid", "on request", "bulk", "fragile",
)


def _draw_custom_attributes(
    rng: random.Random, max_custom: int
) -> dict[str, tuple[str, ...]]:
    """Invent this source's local attributes and their value pools."""
    count = rng.randint(0, max_custom) if max_custom else 0
    custom: dict[str, tuple[str, ...]] = {}
    for __ in range(count):
        name = (
            f"{rng.choice(_CUSTOM_ATTRIBUTE_HEADS)} "
            f"{rng.choice(_CUSTOM_ATTRIBUTE_TAILS)}"
        )
        if name in custom:
            continue
        pool = tuple(
            rng.sample(_CUSTOM_VALUE_POOL, k=rng.randint(2, 5))
        )
        custom[name] = pool
    return custom


def _make_typo(value: str, rng: random.Random) -> str:
    """Apply one character-level corruption to ``value``."""
    if not value:
        return value
    position = rng.randrange(len(value))
    char = value[position]
    operation = rng.choice(("substitute", "delete", "insert", "transpose"))
    if operation == "substitute":
        neighbors = _KEYBOARD_NEIGHBORS.get(char.lower(), "abcdefghijklmnop")
        replacement = rng.choice(neighbors)
        return value[:position] + replacement + value[position + 1 :]
    if operation == "delete" and len(value) > 1:
        return value[:position] + value[position + 1 :]
    if operation == "insert":
        neighbors = _KEYBOARD_NEIGHBORS.get(char.lower(), "abcdefghijklmnop")
        return value[:position] + rng.choice(neighbors) + value[position:]
    if operation == "transpose" and position + 1 < len(value):
        return (
            value[:position]
            + value[position + 1]
            + value[position]
            + value[position + 2 :]
        )
    return value


def render_value(
    spec: AttributeSpec | None,
    true_value: str,
    profile: SourceProfile,
) -> str:
    """Render a true value through a source's format conventions.

    Numeric values are converted into the source's preferred unit;
    casing and decimal-comma conventions are applied. The rendered
    value stays *semantically* equal to the truth — typos and errors
    are injected separately.
    """
    rendered = true_value
    if spec is not None and spec.kind == "numeric" and spec.unit:
        preferred = profile.unit_preference.get(spec.name, spec.unit)
        if preferred != spec.unit:
            measurement = parse_measurement(true_value)
            if measurement is not None and measurement.unit:
                base = to_base_unit(measurement.value, measurement.unit)
                target = to_base_unit(1.0, preferred)
                if base is not None and target is not None:
                    __, base_value = base
                    __, per_unit = target
                    converted = base_value / per_unit
                    rendered = f"{converted:.5g} {preferred}"
    if profile.decimal_comma:
        rendered = _apply_decimal_comma(rendered)
    if profile.uppercase:
        rendered = rendered.upper()
    return rendered


def _apply_decimal_comma(value: str) -> str:
    """Replace decimal points inside numbers with commas."""
    out: list[str] = []
    for i, char in enumerate(value):
        is_decimal_point = (
            char == "."
            and 0 < i < len(value) - 1
            and value[i - 1].isdigit()
            and value[i + 1].isdigit()
        )
        out.append("," if is_decimal_point else char)
    return "".join(out)


def _build_profile(
    source_index: int,
    vocabulary: CategoryVocabulary,
    config: CorpusConfig,
    rng: random.Random,
) -> SourceProfile:
    dialect: dict[str, str] = {}
    if rng.random() < config.dialect_noise:
        dialect["name"] = rng.choice(_NAME_DIALECTS[1:])
    else:
        dialect["name"] = "name"
    unit_preference: dict[str, str] = {}
    for spec in vocabulary.attributes:
        if rng.random() < config.dialect_noise and len(spec.dialects) > 1:
            dialect[spec.name] = rng.choice(spec.dialects[1:])
        else:
            dialect[spec.name] = spec.dialects[0]
        if (
            spec.kind == "numeric"
            and spec.alt_units
            and rng.random() < config.format_noise
        ):
            unit_preference[spec.name] = rng.choice(spec.alt_units)
    rendered = [spec.name for spec in vocabulary.head_attributes()]
    for spec in vocabulary.tail_attributes():
        if rng.random() < config.tail_attribute_rate:
            rendered.append(spec.name)
    low, high = config.source_accuracy_range
    return SourceProfile(
        source_id=f"src{source_index:04d}.example.com",
        dialect=dialect,
        unit_preference=unit_preference,
        rendered_attributes=tuple(rendered),
        publishes_identifier=rng.random() < config.identifier_probability,
        uppercase=rng.random() < 0.3 * config.format_noise,
        decimal_comma=rng.random() < 0.4 * config.format_noise,
        accuracy=rng.uniform(low, high),
        custom_attributes=_draw_custom_attributes(
            rng, config.max_custom_attributes
        ),
    )


def _wrong_value(
    spec: AttributeSpec, true_value: str, rng: random.Random
) -> str:
    """A semantically wrong value for ``spec`` (never the truth)."""
    for _ in range(20):
        candidate = spec.draw_true_value(rng, rng.randrange(1_000_000))
        if candidate != true_value:
            return candidate
    return true_value + " x"  # pathological spec; still wrong


def _render_record(
    entity: Entity,
    profile: SourceProfile,
    vocabulary: CategoryVocabulary,
    config: CorpusConfig,
    rng: random.Random,
    local_index: int,
    value_corrections: dict[tuple[str, str], str],
) -> tuple[Record, dict[tuple[str, str], str]]:
    """Render one record; return it plus its (source attr → mediated) map."""
    attributes: dict[str, str] = {}
    attribute_map: dict[tuple[str, str], str] = {}

    # The entity name is always rendered (it is the record's title).
    name_attr = profile.dialect.get("name", "name")
    name_value = entity.name
    if rng.random() < config.typo_rate:
        name_value = _make_typo(name_value, rng)
    if profile.uppercase:
        name_value = name_value.upper()
    attributes[name_attr] = name_value
    attribute_map[(profile.source_id, name_attr)] = "name"

    for mediated_name in profile.rendered_attributes:
        spec = vocabulary.spec(mediated_name)
        if spec.kind == "identifier" and not profile.publishes_identifier:
            continue
        if rng.random() < config.missing_rate:
            continue
        true_value = entity.true_values[mediated_name]
        is_error = (
            spec.kind != "identifier"
            and rng.random() > profile.accuracy * (1.0 - config.error_rate)
        )
        if is_error:
            key = (entity.entity_id, mediated_name)
            semantic_value = value_corrections.get(key)
            if semantic_value is None:
                semantic_value = _wrong_value(spec, true_value, rng)
        else:
            semantic_value = true_value
        rendered = render_value(spec, semantic_value, profile)
        if spec.kind != "identifier" and rng.random() < config.typo_rate:
            rendered = _make_typo(rendered, rng)
        source_attr = profile.dialect[mediated_name]
        attributes[source_attr] = rendered
        attribute_map[(profile.source_id, source_attr)] = mediated_name

    # Source-local custom attributes: present on most pages, mapped to
    # a mediated attribute unique to this source (they truly correspond
    # to nothing elsewhere).
    for custom_name, pool in profile.custom_attributes.items():
        if custom_name in attributes or rng.random() < 0.3:
            continue
        attributes[custom_name] = rng.choice(pool)
        attribute_map[(profile.source_id, custom_name)] = (
            f"custom::{profile.source_id}::{custom_name}"
        )

    record = Record(
        record_id=f"{profile.source_id}/{local_index:05d}",
        source_id=profile.source_id,
        attributes=attributes,
    )
    return record, attribute_map


def build_source_profiles(
    world: World,
    config: CorpusConfig,
    n_profiles: int | None = None,
    id_offset: int = 0,
) -> list[SourceProfile]:
    """Draw source rendering profiles without rendering any records.

    Used by the velocity substrate, which needs the *same* source
    templates across corpus snapshots (a website keeps its layout even
    as its catalog changes). ``id_offset`` shifts source numbering so
    replacement sources get fresh ids.
    """
    rng = random.Random(config.seed + 1_000_003 * (id_offset + 1))
    categories = world.categories
    count = n_profiles if n_profiles is not None else config.n_sources
    profiles = []
    for index in range(count):
        category = categories[(index + id_offset) % len(categories)]
        vocabulary = world.vocabulary(category)
        profiles.append(
            _build_profile(index + id_offset, vocabulary, config, rng)
        )
    return profiles


def generate_dataset(
    world: World,
    config: CorpusConfig | None = None,
    source_profiles: Sequence[SourceProfile] | None = None,
) -> Dataset:
    """Render ``world`` through ``config.n_sources`` heterogeneous sources.

    Returns a :class:`Dataset` whose ground truth carries the exact
    record→entity mapping, the exact (source attribute → mediated
    attribute) mapping, and the true value of every (entity, mediated
    attribute) data item.

    ``source_profiles`` lets callers (e.g. the velocity substrate)
    pin the source templates across snapshots.
    """
    config = config or CorpusConfig()
    rng = random.Random(config.seed)
    categories = world.categories
    size_weights = zipf_weights(config.n_sources, config.source_size_zipf)
    max_span = config.max_source_size - config.min_source_size

    sources: list[Source] = []
    record_to_entity: dict[str, str] = {}
    attribute_to_mediated: dict[tuple[str, str], str] = {}
    true_values: dict[tuple[str, str], str] = {}

    for entity in world.entities:
        for attr, value in entity.true_values.items():
            true_values[(entity.entity_id, attr)] = value

    for source_index in range(config.n_sources):
        source_category = categories[source_index % len(categories)]
        vocabulary = world.vocabulary(source_category)
        if source_profiles is not None:
            profile = source_profiles[source_index]
        else:
            profile = _build_profile(source_index, vocabulary, config, rng)
        relative = size_weights[source_index] / size_weights[0]
        size = config.min_source_size + round(max_span * relative)
        candidates = world.entities_in(source_category)
        size = min(size, len(candidates))
        weights = [e.popularity for e in candidates]
        chosen = _sample_without_replacement(candidates, weights, size, rng)

        source = Source(
            profile.source_id,
            cost=1.0 + rng.random(),
            metadata={
                "category": source_category,
                "planted_accuracy": f"{profile.accuracy:.4f}",
            },
        )
        for local_index, entity in enumerate(chosen):
            record, attribute_map = _render_record(
                entity, profile, vocabulary, config, rng, local_index, {}
            )
            source.add(record)
            record_to_entity[record.record_id] = entity.entity_id
            attribute_to_mediated.update(attribute_map)
        sources.append(source)

    truth = GroundTruth(record_to_entity, true_values, attribute_to_mediated)
    return Dataset(sources, truth, name="synthetic-corpus")


def _sample_without_replacement(
    population: Sequence[Entity],
    weights: Sequence[float],
    k: int,
    rng: random.Random,
) -> list[Entity]:
    """Weighted sampling without replacement (Efraimidis-Spirakis keys)."""
    if k >= len(population):
        return list(population)
    keyed = []
    for item, weight in zip(population, weights):
        if weight <= 0:
            continue
        keyed.append((rng.random() ** (1.0 / weight), item))
    keyed.sort(key=lambda pair: pair[0], reverse=True)
    return [item for __, item in keyed[:k]]
