"""One-call corpus construction with 4-V knobs.

:func:`build_corpus` wires the world generator, the source renderer,
and (optionally) copier injection into a single call parameterized by
the four big-data dimensions, so examples and benchmarks can say
"give me a corpus with high variety and moderate veracity problems"
in one line.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.dataset import Dataset
from repro.core.errors import ConfigurationError
from repro.synth.copiers import CopierConfig, add_copier_sources
from repro.synth.sources import CorpusConfig, generate_dataset
from repro.synth.world import World, WorldConfig, generate_world

__all__ = ["FourVKnobs", "build_corpus", "BuiltCorpus"]


@dataclass(frozen=True)
class FourVKnobs:
    """The 4-V dials, each in ``[0, 1]``, mapped onto generator configs.

    * ``volume`` scales the number of sources (5 → 55) and entities
      per category (40 → 400).
    * ``variety`` scales dialect noise, format noise, and tail-attribute
      prevalence.
    * ``veracity`` scales typo, error, and missing rates downward from
      clean (0 = clean corpus, 1 = very dirty) and adds copier sources.
    * ``velocity`` is consumed by the velocity substrate, not here; it
      is carried along for reporting.
    """

    volume: float = 0.3
    variety: float = 0.5
    veracity: float = 0.3
    velocity: float = 0.0
    seed: int = 29

    def __post_init__(self) -> None:
        for name in ("volume", "variety", "veracity", "velocity"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")

    def world_config(self) -> WorldConfig:
        """WorldConfig implied by these knobs."""
        return WorldConfig(
            categories=("camera", "notebook", "headphone"),
            entities_per_category=int(40 + 360 * self.volume),
            zipf_exponent=1.0,
            seed=self.seed,
        )

    def corpus_config(self) -> CorpusConfig:
        """CorpusConfig implied by these knobs."""
        return CorpusConfig(
            n_sources=int(5 + 50 * self.volume),
            min_source_size=5,
            max_source_size=int(40 + 260 * self.volume),
            dialect_noise=0.2 + 0.7 * self.variety,
            format_noise=0.1 + 0.6 * self.variety,
            tail_attribute_rate=0.1 + 0.5 * self.variety,
            typo_rate=0.1 * self.veracity,
            error_rate=0.12 * self.veracity,
            missing_rate=0.05 + 0.2 * self.veracity,
            identifier_probability=max(0.4, 0.95 - 0.4 * self.variety),
            source_accuracy_range=(
                max(0.5, 0.95 - 0.45 * self.veracity),
                0.99,
            ),
            seed=self.seed + 1,
        )

    def copier_config(self) -> CopierConfig | None:
        """CopierConfig implied by these knobs (None when veracity ~ 0)."""
        n_copiers = int(round(4 * self.veracity))
        if n_copiers == 0:
            return None
        return CopierConfig(
            n_copiers=n_copiers,
            copy_fraction=0.8,
            perturbation_rate=0.05,
            seed=self.seed + 2,
        )


@dataclass(frozen=True)
class BuiltCorpus:
    """A generated corpus and the generation artifacts behind it."""

    dataset: Dataset
    world: World
    knobs: FourVKnobs
    copier_of: dict[str, str]


def build_corpus(knobs: FourVKnobs | None = None) -> BuiltCorpus:
    """Build a full corpus from 4-V knobs (deterministic in the seed)."""
    knobs = knobs or FourVKnobs()
    world = generate_world(knobs.world_config())
    dataset = generate_dataset(world, knobs.corpus_config())
    copier_config = knobs.copier_config()
    copier_of: dict[str, str] = {}
    if copier_config is not None:
        dataset, copier_of = add_copier_sources(dataset, copier_config)
    return BuiltCorpus(
        dataset=dataset, world=world, knobs=knobs, copier_of=copier_of
    )


def scaled(knobs: FourVKnobs, **overrides: float) -> FourVKnobs:
    """A copy of ``knobs`` with some dials replaced (sweep helper)."""
    return replace(knobs, **overrides)
