"""Planted claim-matrix generation for fusion experiments.

This generator reproduces the experimental setup of the canonical
fusion studies: a set of data items with a known true value, a set of
*independent* sources each with a planted accuracy (a source provides
the true value with probability equal to its accuracy, otherwise one of
``n_false_values`` uniformly chosen wrong values), and a set of
*copiers*, each copying a parent source's value with probability
``copy_rate`` per item and answering independently otherwise.

Because the truth, the accuracies, and the copier DAG are all planted,
fusion algorithms can be scored exactly — including copy detection
precision/recall against the planted edges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.fusion.base import Claim, ClaimSet

__all__ = [
    "ClaimWorldConfig",
    "NumericClaimWorldConfig",
    "PlantedClaims",
    "PlantedNumericClaims",
    "generate_claims",
    "generate_numeric_claims",
]


@dataclass(frozen=True)
class ClaimWorldConfig:
    """Knobs for planted claim generation.

    Parameters
    ----------
    n_items:
        Number of data items.
    n_independent:
        Number of independent sources.
    n_copiers:
        Number of copier sources. Each copier picks one parent among
        the independent sources (or, with ``copier_chains=True``,
        possibly another copier created earlier).
    accuracy_range:
        Planted accuracies of independent sources are drawn uniformly
        from this band. Copiers' *independent-answer* accuracy is drawn
        from the same band.
    copy_rate:
        Per-item probability that a copier copies its parent instead of
        answering independently.
    coverage:
        Per-(source, item) probability that the source claims the item
        at all.
    n_false_values:
        Size of the wrong-value pool per item; false values are shared
        across sources (uniform-false-value model).
    copier_chains:
        Allow copiers to copy from earlier copiers, forming chains.
    parent_pool:
        When set, copiers pick parents only among the first
        ``parent_pool`` independent sources (plus earlier copiers when
        chaining) — concentrating the copying, which is the regime
        where copy-unaware fusion visibly breaks.
    parent_accuracy:
        When set, overrides the planted accuracy of the parent-pool
        sources (e.g. a low value plants a popular-but-wrong source).
    seed:
        Seed for the generator's private RNG.
    """

    n_items: int = 100
    n_independent: int = 10
    n_copiers: int = 0
    accuracy_range: tuple[float, float] = (0.6, 0.95)
    copy_rate: float = 0.8
    coverage: float = 1.0
    n_false_values: int = 10
    copier_chains: bool = False
    parent_pool: int | None = None
    parent_accuracy: float | None = None
    seed: int = 13

    def __post_init__(self) -> None:
        if self.n_items < 1:
            raise ConfigurationError("n_items must be >= 1")
        if self.n_independent < 1:
            raise ConfigurationError("n_independent must be >= 1")
        if self.n_copiers < 0:
            raise ConfigurationError("n_copiers must be >= 0")
        low, high = self.accuracy_range
        if not 0.0 < low <= high <= 1.0:
            raise ConfigurationError(
                "accuracy_range must satisfy 0 < low <= high <= 1"
            )
        if not 0.0 <= self.copy_rate <= 1.0:
            raise ConfigurationError("copy_rate must be in [0, 1]")
        if not 0.0 < self.coverage <= 1.0:
            raise ConfigurationError("coverage must be in (0, 1]")
        if self.n_false_values < 1:
            raise ConfigurationError("n_false_values must be >= 1")
        if self.parent_pool is not None and not (
            1 <= self.parent_pool <= self.n_independent
        ):
            raise ConfigurationError(
                "parent_pool must be in [1, n_independent]"
            )
        if self.parent_accuracy is not None and not (
            0.0 < self.parent_accuracy <= 1.0
        ):
            raise ConfigurationError("parent_accuracy must be in (0, 1]")


@dataclass(frozen=True)
class PlantedClaims:
    """A claim set together with everything that was planted in it."""

    claims: ClaimSet
    truth: Mapping[str, str]
    accuracies: Mapping[str, float]
    copier_of: Mapping[str, str]

    @property
    def independent_sources(self) -> tuple[str, ...]:
        """Sources that answer independently (non-copiers)."""
        return tuple(
            source
            for source in self.claims.sources()
            if source not in self.copier_of
        )


def generate_claims(config: ClaimWorldConfig | None = None) -> PlantedClaims:
    """Generate a planted claim world from ``config`` (deterministic)."""
    config = config or ClaimWorldConfig()
    rng = random.Random(config.seed)
    low, high = config.accuracy_range

    items = [f"item{i:05d}" for i in range(config.n_items)]
    truth = {item: f"{item}/v0" for item in items}
    false_pools = {
        item: [f"{item}/v{j}" for j in range(1, config.n_false_values + 1)]
        for item in items
    }

    independent = [f"ind{i:03d}" for i in range(config.n_independent)]
    copiers = [f"cop{i:03d}" for i in range(config.n_copiers)]
    accuracies = {source: rng.uniform(low, high) for source in independent}
    accuracies.update({source: rng.uniform(low, high) for source in copiers})
    pool_size = config.parent_pool or config.n_independent
    if config.parent_accuracy is not None:
        for source in independent[:pool_size]:
            accuracies[source] = config.parent_accuracy

    copier_of: dict[str, str] = {}
    for index, copier in enumerate(copiers):
        parents = independent[:pool_size]
        if config.copier_chains:
            parents = parents + copiers[:index]
        copier_of[copier] = rng.choice(parents)

    def independent_answer(source: str, item: str) -> str:
        if rng.random() < accuracies[source]:
            return truth[item]
        return rng.choice(false_pools[item])

    claim_set = ClaimSet()
    answers: dict[tuple[str, str], str] = {}

    for source in independent:
        for item in items:
            if rng.random() >= config.coverage:
                continue
            value = independent_answer(source, item)
            answers[(source, item)] = value
            claim_set.add(Claim(source, item, value))

    # Copiers are materialized in creation order so chain parents are
    # already answered when a chained copier consults them.
    for copier in copiers:
        parent = copier_of[copier]
        for item in items:
            if rng.random() >= config.coverage:
                continue
            parent_value = answers.get((parent, item))
            if parent_value is not None and rng.random() < config.copy_rate:
                value = parent_value
            else:
                value = independent_answer(copier, item)
            answers[(copier, item)] = value
            claim_set.add(Claim(copier, item, value))

    return PlantedClaims(
        claims=claim_set,
        truth=truth,
        accuracies=accuracies,
        copier_of=copier_of,
    )


@dataclass(frozen=True)
class NumericClaimWorldConfig:
    """Knobs for planted *numeric* claim generation (the CRH setting).

    Each item has a true value uniform in ``value_range``; each source
    observes it with Gaussian noise whose standard deviation is drawn
    (per source) from ``noise_range``, expressed as a fraction of the
    value range's width. ``outlier_sources`` sources additionally
    suffer ``outlier_rate`` gross errors (uniform anywhere in range) —
    the heavy tails that separate robust from mean-based aggregation.
    """

    n_items: int = 100
    n_sources: int = 10
    value_range: tuple[float, float] = (0.0, 1000.0)
    noise_range: tuple[float, float] = (0.005, 0.05)
    outlier_sources: int = 0
    outlier_rate: float = 0.3
    coverage: float = 1.0
    seed: int = 37

    def __post_init__(self) -> None:
        if self.n_items < 1 or self.n_sources < 1:
            raise ConfigurationError("need >= 1 item and source")
        low, high = self.value_range
        if low >= high:
            raise ConfigurationError("value_range must satisfy low < high")
        nlow, nhigh = self.noise_range
        if not 0.0 < nlow <= nhigh:
            raise ConfigurationError("noise_range must satisfy 0 < low <= high")
        if not 0 <= self.outlier_sources <= self.n_sources:
            raise ConfigurationError(
                "outlier_sources must be in [0, n_sources]"
            )
        if not 0.0 <= self.outlier_rate <= 1.0:
            raise ConfigurationError("outlier_rate must be in [0, 1]")
        if not 0.0 < self.coverage <= 1.0:
            raise ConfigurationError("coverage must be in (0, 1]")


@dataclass(frozen=True)
class PlantedNumericClaims:
    """Numeric claims plus everything planted in them."""

    claims: Mapping[tuple[str, str], float]
    truth: Mapping[str, float]
    noise_levels: Mapping[str, float]
    outlier_sources: tuple[str, ...]


def generate_numeric_claims(
    config: NumericClaimWorldConfig | None = None,
) -> PlantedNumericClaims:
    """Generate a planted numeric claim world (deterministic)."""
    config = config or NumericClaimWorldConfig()
    rng = random.Random(config.seed)
    low, high = config.value_range
    width = high - low
    items = [f"item{i:05d}" for i in range(config.n_items)]
    truth = {item: rng.uniform(low, high) for item in items}
    sources = [f"num{i:03d}" for i in range(config.n_sources)]
    nlow, nhigh = config.noise_range
    noise = {source: rng.uniform(nlow, nhigh) * width for source in sources}
    outliers = tuple(sources[: config.outlier_sources])
    claims: dict[tuple[str, str], float] = {}
    for source in sources:
        for item in items:
            if rng.random() >= config.coverage:
                continue
            if source in outliers and rng.random() < config.outlier_rate:
                claims[(source, item)] = rng.uniform(low, high)
            else:
                claims[(source, item)] = rng.gauss(
                    truth[item], noise[source]
                )
    return PlantedNumericClaims(
        claims=claims,
        truth=truth,
        noise_levels=noise,
        outlier_sources=outliers,
    )
