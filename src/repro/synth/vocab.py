"""Domain vocabularies for the synthetic-world generator.

A :class:`CategoryVocabulary` describes one entity category (cameras,
notebooks, flights, …): the mediated attributes entities of that
category have, how true values for each attribute are drawn, and the
*name dialects* sources use for each attribute — the raw material for
schema heterogeneity.

The built-in catalog covers product categories (echoing the
web-extraction studies the tutorial draws on) plus the books and
flights domains used by the canonical fusion experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

__all__ = [
    "AttributeSpec",
    "CategoryVocabulary",
    "builtin_catalog",
    "category",
]


@dataclass(frozen=True)
class AttributeSpec:
    """How one mediated attribute behaves.

    Parameters
    ----------
    name:
        Canonical (mediated) attribute name.
    dialects:
        Alternative names sources may use, *including* a few that are
        plain renamings and a few that are abbreviations. The canonical
        name itself is always an admissible dialect.
    kind:
        ``"categorical"`` draws from ``values``; ``"numeric"`` draws
        uniformly in ``[low, high]`` with ``digits`` decimals and
        renders with ``unit`` (alternate units in ``alt_units`` are
        applied by source formatting); ``"identifier"`` synthesizes a
        per-entity alphanumeric code.
    values:
        Categorical value pool (categorical kind only).
    low, high, digits, unit, alt_units:
        Numeric parameters (numeric kind only). ``alt_units`` are units
        convertible from ``unit`` via :mod:`repro.text.normalize`.
    tail:
        Tail attributes are rendered by few sources (they model the
        long tail of attribute names).
    """

    name: str
    dialects: tuple[str, ...]
    kind: str = "categorical"
    values: tuple[str, ...] = ()
    low: float = 0.0
    high: float = 1.0
    digits: int = 1
    unit: str | None = None
    alt_units: tuple[str, ...] = ()
    tail: bool = False

    def __post_init__(self) -> None:
        if self.kind not in {"categorical", "numeric", "identifier"}:
            raise ConfigurationError(f"unknown attribute kind {self.kind!r}")
        if self.kind == "categorical" and not self.values:
            raise ConfigurationError(
                f"categorical attribute {self.name!r} needs values"
            )
        if self.kind == "numeric" and self.low >= self.high:
            raise ConfigurationError(
                f"numeric attribute {self.name!r} needs low < high"
            )

    def draw_true_value(self, rng: random.Random, entity_index: int) -> str:
        """Draw this attribute's true value for one entity."""
        if self.kind == "categorical":
            return rng.choice(self.values)
        if self.kind == "numeric":
            value = rng.uniform(self.low, self.high)
            rendered = f"{value:.{self.digits}f}"
            return f"{rendered} {self.unit}" if self.unit else rendered
        # identifier: a stable per-entity alphanumeric code
        prefix = "".join(rng.choice("ABCDEFGHJKLMNPQRSTUVWXYZ") for _ in range(3))
        return f"{prefix}-{entity_index:06d}"


@dataclass(frozen=True)
class CategoryVocabulary:
    """All attribute specs of one entity category."""

    name: str
    brands: tuple[str, ...]
    attributes: tuple[AttributeSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.attributes]
        if len(names) != len(set(names)):
            raise ConfigurationError(
                f"duplicate attribute names in category {self.name!r}"
            )

    def head_attributes(self) -> tuple[AttributeSpec, ...]:
        """Attributes most sources render."""
        return tuple(spec for spec in self.attributes if not spec.tail)

    def tail_attributes(self) -> tuple[AttributeSpec, ...]:
        """Attributes only a few sources render."""
        return tuple(spec for spec in self.attributes if spec.tail)

    def spec(self, attribute_name: str) -> AttributeSpec:
        """The spec for a mediated attribute name."""
        for spec in self.attributes:
            if spec.name == attribute_name:
                return spec
        raise ConfigurationError(
            f"category {self.name!r} has no attribute {attribute_name!r}"
        )


_COLORS = (
    "black", "white", "silver", "gray", "red", "blue", "green",
    "gold", "pink", "orange",
)

_CAMERA = CategoryVocabulary(
    name="camera",
    brands=(
        "canon", "nikon", "sony", "fujifilm", "olympus", "panasonic",
        "pentax", "leica", "kodak", "samsung",
    ),
    attributes=(
        AttributeSpec(
            "product id", ("product id", "sku", "mpn", "model number", "item code"),
            kind="identifier",
        ),
        AttributeSpec(
            "brand", ("brand", "manufacturer", "make", "producer"),
            values=(
                "canon", "nikon", "sony", "fujifilm", "olympus",
                "panasonic", "pentax", "leica", "kodak", "samsung",
            ),
        ),
        AttributeSpec(
            "color", ("color", "colour", "body color", "finish"),
            values=_COLORS,
        ),
        AttributeSpec(
            "resolution", ("resolution", "megapixels", "mp", "effective pixels"),
            kind="numeric", low=8, high=60, digits=1, unit=None,
        ),
        AttributeSpec(
            "screen size",
            ("screen size", "display size", "lcd size", "monitor size"),
            kind="numeric", low=2.5, high=4.0, digits=1, unit="in",
            alt_units=("cm",),
        ),
        AttributeSpec(
            "weight", ("weight", "item weight", "body weight", "mass"),
            kind="numeric", low=200, high=1500, digits=0, unit="g",
            alt_units=("kg", "oz"),
        ),
        AttributeSpec(
            "sensor type", ("sensor type", "sensor", "imaging sensor"),
            values=("cmos", "ccd", "bsi cmos", "foveon"),
        ),
        AttributeSpec(
            "optical zoom", ("optical zoom", "zoom", "zoom ratio"),
            kind="numeric", low=1, high=80, digits=0, unit=None, tail=True,
        ),
        AttributeSpec(
            "viewfinder", ("viewfinder", "viewfinder type", "finder"),
            values=("electronic", "optical", "hybrid", "none"), tail=True,
        ),
        AttributeSpec(
            "battery life", ("battery life", "shots per charge", "cipa rating"),
            kind="numeric", low=200, high=1200, digits=0, unit=None, tail=True,
        ),
    ),
)

_NOTEBOOK = CategoryVocabulary(
    name="notebook",
    brands=(
        "lenovo", "dell", "hp", "asus", "acer", "apple", "msi",
        "toshiba", "samsung", "lg",
    ),
    attributes=(
        AttributeSpec(
            "product id", ("product id", "sku", "mpn", "part number", "model code"),
            kind="identifier",
        ),
        AttributeSpec(
            "brand", ("brand", "manufacturer", "make", "vendor"),
            values=(
                "lenovo", "dell", "hp", "asus", "acer", "apple", "msi",
                "toshiba", "samsung", "lg",
            ),
        ),
        AttributeSpec(
            "screen size",
            ("screen size", "display", "display size", "screen diagonal"),
            kind="numeric", low=11.0, high=17.5, digits=1, unit="in",
            alt_units=("cm",),
        ),
        AttributeSpec(
            "memory", ("memory", "ram", "installed ram", "system memory"),
            values=("4 gb", "8 gb", "16 gb", "32 gb", "64 gb"),
        ),
        AttributeSpec(
            "storage", ("storage", "hard drive", "ssd capacity", "disk size"),
            values=("256 gb", "512 gb", "1 tb", "2 tb"),
        ),
        AttributeSpec(
            "cpu speed", ("cpu speed", "processor speed", "clock speed"),
            kind="numeric", low=1.1, high=5.4, digits=1, unit="ghz",
            alt_units=("mhz",),
        ),
        AttributeSpec(
            "weight", ("weight", "item weight", "travel weight"),
            kind="numeric", low=900, high=3500, digits=0, unit="g",
            alt_units=("kg", "lb"),
        ),
        AttributeSpec(
            "color", ("color", "colour", "chassis color"), values=_COLORS,
        ),
        AttributeSpec(
            "battery life", ("battery life", "battery runtime", "run time"),
            kind="numeric", low=4, high=24, digits=0, unit=None, tail=True,
        ),
        AttributeSpec(
            "keyboard layout", ("keyboard layout", "keyboard", "layout"),
            values=("qwerty us", "qwerty uk", "qwertz", "azerty"), tail=True,
        ),
        AttributeSpec(
            "ports", ("ports", "usb ports", "port count"),
            kind="numeric", low=1, high=6, digits=0, unit=None, tail=True,
        ),
    ),
)

_HEADPHONE = CategoryVocabulary(
    name="headphone",
    brands=(
        "bose", "sony", "sennheiser", "akg", "audio-technica",
        "beyerdynamic", "jbl", "shure", "skullcandy", "philips",
    ),
    attributes=(
        AttributeSpec(
            "product id", ("product id", "sku", "mpn", "model"),
            kind="identifier",
        ),
        AttributeSpec(
            "brand", ("brand", "manufacturer", "make"),
            values=(
                "bose", "sony", "sennheiser", "akg", "audio-technica",
                "beyerdynamic", "jbl", "shure", "skullcandy", "philips",
            ),
        ),
        AttributeSpec(
            "form factor", ("form factor", "type", "wearing style", "design"),
            values=("over-ear", "on-ear", "in-ear", "earbud"),
        ),
        AttributeSpec(
            "impedance", ("impedance", "nominal impedance", "ohms"),
            kind="numeric", low=16, high=600, digits=0, unit=None,
        ),
        AttributeSpec(
            "weight", ("weight", "item weight", "net weight"),
            kind="numeric", low=10, high=450, digits=0, unit="g",
            alt_units=("oz",),
        ),
        AttributeSpec(
            "color", ("color", "colour", "shade"), values=_COLORS,
        ),
        AttributeSpec(
            "connectivity", ("connectivity", "connection", "interface"),
            values=("wired", "bluetooth", "wireless", "usb-c"),
        ),
        AttributeSpec(
            "driver size", ("driver size", "driver diameter", "transducer size"),
            kind="numeric", low=6, high=70, digits=0, unit="mm",
            alt_units=("cm",), tail=True,
        ),
        AttributeSpec(
            "noise cancelling", ("noise cancelling", "anc", "noise reduction"),
            values=("yes", "no", "adaptive"), tail=True,
        ),
    ),
)

_BOOK = CategoryVocabulary(
    name="book",
    brands=(
        "penguin", "harpercollins", "randomhouse", "macmillan", "hachette",
        "simon-schuster", "wiley", "springer", "oreilly", "mit-press",
    ),
    attributes=(
        AttributeSpec(
            "isbn", ("isbn", "isbn 13", "isbn13", "ean"), kind="identifier",
        ),
        AttributeSpec(
            "publisher", ("publisher", "imprint", "publishing house"),
            values=(
                "penguin", "harpercollins", "randomhouse", "macmillan",
                "hachette", "simon-schuster", "wiley", "springer",
                "oreilly", "mit-press",
            ),
        ),
        AttributeSpec(
            "format", ("format", "binding", "cover type"),
            values=("hardcover", "paperback", "ebook", "audiobook"),
        ),
        AttributeSpec(
            "pages", ("pages", "page count", "number of pages", "length"),
            kind="numeric", low=80, high=1200, digits=0, unit=None,
        ),
        AttributeSpec(
            "year", ("year", "publication year", "published", "copyright year"),
            kind="numeric", low=1960, high=2013, digits=0, unit=None,
        ),
        AttributeSpec(
            "language", ("language", "text language", "lang"),
            values=("english", "spanish", "french", "german", "italian"),
        ),
        AttributeSpec(
            "edition", ("edition", "edition number", "ed"),
            values=("1st", "2nd", "3rd", "4th", "revised"), tail=True,
        ),
    ),
)

_FLIGHT = CategoryVocabulary(
    name="flight",
    brands=(
        "aa", "ua", "dl", "wn", "b6", "as", "nk", "f9", "ha", "g4",
    ),
    attributes=(
        AttributeSpec(
            "flight number", ("flight number", "flight", "flight no", "flt"),
            kind="identifier",
        ),
        AttributeSpec(
            "airline", ("airline", "carrier", "operated by"),
            values=(
                "aa", "ua", "dl", "wn", "b6", "as", "nk", "f9", "ha", "g4",
            ),
        ),
        AttributeSpec(
            "departure gate", ("departure gate", "gate", "dep gate"),
            values=tuple(f"{letter}{n}" for letter in "ABCD" for n in range(1, 13)),
        ),
        AttributeSpec(
            "departure time", ("departure time", "scheduled departure", "dep time"),
            values=tuple(
                f"{h:02d}:{m:02d}" for h in range(5, 23) for m in (0, 15, 30, 45)
            ),
        ),
        AttributeSpec(
            "arrival time", ("arrival time", "scheduled arrival", "arr time"),
            values=tuple(
                f"{h:02d}:{m:02d}" for h in range(6, 24) for m in (5, 20, 35, 50)
            ),
        ),
        AttributeSpec(
            "status", ("status", "flight status", "state"),
            values=("on time", "delayed", "boarding", "departed", "cancelled"),
        ),
        AttributeSpec(
            "aircraft", ("aircraft", "equipment", "plane type"),
            values=("a320", "a321", "b737", "b738", "b777", "e175", "crj9"),
            tail=True,
        ),
    ),
)

_MONITOR = CategoryVocabulary(
    name="monitor",
    brands=(
        "dell", "lg", "samsung", "asus", "acer", "benq", "aoc",
        "viewsonic", "philips", "hp",
    ),
    attributes=(
        AttributeSpec(
            "product id", ("product id", "sku", "mpn", "part number"),
            kind="identifier",
        ),
        AttributeSpec(
            "brand", ("brand", "manufacturer", "make"),
            values=(
                "dell", "lg", "samsung", "asus", "acer", "benq", "aoc",
                "viewsonic", "philips", "hp",
            ),
        ),
        AttributeSpec(
            "screen size",
            ("screen size", "display size", "diagonal", "panel size"),
            kind="numeric", low=19.0, high=49.0, digits=1, unit="in",
            alt_units=("cm",),
        ),
        AttributeSpec(
            "refresh rate", ("refresh rate", "frequency", "refresh"),
            values=("60 hz", "75 hz", "120 hz", "144 hz", "240 hz"),
        ),
        AttributeSpec(
            "panel type", ("panel type", "panel", "display technology"),
            values=("ips", "va", "tn", "oled"),
        ),
        AttributeSpec(
            "weight", ("weight", "item weight", "net weight"),
            kind="numeric", low=2000, high=12000, digits=0, unit="g",
            alt_units=("kg", "lb"),
        ),
        AttributeSpec(
            "color", ("color", "colour", "chassis color"), values=_COLORS,
        ),
        AttributeSpec(
            "vesa mount", ("vesa mount", "vesa", "mount pattern"),
            values=("75x75", "100x100", "200x200", "none"), tail=True,
        ),
        AttributeSpec(
            "curvature", ("curvature", "curve radius", "screen curve"),
            values=("flat", "1000r", "1500r", "1800r"), tail=True,
        ),
    ),
)

_TELEVISION = CategoryVocabulary(
    name="television",
    brands=(
        "samsung", "lg", "sony", "tcl", "hisense", "panasonic",
        "philips", "vizio", "sharp", "toshiba",
    ),
    attributes=(
        AttributeSpec(
            "product id", ("product id", "sku", "mpn", "model code"),
            kind="identifier",
        ),
        AttributeSpec(
            "brand", ("brand", "manufacturer", "make"),
            values=(
                "samsung", "lg", "sony", "tcl", "hisense", "panasonic",
                "philips", "vizio", "sharp", "toshiba",
            ),
        ),
        AttributeSpec(
            "screen size",
            ("screen size", "display size", "diagonal", "class size"),
            kind="numeric", low=32.0, high=85.0, digits=0, unit="in",
            alt_units=("cm",),
        ),
        AttributeSpec(
            "resolution", ("resolution", "display resolution", "pixels"),
            values=("720p", "1080p", "4k", "8k"),
        ),
        AttributeSpec(
            "display type", ("display type", "panel", "screen technology"),
            values=("led", "oled", "qled", "lcd", "mini-led"),
        ),
        AttributeSpec(
            "smart platform", ("smart platform", "os", "smart tv system"),
            values=("webos", "tizen", "android tv", "roku", "none"),
        ),
        AttributeSpec(
            "weight", ("weight", "item weight", "weight without stand"),
            kind="numeric", low=4000, high=45000, digits=0, unit="g",
            alt_units=("kg", "lb"),
        ),
        AttributeSpec(
            "hdmi ports", ("hdmi ports", "hdmi", "hdmi inputs"),
            kind="numeric", low=1, high=6, digits=0, unit=None, tail=True,
        ),
        AttributeSpec(
            "hdr", ("hdr", "hdr support", "high dynamic range"),
            values=("hdr10", "hdr10+", "dolby vision", "none"), tail=True,
        ),
    ),
)

_BUILTIN: dict[str, CategoryVocabulary] = {
    vocab.name: vocab
    for vocab in (
        _CAMERA, _NOTEBOOK, _HEADPHONE, _BOOK, _FLIGHT, _MONITOR,
        _TELEVISION,
    )
}


def builtin_catalog() -> dict[str, CategoryVocabulary]:
    """All built-in category vocabularies, keyed by category name."""
    return dict(_BUILTIN)


def category(name: str) -> CategoryVocabulary:
    """Look up a built-in category vocabulary by name."""
    try:
        return _BUILTIN[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown category {name!r}; available: {sorted(_BUILTIN)}"
        ) from None
