"""Temporal evolution: evolving worlds and time-stamped record streams.

Three consumers need time in the corpus:

* **Temporal record linkage** (E7) needs streams of observations of
  entities whose discriminative attributes *change over time* — the
  setting where decay-based matching beats static matching.
* **Velocity maintenance** (E14) needs successive *snapshots* of a
  product world where entities appear, disappear, and change values.
* **Continuous ingestion** (E26) needs the *unbounded* versions of
  both: generator-based streams that never materialize a corpus, so a
  streaming pipeline can run for as long as the experiment demands.

All are generated here, deterministically from a seed. The bounded
outputs are exact prefixes of the unbounded generators: consuming the
first ``n_epochs`` worth of :func:`stream_temporal_observations` (or
the first ``n_snapshots`` of :func:`stream_world_snapshots`) yields
byte-for-byte the records/snapshots of :func:`generate_temporal_dataset`
(resp. :func:`evolve_world`) for the same config — which is how the
bounded functions are implemented, and what the streaming differential
tests pin.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.dataset import Dataset
from repro.core.errors import ConfigurationError
from repro.core.ground_truth import GroundTruth
from repro.core.record import Record
from repro.core.source import Source
from repro.synth.world import Entity, World

__all__ = [
    "EvolvingWorldConfig",
    "evolve_world",
    "stream_world_snapshots",
    "TemporalStreamConfig",
    "generate_temporal_dataset",
    "stream_temporal_observations",
    "stream_temporal_records",
]


@dataclass(frozen=True)
class EvolvingWorldConfig:
    """Knobs for snapshot-to-snapshot world evolution.

    Per snapshot step, each *mutable* attribute of each entity changes
    its true value with probability ``change_rate``; identifier
    attributes and the entity name never change. Entities churn:
    ``death_rate`` of entities disappear per step and are replaced by
    fresh ones when ``replace=True``.
    """

    n_snapshots: int = 4
    change_rate: float = 0.15
    death_rate: float = 0.05
    replace: bool = True
    seed: int = 19

    def __post_init__(self) -> None:
        if self.n_snapshots < 1:
            raise ConfigurationError("n_snapshots must be >= 1")
        if not 0.0 <= self.change_rate <= 1.0:
            raise ConfigurationError("change_rate must be in [0, 1]")
        if not 0.0 <= self.death_rate <= 1.0:
            raise ConfigurationError("death_rate must be in [0, 1]")


def evolve_world(
    world: World, config: EvolvingWorldConfig | None = None
) -> list[World]:
    """Produce ``n_snapshots`` successive snapshots of ``world``.

    Snapshot 0 is the input world itself. Entity ids are stable across
    snapshots (the same id denotes the same entity); fresh replacement
    entities get ids suffixed with the snapshot index. The returned
    list is exactly the first ``n_snapshots`` elements of
    :func:`stream_world_snapshots` for the same config.
    """
    config = config or EvolvingWorldConfig()
    return list(
        itertools.islice(
            stream_world_snapshots(world, config), config.n_snapshots
        )
    )


def stream_world_snapshots(
    world: World, config: EvolvingWorldConfig | None = None
) -> Iterator[World]:
    """Unbounded world evolution: snapshots forever, one per step.

    The generator-based counterpart of :func:`evolve_world` —
    ``n_snapshots`` is ignored, every other knob applies per step. The
    RNG is private to each returned iterator and seeded from
    ``config.seed``, so every fresh iterator replays the identical
    snapshot sequence (the restartability the streaming checkpoint
    resume leans on), and the bounded function's output is a prefix of
    this stream by construction.
    """
    config = config or EvolvingWorldConfig()
    rng = random.Random(config.seed)
    yield world
    current = list(world.entities)
    next_fresh = 0
    for step in itertools.count(1):
        evolved: list[Entity] = []
        for entity in current:
            if rng.random() < config.death_rate:
                if config.replace:
                    vocabulary = world.vocabulary(entity.category)
                    fresh_values = {"name": f"fresh item {step}-{next_fresh}"}
                    for spec in vocabulary.attributes:
                        fresh_values[spec.name] = spec.draw_true_value(
                            rng, 500_000 + next_fresh
                        )
                    evolved.append(
                        Entity(
                            entity_id=(
                                f"{entity.category}:fresh{step}-{next_fresh:04d}"
                            ),
                            category=entity.category,
                            name=fresh_values["name"],
                            true_values=fresh_values,
                            popularity=entity.popularity,
                        )
                    )
                    next_fresh += 1
                continue
            vocabulary = world.vocabulary(entity.category)
            new_values = dict(entity.true_values)
            for spec in vocabulary.attributes:
                if spec.kind == "identifier":
                    continue
                if rng.random() < config.change_rate:
                    new_values[spec.name] = spec.draw_true_value(
                        rng, rng.randrange(1_000_000)
                    )
            evolved.append(
                Entity(
                    entity_id=entity.entity_id,
                    category=entity.category,
                    name=entity.name,
                    true_values=new_values,
                    popularity=entity.popularity,
                )
            )
        yield world.with_entities(evolved)
        current = evolved


@dataclass(frozen=True)
class TemporalStreamConfig:
    """Knobs for the temporal-linkage record stream (the E7 workload).

    ``n_entities`` evolving entities are observed over ``n_epochs``
    epochs; at each epoch each entity emits ``observations_per_epoch``
    records carrying its *current* attribute values. Each mutable
    attribute changes between epochs with probability
    ``evolution_rate``. ``namesake_fraction`` of entities share their
    name with another entity (the confusable distractors that punish
    naive link-everything matchers). ``missing_rate`` hides attribute
    values at observation time.
    """

    n_entities: int = 50
    n_epochs: int = 5
    observations_per_epoch: int = 2
    evolution_rate: float = 0.3
    namesake_fraction: float = 0.2
    missing_rate: float = 0.15
    seed: int = 23

    def __post_init__(self) -> None:
        if self.n_entities < 2:
            raise ConfigurationError("n_entities must be >= 2")
        if self.n_epochs < 1:
            raise ConfigurationError("n_epochs must be >= 1")
        if self.observations_per_epoch < 1:
            raise ConfigurationError("observations_per_epoch must be >= 1")
        for name in ("evolution_rate", "namesake_fraction", "missing_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")


_FIRST_NAMES = (
    "wei", "james", "maria", "olga", "ahmed", "yuki", "carlos",
    "fatima", "ivan", "chen", "anna", "david", "lin", "sara", "paulo",
)
_LAST_NAMES = (
    "li", "smith", "garcia", "kim", "mueller", "rossi", "tanaka",
    "kumar", "santos", "novak", "dubois", "wang", "okafor", "larsen",
)
_AFFILIATIONS = tuple(
    f"univ-{city}" for city in (
        "rome", "berlin", "kyoto", "austin", "lagos", "lima", "oslo",
        "seoul", "cairo", "delhi", "quito", "turin", "leeds", "basel",
    )
)
_TOPICS = (
    "databases", "networks", "graphics", "security", "theory",
    "systems", "vision", "robotics", "compilers", "hci",
)
_CITIES = (
    "rome", "berlin", "kyoto", "austin", "lagos", "lima", "oslo",
    "seoul", "cairo", "delhi", "quito", "turin", "leeds", "basel",
)


def stream_temporal_observations(
    config: TemporalStreamConfig | None = None,
) -> Iterator[tuple[Record, str]]:
    """Unbounded evolving-entity observations: ``(record, entity_id)``.

    The generator-based counterpart of
    :func:`generate_temporal_dataset` — ``n_epochs`` is ignored and
    epochs run forever; every other knob applies per epoch. Each fresh
    iterator owns a private RNG seeded from ``config.seed``, so the
    stream replays identically (restartable), and the bounded dataset
    is an exact prefix: its records are the first
    ``n_epochs * n_entities * observations_per_epoch`` yields for the
    same config.
    """
    config = config or TemporalStreamConfig()
    rng = random.Random(config.seed)

    names: list[str] = []
    for index in range(config.n_entities):
        if names and rng.random() < config.namesake_fraction:
            names.append(rng.choice(names))
        else:
            names.append(
                f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)} "
                f"{index % 7}"
            )

    state = {
        f"person:{i:04d}": {
            "name": names[i],
            "affiliation": rng.choice(_AFFILIATIONS),
            "city": rng.choice(_CITIES),
            "topic": rng.choice(_TOPICS),
        }
        for i in range(config.n_entities)
    }

    counter = 0
    for epoch in itertools.count():
        if epoch > 0:
            for values in state.values():
                for attribute in ("affiliation", "city", "topic"):
                    if rng.random() < config.evolution_rate:
                        pool = {
                            "affiliation": _AFFILIATIONS,
                            "city": _CITIES,
                            "topic": _TOPICS,
                        }[attribute]
                        values[attribute] = rng.choice(pool)
        for entity_id, values in state.items():
            for __ in range(config.observations_per_epoch):
                attributes = {"name": values["name"]}
                for attribute in ("affiliation", "city", "topic"):
                    if rng.random() >= config.missing_rate:
                        attributes[attribute] = values[attribute]
                record = Record(
                    record_id=f"stream.example.org/{counter:06d}",
                    source_id="stream.example.org",
                    attributes=attributes,
                    timestamp=float(epoch),
                )
                yield record, entity_id
                counter += 1


def stream_temporal_records(
    config: TemporalStreamConfig | None = None,
) -> Iterator[Record]:
    """The records of :func:`stream_temporal_observations`, unbounded."""
    return (
        record for record, _ in stream_temporal_observations(config)
    )


def generate_temporal_dataset(
    config: TemporalStreamConfig | None = None,
) -> Dataset:
    """Generate the evolving-entity record stream for temporal linkage.

    Entities model researchers: a stable ``name`` (sometimes shared
    with a namesake), and mutable ``affiliation``, ``city``, and
    ``topic`` attributes that evolve between epochs. Records carry a
    ``timestamp`` equal to their epoch index.

    Implemented as the first ``n_epochs`` epochs of the unbounded
    :func:`stream_temporal_observations`, so the bounded dataset is an
    exact prefix of the stream by construction.
    """
    config = config or TemporalStreamConfig()
    n_records = (
        config.n_epochs * config.n_entities * config.observations_per_epoch
    )
    source = Source("stream.example.org")
    record_to_entity: dict[str, str] = {}
    for record, entity_id in itertools.islice(
        stream_temporal_observations(config), n_records
    ):
        source.add(record)
        record_to_entity[record.record_id] = entity_id

    truth = GroundTruth(record_to_entity)
    return Dataset([source], truth, name="temporal-stream")
