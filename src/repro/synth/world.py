"""Ground-truth world generation.

A *world* is the set of real entities that exist, before any source
describes them: each entity has a category, a human-style name, a true
value for every mediated attribute of its category, and a Zipf
popularity weight that drives which sources cover it (head entities
appear in many sources, tail entities in few).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.synth.vocab import CategoryVocabulary, category as builtin_category

__all__ = ["Entity", "World", "WorldConfig", "generate_world"]

_MODEL_WORDS = (
    "pro", "max", "air", "ultra", "plus", "mini", "neo", "prime",
    "elite", "core", "edge", "flex", "nova", "zoom", "swift", "apex",
)


@dataclass(frozen=True)
class Entity:
    """One real-world entity with its true attribute values."""

    entity_id: str
    category: str
    name: str
    true_values: Mapping[str, str]
    popularity: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "true_values", MappingProxyType(dict(self.true_values))
        )


@dataclass(frozen=True)
class WorldConfig:
    """Knobs for world generation.

    Parameters
    ----------
    categories:
        Names of built-in categories to populate (see
        :func:`repro.synth.vocab.builtin_catalog`).
    entities_per_category:
        How many entities each category gets.
    zipf_exponent:
        Skew of the entity-popularity distribution; ``0`` makes all
        entities equally popular, ``1`` is the classic web-like skew.
    seed:
        Seed for the world's private random generator.
    """

    categories: Sequence[str] = ("camera", "notebook", "headphone")
    entities_per_category: int = 100
    zipf_exponent: float = 1.0
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.categories:
            raise ConfigurationError("at least one category is required")
        if self.entities_per_category < 1:
            raise ConfigurationError("entities_per_category must be >= 1")
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be >= 0")


class World:
    """The generated ground-truth world."""

    def __init__(
        self,
        entities: Sequence[Entity],
        vocabularies: Mapping[str, CategoryVocabulary],
        config: WorldConfig,
    ) -> None:
        self._entities = tuple(entities)
        self._by_id = {entity.entity_id: entity for entity in self._entities}
        if len(self._by_id) != len(self._entities):
            raise ConfigurationError("duplicate entity ids in world")
        self._vocabularies = dict(vocabularies)
        self._config = config

    @property
    def entities(self) -> tuple[Entity, ...]:
        """All entities, most popular first within each category."""
        return self._entities

    @property
    def config(self) -> WorldConfig:
        """The configuration this world was generated from."""
        return self._config

    @property
    def categories(self) -> tuple[str, ...]:
        """Category names present in this world."""
        return tuple(self._vocabularies)

    def vocabulary(self, category_name: str) -> CategoryVocabulary:
        """The vocabulary of ``category_name``."""
        try:
            return self._vocabularies[category_name]
        except KeyError:
            raise ConfigurationError(
                f"world has no category {category_name!r}"
            ) from None

    def entity(self, entity_id: str) -> Entity:
        """The entity with ``entity_id``."""
        try:
            return self._by_id[entity_id]
        except KeyError:
            raise ConfigurationError(
                f"world has no entity {entity_id!r}"
            ) from None

    def entities_in(self, category_name: str) -> tuple[Entity, ...]:
        """Entities of one category, most popular first."""
        return tuple(
            e for e in self._entities if e.category == category_name
        )

    def with_entities(self, entities: Sequence[Entity]) -> "World":
        """A copy of this world with a replaced entity list.

        Used by temporal evolution to produce later snapshots of the
        same world.
        """
        return World(entities, self._vocabularies, self._config)

    def __len__(self) -> int:
        return len(self._entities)

    def __repr__(self) -> str:
        return (
            f"World(entities={len(self._entities)}, "
            f"categories={list(self._vocabularies)})"
        )


def zipf_weights(n: int, exponent: float) -> list[float]:
    """Normalized Zipf weights for ranks ``1..n``."""
    raw = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def _entity_name(
    vocabulary: CategoryVocabulary, rng: random.Random, index: int
) -> str:
    brand = rng.choice(vocabulary.brands)
    word = rng.choice(_MODEL_WORDS)
    number = rng.randint(10, 9999)
    return f"{brand} {word} {number}"


def generate_world(config: WorldConfig | None = None) -> World:
    """Generate a deterministic world from ``config``.

    The same config (including seed) always yields the identical world:
    same entity ids, names, true values, and popularity weights.
    """
    config = config or WorldConfig()
    rng = random.Random(config.seed)
    vocabularies = {name: builtin_category(name) for name in config.categories}
    entities: list[Entity] = []
    for category_name in config.categories:
        vocabulary = vocabularies[category_name]
        weights = zipf_weights(
            config.entities_per_category, config.zipf_exponent
        )
        seen_names: set[str] = set()
        for index in range(config.entities_per_category):
            name = _entity_name(vocabulary, rng, index)
            while name in seen_names:
                name = _entity_name(vocabulary, rng, index)
            seen_names.add(name)
            brand_token = name.split()[0]
            true_values = {"name": name}
            for spec in vocabulary.attributes:
                if set(spec.values) == set(vocabulary.brands):
                    # The brand-like attribute must agree with the
                    # brand token leading the entity's name.
                    true_values[spec.name] = brand_token
                else:
                    true_values[spec.name] = spec.draw_true_value(rng, index)
            entities.append(
                Entity(
                    entity_id=f"{category_name}:{index:05d}",
                    category=category_name,
                    name=name,
                    true_values=true_values,
                    popularity=weights[index],
                )
            )
    return World(entities, vocabularies, config)
