"""Synthetic-world substrate: worlds, sources, claims, copiers, time."""

from repro.synth.claims import (
    ClaimWorldConfig,
    NumericClaimWorldConfig,
    PlantedClaims,
    PlantedNumericClaims,
    generate_claims,
    generate_numeric_claims,
)
from repro.synth.copiers import CopierConfig, add_copier_sources
from repro.synth.corpus import BuiltCorpus, FourVKnobs, build_corpus, scaled
from repro.synth.evolution import (
    EvolvingWorldConfig,
    TemporalStreamConfig,
    evolve_world,
    generate_temporal_dataset,
    stream_temporal_observations,
    stream_temporal_records,
    stream_world_snapshots,
)
from repro.synth.sources import CorpusConfig, SourceProfile, generate_dataset
from repro.synth.vocab import (
    AttributeSpec,
    CategoryVocabulary,
    builtin_catalog,
    category,
)
from repro.synth.world import Entity, World, WorldConfig, generate_world

__all__ = [
    "AttributeSpec",
    "BuiltCorpus",
    "CategoryVocabulary",
    "ClaimWorldConfig",
    "NumericClaimWorldConfig",
    "PlantedNumericClaims",
    "CopierConfig",
    "CorpusConfig",
    "Entity",
    "EvolvingWorldConfig",
    "FourVKnobs",
    "PlantedClaims",
    "SourceProfile",
    "TemporalStreamConfig",
    "World",
    "WorldConfig",
    "add_copier_sources",
    "build_corpus",
    "builtin_catalog",
    "category",
    "evolve_world",
    "generate_claims",
    "generate_numeric_claims",
    "generate_dataset",
    "generate_temporal_dataset",
    "generate_world",
    "scaled",
    "stream_temporal_observations",
    "stream_temporal_records",
    "stream_world_snapshots",
]
