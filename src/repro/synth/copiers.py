"""Record-level copier sources for the end-to-end corpus.

Copy detection in fusion reasons about *claim-level* copying (see
:mod:`repro.synth.claims`); this module provides the corpus-level
counterpart: whole sources that republish another source's records —
the aggregator sites and scrapers that make web-scale veracity hard.

A copier source re-publishes a fraction of a parent source's records
under its own source id (and fresh record ids), optionally perturbing a
few values. Ground truth is extended accordingly, so linkage and fusion
evaluation remain exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.dataset import Dataset
from repro.core.errors import ConfigurationError
from repro.core.ground_truth import GroundTruth
from repro.core.record import Record
from repro.core.source import Source

__all__ = ["CopierConfig", "add_copier_sources"]


@dataclass(frozen=True)
class CopierConfig:
    """Knobs for corpus-level copier injection.

    ``n_copiers`` copier sources are added, each copying
    ``copy_fraction`` of a randomly chosen parent's records and
    perturbing each copied value with probability ``perturbation_rate``
    (modelling scrapers that slightly rewrite what they steal).
    """

    n_copiers: int = 3
    copy_fraction: float = 0.8
    perturbation_rate: float = 0.05
    seed: int = 17

    def __post_init__(self) -> None:
        if self.n_copiers < 0:
            raise ConfigurationError("n_copiers must be >= 0")
        if not 0.0 < self.copy_fraction <= 1.0:
            raise ConfigurationError("copy_fraction must be in (0, 1]")
        if not 0.0 <= self.perturbation_rate <= 1.0:
            raise ConfigurationError("perturbation_rate must be in [0, 1]")


def add_copier_sources(
    dataset: Dataset, config: CopierConfig | None = None
) -> tuple[Dataset, dict[str, str]]:
    """Return a new dataset with copier sources appended.

    Returns the extended dataset and the planted ``copier → parent``
    mapping. Requires ground truth on the input dataset (the copier's
    records must be attributable to entities).
    """
    config = config or CopierConfig()
    truth = dataset.ground_truth
    if truth is None:
        raise ConfigurationError("copier injection requires ground truth")
    rng = random.Random(config.seed)
    parents = list(dataset.sources)
    if not parents:
        raise ConfigurationError("dataset has no sources to copy from")

    new_sources: list[Source] = list(dataset.sources)
    record_to_entity = truth.record_to_entity
    attribute_to_mediated = truth.attribute_to_mediated
    copier_of: dict[str, str] = {}

    for index in range(config.n_copiers):
        parent = rng.choice(parents)
        copier_id = f"copier{index:03d}.example.com"
        copier_of[copier_id] = parent.source_id
        copier = Source(
            copier_id,
            cost=0.5,
            metadata={"copies": parent.source_id, **parent.metadata},
        )
        for local_index, record in enumerate(parent):
            if rng.random() >= config.copy_fraction:
                continue
            attributes = dict(record.attributes)
            for name in list(attributes):
                if rng.random() < config.perturbation_rate:
                    attributes[name] = attributes[name] + " *"
            copy = Record(
                record_id=f"{copier_id}/{local_index:05d}",
                source_id=copier_id,
                attributes=attributes,
                timestamp=record.timestamp,
            )
            copier.add(copy)
            record_to_entity[copy.record_id] = truth.entity_of(
                record.record_id
            )
            for attribute in attributes:
                mediated = truth.mediated_attribute(
                    parent.source_id, attribute
                )
                if mediated is not None:
                    attribute_to_mediated[(copier_id, attribute)] = mediated
        new_sources.append(copier)

    extended_truth = GroundTruth(
        record_to_entity, truth.true_values, attribute_to_mediated
    )
    return (
        Dataset(new_sources, extended_truth, name=dataset.name),
        copier_of,
    )
