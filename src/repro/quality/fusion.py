"""Fusion and copy-detection quality metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.fusion.base import FusionResult

__all__ = [
    "fusion_accuracy",
    "accuracy_estimation_error",
    "estimation_rmse",
    "CopyDetectionQuality",
    "copy_detection_quality",
]


def fusion_accuracy(result: FusionResult, truth: Mapping[str, str]) -> float:
    """Fraction of items with known truth that fusion answered correctly."""
    return result.accuracy_against(truth)


def estimation_rmse(
    estimates: Mapping[str, float], planted: Mapping[str, float]
) -> float:
    """RMSE between estimated and planted per-source accuracies.

    Only sources with both an estimate and a planted accuracy count;
    returns ``nan`` when there is no overlap. Works on any estimate
    mapping — a batch :class:`FusionResult`'s ``source_accuracy``, a
    streaming tracker's :meth:`~repro.streaming.DecayedAccuracyTracker.
    estimates` — which is what the drift benchmark's accuracy-vs-drift
    curves are scored with.
    """
    shared = [source for source in planted if source in estimates]
    if not shared:
        return math.nan
    squared = sum(
        (estimates[source] - planted[source]) ** 2 for source in shared
    )
    return math.sqrt(squared / len(shared))


def accuracy_estimation_error(
    result: FusionResult, planted: Mapping[str, float]
) -> float:
    """RMSE between a fusion result's estimates and planted accuracies."""
    return estimation_rmse(result.source_accuracy, planted)


@dataclass(frozen=True)
class CopyDetectionQuality:
    """Precision/recall of detected copying relations vs planted edges."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        predicted = self.true_positives + self.false_positives
        return self.true_positives / predicted if predicted else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __str__(self) -> str:
        return (
            f"copy-P={self.precision:.3f} copy-R={self.recall:.3f} "
            f"copy-F1={self.f1:.3f}"
        )


def copy_detection_quality(
    detected: Mapping[tuple[str, str], float],
    planted_copier_of: Mapping[str, str],
    threshold: float = 0.5,
    include_siblings: bool = False,
) -> CopyDetectionQuality:
    """Score detected copy probabilities against planted copier edges.

    A detected pair ``(a, b)`` with probability ≥ ``threshold`` counts
    as a predicted copying relation between ``a`` and ``b`` in either
    direction (direction is notoriously hard; the canonical evaluation
    scores the undirected relation). Planted edges are
    ``copier → parent``. With ``include_siblings``, two copiers of the
    same parent also count as truly dependent — they are correlated
    through the parent, and detectors legitimately flag them.
    """
    predicted: set[frozenset[str]] = {
        frozenset(pair)
        for pair, probability in detected.items()
        if probability >= threshold and pair[0] != pair[1]
    }
    actual: set[frozenset[str]] = {
        frozenset((copier, parent))
        for copier, parent in planted_copier_of.items()
    }
    if include_siblings:
        by_parent: dict[str, list[str]] = {}
        for copier, parent in planted_copier_of.items():
            by_parent.setdefault(parent, []).append(copier)
        for siblings in by_parent.values():
            for i, left in enumerate(siblings):
                for right in siblings[i + 1 :]:
                    actual.add(frozenset((left, right)))
    true_positives = len(predicted & actual)
    return CopyDetectionQuality(
        true_positives=true_positives,
        false_positives=len(predicted) - true_positives,
        false_negatives=len(actual) - true_positives,
    )
