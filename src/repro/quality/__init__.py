"""Evaluation metrics for every pipeline stage, plus report rendering."""

from repro.quality.blocking import BlockingQuality, blocking_quality, total_pairs
from repro.quality.corpus_stats import (
    AttributeTailStatistics,
    attribute_tail_statistics,
)
from repro.quality.clusters import (
    BCubedQuality,
    bcubed_quality,
    clusters_to_pairs,
    pairwise_cluster_quality,
)
from repro.quality.fusion import (
    CopyDetectionQuality,
    accuracy_estimation_error,
    copy_detection_quality,
    estimation_rmse,
    fusion_accuracy,
)
from repro.quality.matching import PairQuality, as_pair_set, pair_quality
from repro.quality.report import format_cell, render_kv, render_table
from repro.quality.schema import (
    attribute_cluster_quality,
    correspondence_quality,
    true_attribute_pairs,
)

__all__ = [
    "AttributeTailStatistics",
    "BCubedQuality",
    "BlockingQuality",
    "CopyDetectionQuality",
    "PairQuality",
    "accuracy_estimation_error",
    "as_pair_set",
    "attribute_tail_statistics",
    "attribute_cluster_quality",
    "bcubed_quality",
    "blocking_quality",
    "clusters_to_pairs",
    "copy_detection_quality",
    "correspondence_quality",
    "estimation_rmse",
    "format_cell",
    "fusion_accuracy",
    "pair_quality",
    "pairwise_cluster_quality",
    "render_kv",
    "render_table",
    "total_pairs",
    "true_attribute_pairs",
]
