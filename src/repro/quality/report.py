"""Plain-text table rendering for the benchmark harness.

Every benchmark prints the rows/series its experiment reports; this
module renders them as aligned monospace tables so the output reads
like the tables in a paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_cell", "render_table", "render_kv"]


def format_cell(value: object, float_digits: int = 3) -> str:
    """Render one table cell: floats get fixed digits, rest via str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render an aligned monospace table.

    >>> print(render_table(["k", "v"], [["a", 1.0]]))
    k  v
    -  -----
    a  1.000
    """
    rendered_rows = [
        [format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def render_kv(pairs: Iterable[tuple[str, object]], title: str | None = None) -> str:
    """Render key/value pairs one per line (for experiment headers)."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for key, value in pairs:
        lines.append(f"{key}: {format_cell(value)}")
    return "\n".join(lines)
