"""Blocking quality: pairs completeness, pairs quality, reduction ratio.

The classic blocking trade-off is measured by three numbers:

* **pairs completeness (PC)** — fraction of true matching pairs that
  survive blocking (recall of the candidate set);
* **pairs quality (PQ)** — fraction of candidate pairs that are true
  matches (precision of the candidate set);
* **reduction ratio (RR)** — fraction of the full quadratic comparison
  space that blocking avoided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ConfigurationError
from repro.core.ground_truth import GroundTruth
from repro.quality.matching import as_pair_set

__all__ = ["BlockingQuality", "blocking_quality", "total_pairs"]


def total_pairs(n_records: int) -> int:
    """Number of unordered record pairs among ``n_records`` records."""
    return n_records * (n_records - 1) // 2


@dataclass(frozen=True)
class BlockingQuality:
    """PC / PQ / RR of a candidate pair set."""

    candidate_pairs: int
    matching_candidates: int
    true_matches: int
    n_records: int

    @property
    def pairs_completeness(self) -> float:
        """Fraction of true matches retained by blocking."""
        if self.true_matches == 0:
            return 1.0
        return self.matching_candidates / self.true_matches

    @property
    def pairs_quality(self) -> float:
        """Fraction of candidates that are true matches."""
        if self.candidate_pairs == 0:
            return 1.0
        return self.matching_candidates / self.candidate_pairs

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the quadratic comparison space avoided."""
        full = total_pairs(self.n_records)
        if full == 0:
            return 1.0
        return 1.0 - self.candidate_pairs / full

    def __str__(self) -> str:
        return (
            f"PC={self.pairs_completeness:.3f} "
            f"PQ={self.pairs_quality:.4f} "
            f"RR={self.reduction_ratio:.4f} "
            f"({self.candidate_pairs} candidates)"
        )


def blocking_quality(
    candidates: Iterable[tuple[str, str] | frozenset[str]],
    truth: GroundTruth,
    n_records: int,
) -> BlockingQuality:
    """Score a candidate pair set against ground truth.

    ``n_records`` is the number of records blocking ran over (needed
    for the reduction ratio's quadratic baseline).
    """
    if n_records < 0:
        raise ConfigurationError("n_records must be >= 0")
    candidate_set = as_pair_set(candidates)
    true_set = truth.matching_pairs()
    return BlockingQuality(
        candidate_pairs=len(candidate_set),
        matching_candidates=len(candidate_set & true_set),
        true_matches=len(true_set),
        n_records=n_records,
    )
