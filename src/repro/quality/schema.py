"""Schema-alignment quality: correspondence and clustering metrics.

Two source attributes *truly correspond* when ground truth maps both to
the same mediated attribute. A matcher's output — either explicit
correspondences or attribute clusters — is scored against that
relation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.core.dataset import Dataset
from repro.core.errors import GroundTruthError
from repro.quality.matching import PairQuality

__all__ = [
    "true_attribute_pairs",
    "correspondence_quality",
    "attribute_cluster_quality",
]

SourceAttribute = tuple[str, str]  # (source_id, attribute_name)


def true_attribute_pairs(
    dataset: Dataset,
) -> set[frozenset[SourceAttribute]]:
    """All unordered source-attribute pairs that truly correspond.

    Pairs within one source are included (a source may render two
    attributes that mean the same thing), but identical attributes are
    not paired with themselves.
    """
    truth = dataset.ground_truth
    if truth is None or not truth.attribute_to_mediated:
        raise GroundTruthError(
            "dataset lacks attribute-level ground truth"
        )
    by_mediated: dict[str, list[SourceAttribute]] = defaultdict(list)
    for source_attr, mediated in truth.attribute_to_mediated.items():
        by_mediated[mediated].append(source_attr)
    pairs: set[frozenset[SourceAttribute]] = set()
    for attributes in by_mediated.values():
        ordered = sorted(attributes)
        for i, left in enumerate(ordered):
            for right in ordered[i + 1 :]:
                pairs.add(frozenset((left, right)))
    return pairs


def correspondence_quality(
    predicted: Iterable[tuple[SourceAttribute, SourceAttribute]],
    dataset: Dataset,
) -> PairQuality:
    """Precision/recall/F1 of predicted attribute correspondences."""
    true_pairs = true_attribute_pairs(dataset)
    predicted_set = {
        frozenset(pair) for pair in predicted if pair[0] != pair[1]
    }
    true_positives = len(predicted_set & true_pairs)
    return PairQuality(
        true_positives=true_positives,
        false_positives=len(predicted_set) - true_positives,
        false_negatives=len(true_pairs) - true_positives,
    )


def attribute_cluster_quality(
    clusters: Iterable[Iterable[SourceAttribute]],
    dataset: Dataset,
) -> PairQuality:
    """Pairwise quality of attribute clusters against ground truth."""
    implied: list[tuple[SourceAttribute, SourceAttribute]] = []
    for cluster in clusters:
        members = sorted(set(cluster))
        for i, left in enumerate(members):
            for right in members[i + 1 :]:
                implied.append((left, right))
    return correspondence_quality(implied, dataset)
