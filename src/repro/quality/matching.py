"""Pairwise match quality: precision, recall, F1 over record pairs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.ground_truth import GroundTruth

__all__ = ["PairQuality", "pair_quality", "as_pair_set"]


@dataclass(frozen=True)
class PairQuality:
    """Precision/recall/F1 of a predicted set of matching pairs."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was predicted."""
        predicted = self.true_positives + self.false_positives
        return self.true_positives / predicted if predicted else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there is nothing to find."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"(tp={self.true_positives}, fp={self.false_positives}, "
            f"fn={self.false_negatives})"
        )


def as_pair_set(
    pairs: Iterable[tuple[str, str] | frozenset[str]],
) -> set[frozenset[str]]:
    """Normalize pairs to unordered frozensets, dropping self-pairs."""
    normalized: set[frozenset[str]] = set()
    for pair in pairs:
        frozen = frozenset(pair)
        if len(frozen) == 2:
            normalized.add(frozen)
    return normalized


def pair_quality(
    predicted: Iterable[tuple[str, str] | frozenset[str]],
    truth: GroundTruth | set[frozenset[str]],
) -> PairQuality:
    """Score predicted matching pairs against ground truth.

    ``truth`` may be a :class:`GroundTruth` (its matching pairs are
    enumerated) or a pre-computed set of true pairs.
    """
    predicted_set = as_pair_set(predicted)
    true_set = (
        truth.matching_pairs() if isinstance(truth, GroundTruth) else truth
    )
    true_positives = len(predicted_set & true_set)
    return PairQuality(
        true_positives=true_positives,
        false_positives=len(predicted_set) - true_positives,
        false_negatives=len(true_set) - true_positives,
    )
