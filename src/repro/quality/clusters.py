"""Cluster-level linkage quality: pairwise F1 and B-cubed metrics.

Pairwise metrics score the *pairs implied by* a clustering; B-cubed
metrics average per-record precision/recall and are less dominated by
large clusters. Both are standard in the entity-resolution literature
and both are computed against the ground-truth record→entity mapping.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.ground_truth import GroundTruth
from repro.quality.matching import PairQuality, pair_quality

__all__ = [
    "BCubedQuality",
    "bcubed_quality",
    "clusters_to_pairs",
    "pairwise_cluster_quality",
]


def clusters_to_pairs(
    clusters: Iterable[Iterable[str]],
) -> set[frozenset[str]]:
    """All unordered within-cluster record pairs implied by a clustering."""
    pairs: set[frozenset[str]] = set()
    for cluster in clusters:
        members = sorted(set(cluster))
        for i, left in enumerate(members):
            for right in members[i + 1 :]:
                pairs.add(frozenset((left, right)))
    return pairs


def pairwise_cluster_quality(
    clusters: Iterable[Iterable[str]], truth: GroundTruth
) -> PairQuality:
    """Pairwise precision/recall/F1 of a clustering against ground truth."""
    return pair_quality(clusters_to_pairs(clusters), truth)


@dataclass(frozen=True)
class BCubedQuality:
    """B-cubed precision, recall, and their harmonic mean."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of B-cubed precision and recall."""
        total = self.precision + self.recall
        return 2 * self.precision * self.recall / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"B3-P={self.precision:.3f} B3-R={self.recall:.3f} "
            f"B3-F1={self.f1:.3f}"
        )


def bcubed_quality(
    clusters: Sequence[Iterable[str]], truth: GroundTruth
) -> BCubedQuality:
    """B-cubed precision/recall of a clustering against ground truth.

    For each record, precision is the fraction of its cluster that
    shares its true entity; recall is the fraction of its true entity's
    records found in its cluster. Records not present in any cluster
    contribute recall 0 (a clustering must cover the corpus).
    """
    cluster_of: dict[str, int] = {}
    cluster_members: dict[int, list[str]] = defaultdict(list)
    for index, cluster in enumerate(clusters):
        for record_id in cluster:
            cluster_of[record_id] = index
            cluster_members[index].append(record_id)

    all_records = truth.record_to_entity
    if not all_records:
        return BCubedQuality(1.0, 1.0)

    precision_sum = 0.0
    recall_sum = 0.0
    clustered = 0
    # Pre-compute per-cluster entity composition for O(n) scoring.
    entity_counts: dict[int, Counter[str]] = {
        index: Counter(truth.entity_of(r) for r in members if r in all_records)
        for index, members in cluster_members.items()
    }
    for record_id, entity_id in all_records.items():
        index = cluster_of.get(record_id)
        if index is None:
            continue  # recall 0, precision undefined → skipped in precision
        clustered += 1
        members = cluster_members[index]
        same_entity = entity_counts[index][entity_id]
        precision_sum += same_entity / len(members)
        recall_sum += same_entity / len(truth.records_of(entity_id))

    n = len(all_records)
    precision = precision_sum / clustered if clustered else 1.0
    recall = recall_sum / n
    return BCubedQuality(precision=precision, recall=recall)
