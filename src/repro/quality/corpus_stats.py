"""Corpus-level statistics: the variety dimension, quantified.

Web-extraction studies characterize heterogeneity with a handful of
numbers — how many distinct attribute names exist, what fraction
appear in almost no sources, how common the *most* common attribute
is. :func:`attribute_tail_statistics` computes exactly those for any
dataset, so synthetic corpora can be compared against the published
web statistics (the long tail is the point: most attribute names are
nearly source-unique).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import Dataset
from repro.core.errors import EmptyInputError

__all__ = ["AttributeTailStatistics", "attribute_tail_statistics"]


@dataclass(frozen=True)
class AttributeTailStatistics:
    """The long-tail profile of a corpus's attribute names."""

    n_sources: int
    n_attribute_names: int
    fraction_in_one_source: float
    fraction_in_at_most_10pct: float
    top_attribute: str
    top_attribute_source_fraction: float
    mean_sources_per_attribute: float

    def rows(self) -> list[list[object]]:
        """Key/value rows for table rendering."""
        return [
            ["sources", self.n_sources],
            ["distinct attribute names", self.n_attribute_names],
            ["share used by exactly 1 source", self.fraction_in_one_source],
            [
                "share used by ≤10% of sources",
                self.fraction_in_at_most_10pct,
            ],
            ["most common attribute", self.top_attribute],
            [
                "…present in share of sources",
                self.top_attribute_source_fraction,
            ],
            ["mean sources per attribute", self.mean_sources_per_attribute],
        ]


def attribute_tail_statistics(dataset: Dataset) -> AttributeTailStatistics:
    """Compute the attribute-name long-tail profile of ``dataset``."""
    usage = dataset.attribute_usage()
    if not usage:
        raise EmptyInputError("dataset has no attributes")
    n_sources = len(dataset)
    counts = list(usage.values())
    n_names = len(counts)
    one_source = sum(1 for count in counts if count == 1)
    at_most_10pct = sum(
        1 for count in counts if count <= max(1, n_sources * 0.10)
    )
    top_attribute, top_count = usage.most_common(1)[0]
    return AttributeTailStatistics(
        n_sources=n_sources,
        n_attribute_names=n_names,
        fraction_in_one_source=one_source / n_names,
        fraction_in_at_most_10pct=at_most_10pct / n_names,
        top_attribute=top_attribute,
        top_attribute_source_fraction=top_count / n_sources,
        mean_sources_per_attribute=sum(counts) / n_names,
    )
