"""The :class:`Record` — the atomic unit of integration.

A record is one source's description of one real-world entity: an
immutable mapping from attribute names to string values, tagged with the
source that published it and a record id unique within the dataset.

Records are deliberately *schema-free*: different sources describe the
same kind of entity with different attribute names, granularities, and
formats, and reconciling that heterogeneity is the job of the schema
alignment stage, not of the data model.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Iterator, Mapping

from repro.core.errors import DataModelError

__all__ = ["Record"]


class Record:
    """One source's description of one entity.

    Parameters
    ----------
    record_id:
        Identifier unique across the dataset (conventionally
        ``"<source_id>/<local id>"``).
    source_id:
        Identifier of the publishing source.
    attributes:
        Mapping of attribute name to raw string value. Values are kept as
        published — normalization belongs to later pipeline stages.
    timestamp:
        Optional observation time (arbitrary monotone float, e.g. epoch
        days). Used by temporal linkage and the velocity substrate.

    Records compare equal by content (id, source, attributes, timestamp)
    and are hashable, so they can be used in sets and as dict keys.
    """

    __slots__ = ("_record_id", "_source_id", "_attributes", "_timestamp", "_hash")

    def __init__(
        self,
        record_id: str,
        source_id: str,
        attributes: Mapping[str, str],
        timestamp: float | None = None,
    ) -> None:
        if not record_id:
            raise DataModelError("record_id must be a non-empty string")
        if not source_id:
            raise DataModelError("source_id must be a non-empty string")
        for name, value in attributes.items():
            if not isinstance(name, str) or not name:
                raise DataModelError(
                    f"attribute names must be non-empty strings, got {name!r}"
                )
            if not isinstance(value, str):
                raise DataModelError(
                    f"attribute values must be strings, got {value!r} for {name!r}"
                )
        self._record_id = record_id
        self._source_id = source_id
        self._attributes = MappingProxyType(dict(attributes))
        self._timestamp = timestamp
        self._hash: int | None = None

    @property
    def record_id(self) -> str:
        """Dataset-wide unique identifier of this record."""
        return self._record_id

    @property
    def source_id(self) -> str:
        """Identifier of the source that published this record."""
        return self._source_id

    @property
    def attributes(self) -> Mapping[str, str]:
        """Read-only view of the attribute → value mapping."""
        return self._attributes

    @property
    def timestamp(self) -> float | None:
        """Observation time, or ``None`` for untimestamped records."""
        return self._timestamp

    def get(self, attribute: str, default: str | None = None) -> str | None:
        """Return the value of ``attribute``, or ``default`` if absent."""
        return self._attributes.get(attribute, default)

    def __getitem__(self, attribute: str) -> str:
        return self._attributes[attribute]

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._attributes

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def with_attributes(self, attributes: Mapping[str, str]) -> "Record":
        """Return a copy of this record with ``attributes`` replacing its own."""
        return Record(
            self._record_id, self._source_id, attributes, self._timestamp
        )

    def text(self, separator: str = " ") -> str:
        """All attribute values joined into one string (for token blocking)."""
        return separator.join(self._attributes.values())

    def __reduce__(self):
        # MappingProxyType (and slots) defeat default pickling; rebuild
        # through __init__ so records can cross process boundaries for
        # the multiprocess comparison engine.
        return (
            Record,
            (
                self._record_id,
                self._source_id,
                dict(self._attributes),
                self._timestamp,
            ),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self._record_id == other._record_id
            and self._source_id == other._source_id
            and self._timestamp == other._timestamp
            and dict(self._attributes) == dict(other._attributes)
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self._record_id,
                    self._source_id,
                    self._timestamp,
                    frozenset(self._attributes.items()),
                )
            )
        return self._hash

    def __repr__(self) -> str:
        keys = ", ".join(sorted(self._attributes))
        return (
            f"Record(id={self._record_id!r}, source={self._source_id!r}, "
            f"attrs=[{keys}])"
        )
