"""Ground truth for evaluating every stage of the pipeline.

The synthetic-world generator knows exactly which entity each record
describes, which mediated attribute each source attribute renders, and
which value of each (entity, attribute) data item is true. This module
holds that knowledge in one queryable object so the quality metrics in
:mod:`repro.quality` can score linkage, schema alignment, and fusion
against exact answers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

from repro.core.errors import GroundTruthError

__all__ = ["GroundTruth"]


class GroundTruth:
    """Exact answers for linkage, schema alignment, and fusion.

    Parameters
    ----------
    record_to_entity:
        Maps each record id to the id of the real-world entity it
        describes.
    true_values:
        Maps ``(entity_id, mediated_attribute)`` data items to their true
        value. Optional; required only for fusion evaluation.
    attribute_to_mediated:
        Maps ``(source_id, source_attribute)`` to the mediated attribute
        it renders. Optional; required only for schema evaluation.
    """

    def __init__(
        self,
        record_to_entity: Mapping[str, str],
        true_values: Mapping[tuple[str, str], str] | None = None,
        attribute_to_mediated: Mapping[tuple[str, str], str] | None = None,
    ) -> None:
        self._record_to_entity = dict(record_to_entity)
        self._true_values = dict(true_values or {})
        self._attribute_to_mediated = dict(attribute_to_mediated or {})
        self._entity_to_records: dict[str, set[str]] = defaultdict(set)
        for record_id, entity_id in self._record_to_entity.items():
            self._entity_to_records[entity_id].add(record_id)

    @property
    def record_to_entity(self) -> dict[str, str]:
        """Copy of the record id → entity id mapping."""
        return dict(self._record_to_entity)

    @property
    def entities(self) -> set[str]:
        """All entity ids that have at least one record."""
        return set(self._entity_to_records)

    def entity_of(self, record_id: str) -> str:
        """Return the entity described by ``record_id``."""
        try:
            return self._record_to_entity[record_id]
        except KeyError:
            raise GroundTruthError(
                f"no ground-truth entity for record {record_id!r}"
            ) from None

    def records_of(self, entity_id: str) -> frozenset[str]:
        """Return the ids of all records describing ``entity_id``."""
        return frozenset(self._entity_to_records.get(entity_id, frozenset()))

    def are_match(self, record_a: str, record_b: str) -> bool:
        """True iff both records describe the same entity."""
        return self.entity_of(record_a) == self.entity_of(record_b)

    def matching_pairs(self) -> set[frozenset[str]]:
        """All unordered record-id pairs that are true matches."""
        pairs: set[frozenset[str]] = set()
        for records in self._entity_to_records.values():
            ordered = sorted(records)
            for i, left in enumerate(ordered):
                for right in ordered[i + 1 :]:
                    pairs.add(frozenset((left, right)))
        return pairs

    def true_clusters(self) -> list[frozenset[str]]:
        """Record-id clusters, one per entity, sorted for determinism."""
        return [
            frozenset(records)
            for _, records in sorted(self._entity_to_records.items())
        ]

    def true_value(self, entity_id: str, attribute: str) -> str | None:
        """The true value of a data item, or ``None`` if not recorded."""
        return self._true_values.get((entity_id, attribute))

    @property
    def true_values(self) -> dict[tuple[str, str], str]:
        """Copy of the (entity, attribute) → true value mapping."""
        return dict(self._true_values)

    def mediated_attribute(
        self, source_id: str, source_attribute: str
    ) -> str | None:
        """The mediated attribute behind a source attribute, if recorded."""
        return self._attribute_to_mediated.get((source_id, source_attribute))

    @property
    def attribute_to_mediated(self) -> dict[tuple[str, str], str]:
        """Copy of the (source, attribute) → mediated attribute mapping."""
        return dict(self._attribute_to_mediated)

    def restricted_to(self, record_ids: Iterable[str]) -> "GroundTruth":
        """Ground truth projected onto a subset of records.

        Useful when evaluating a pipeline stage that only saw part of the
        corpus (e.g. one update batch in incremental linkage).
        """
        keep = set(record_ids)
        unknown = keep - self._record_to_entity.keys()
        if unknown:
            sample = sorted(unknown)[:3]
            raise GroundTruthError(
                f"records absent from ground truth: {sample} "
                f"({len(unknown)} total)"
            )
        return GroundTruth(
            {r: e for r, e in self._record_to_entity.items() if r in keep},
            self._true_values,
            self._attribute_to_mediated,
        )

    def __len__(self) -> int:
        return len(self._record_to_entity)

    def __repr__(self) -> str:
        return (
            f"GroundTruth(records={len(self._record_to_entity)}, "
            f"entities={len(self._entity_to_records)}, "
            f"data_items={len(self._true_values)})"
        )
