"""Core data model: records, sources, datasets, ground truth, pipeline."""

from repro.core.dataset import Dataset
from repro.core.errors import (
    ConfigurationError,
    ConvergenceError,
    DataModelError,
    EmptyInputError,
    GroundTruthError,
    ReproError,
    UnknownRecordError,
    UnknownSourceError,
)
from repro.core.ground_truth import GroundTruth
from repro.core.record import Record
from repro.core.source import Source

__all__ = [
    "ConfigurationError",
    "ConvergenceError",
    "DataModelError",
    "Dataset",
    "EmptyInputError",
    "GroundTruth",
    "GroundTruthError",
    "Record",
    "ReproError",
    "Source",
    "UnknownRecordError",
    "UnknownSourceError",
]
