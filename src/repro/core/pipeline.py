"""The end-to-end big data integration pipeline.

:class:`BDIPipeline` runs the three classical stages over a dataset —
schema alignment, record linkage, data fusion — and materializes a
fused entity table. :meth:`BDIPipeline.evaluate` scores every stage
against ground truth, which is what the end-to-end experiment sweeps
the 4-V knobs over.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.dataset import Dataset
from repro.core.errors import ConfigurationError, GroundTruthError
from repro.resilience import ResilienceConfig

__all__ = ["PipelineConfig", "PipelineResult", "PipelineReport", "BDIPipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the end-to-end pipeline.

    ``fusion`` selects the fusion algorithm: ``"vote"``,
    ``"truthfinder"``, ``"accuvote"``, or ``"accucopy"``.
    ``classifier`` selects the match decision rule: ``"threshold"``
    (uses ``match_threshold``) or ``"fellegi-sunter"`` (fit
    unsupervised by EM on the candidate vectors; ``match_threshold``
    is then ignored). ``use_identifier_linkage`` additionally merges
    clusters via detected product identifiers (the
    redundancy-as-a-friend shortcut). ``numeric_fusion`` re-fuses data
    items whose claims are predominantly measurements through CRH
    numeric truth discovery — loss-aware aggregation instead of exact
    string voting. ``execution`` selects the pair-comparison backend
    (``"serial"`` or ``"process"``, see :mod:`repro.linkage.engine`)
    with ``n_workers`` processes when multiprocess; match output is
    identical either way. ``representation`` selects the engine's
    record layout: ``"dict"`` (default) scores prepared dict payloads
    pair by pair, ``"columnar"`` packs them into
    :mod:`repro.columnar` blocks and scores whole chunks through the
    vectorized batch kernels — bit-identical output, orthogonal to
    ``execution``. ``resilience`` (a
    :class:`repro.resilience.ResilienceConfig`, default off) makes the
    linkage stage fault-tolerant: failed comparison chunks are retried
    with backoff and, under ``failure="skip"``, quarantined into
    :attr:`PipelineResult.dead_letters` while the pipeline completes
    on the surviving pairs.

    ``execution="sharded"`` runs the linkage stage hash-partitioned
    across worker shards (:mod:`repro.dist.runtime`) — ``n_shards``
    pins the shard count (``None`` lets the cluster cost model plan
    it) and ``shard_backend`` picks ``"process"`` workers or the
    sequential ``"inline"`` backend — and, with ``fusion="vote"``,
    shards the fusion stage by item too. Output stays byte-identical
    to the serial pipeline. Sharded execution requires the threshold
    classifier and does not compose with ``memory_budget``.

    ``supervision`` (a :class:`repro.supervision.SupervisionPolicy`,
    sharded execution only) makes the linkage stage self-healing: a
    :class:`repro.supervision.Supervisor` restarts shard workers that
    die or hang from their own checkpoints, within the policy's
    restart budget, with output unchanged.
    """

    schema_threshold: float = 0.6
    match_threshold: float = 0.7
    max_block_size: int = 60
    clustering: str = "components"
    classifier: str = "threshold"
    fusion: str = "accuvote"
    use_identifier_linkage: bool = True
    n_false_values: int = 8
    numeric_fusion: bool = False
    execution: str = "serial"
    n_workers: int | None = None
    representation: str = "dict"
    resilience: ResilienceConfig | None = None
    n_shards: int | None = None
    shard_backend: str = "process"
    supervision: "object | None" = None

    def __post_init__(self) -> None:
        if self.fusion not in {"vote", "truthfinder", "accuvote", "accucopy"}:
            raise ConfigurationError(f"unknown fusion {self.fusion!r}")
        if self.classifier not in {"threshold", "fellegi-sunter"}:
            raise ConfigurationError(
                f"unknown classifier {self.classifier!r}"
            )
        if self.execution not in {"serial", "process", "sharded"}:
            raise ConfigurationError(
                f"unknown execution mode {self.execution!r}"
            )
        if self.execution == "sharded" and self.classifier != "threshold":
            raise ConfigurationError(
                "execution='sharded' requires the threshold classifier"
            )
        if self.shard_backend not in {"process", "inline"}:
            raise ConfigurationError(
                f"unknown shard backend {self.shard_backend!r}"
            )
        if self.n_shards is not None and self.n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        if self.representation not in {"dict", "columnar"}:
            raise ConfigurationError(
                f"unknown representation {self.representation!r}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if self.supervision is not None:
            from repro.supervision import SupervisionPolicy

            if not isinstance(self.supervision, SupervisionPolicy):
                raise ConfigurationError(
                    "supervision must be a SupervisionPolicy or None"
                )
            if self.execution != "sharded":
                raise ConfigurationError(
                    "supervision requires execution='sharded'; other "
                    "modes have no shard workers to supervise"
                )
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceConfig
        ):
            raise ConfigurationError(
                "resilience must be a ResilienceConfig or None"
            )


@dataclass
class PipelineResult:
    """All artifacts of one pipeline run.

    ``clusters`` is the final record clustering (similarity linkage
    plus identifier joins); ``linkage`` holds the similarity-only
    result for inspection. ``dead_letters`` carries the quarantined
    comparison work when the run was configured with a
    :class:`repro.resilience.ResilienceConfig` (``None`` otherwise) —
    a run that survived worker failures still produces every artifact.
    """

    schema: "object"
    linkage: "object"
    claims: "object"
    fusion: "object"
    clusters: list[list[str]] = field(default_factory=list)
    entity_table: dict[str, dict[str, str]] = field(default_factory=dict)
    dead_letters: "object | None" = None


@dataclass(frozen=True)
class PipelineReport:
    """Per-stage quality of one run, scored against ground truth."""

    schema_f1: float
    linkage_pairwise_f1: float
    linkage_bcubed_f1: float
    fusion_accuracy: float
    n_clusters: int
    n_items: int


class BDIPipeline:
    """Schema alignment → record linkage → data fusion."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self._config = config or PipelineConfig()

    @property
    def config(self) -> PipelineConfig:
        """The pipeline configuration."""
        return self._config

    def _open_store(self, checkpoint, dataset: Dataset, tracer):
        """Resolve ``checkpoint`` into a fingerprint-bound RunStore.

        Accepts a directory path or an existing
        :class:`repro.recovery.RunStore`. The store is claimed for this
        exact (config, dataset) pair; a store holding another run's
        checkpoints is refused with
        :class:`repro.recovery.CheckpointMismatchError` rather than
        silently mixing artifacts.
        """
        if checkpoint is None:
            return None
        from repro.recovery import (
            RunStore,
            config_fingerprint,
            dataset_fingerprint,
        )

        store = (
            checkpoint
            if isinstance(checkpoint, RunStore)
            else RunStore(checkpoint)
        )
        store.tracer = tracer
        store.bind_fingerprint(
            config_fingerprint(
                self._config, dataset_fingerprint(dataset)
            )
        )
        return store

    @staticmethod
    def _stage(store, stage: str, compute, span=None):
        """Run one pipeline stage through the checkpoint ledger.

        A stage already in the manifest's ledger is replayed from its
        artifact (a damaged artifact falls through to recomputation);
        a computed stage is durably saved and marked complete before
        the pipeline moves on.
        """
        if store is None:
            return compute()
        key = f"stage.{stage}"
        if stage in store.completed_stages():
            value = store.load(key)
            if value is not None:
                store.tracer.counter("recovery.stages_skipped").inc()
                if span is not None:
                    span.set("resumed", True)
                return value
        value = compute()
        meta = store.save(key, value)
        store.mark_stage(stage, key, meta["sha256"])
        return value

    def run(
        self,
        dataset: Dataset,
        tracer=None,
        checkpoint=None,
        memory_budget: int | None = None,
        spill_dir=None,
    ) -> PipelineResult:
        """Execute the full pipeline over ``dataset``.

        ``tracer`` (an :class:`repro.obs.Tracer`, default no-op)
        records one span per stage — schema alignment, record linkage
        (with the engine's comparison counters nested inside), claim
        extraction, fusion (with per-iteration convergence deltas),
        entity-table materialization — plus the text-layer cache
        gauges. Call ``tracer.report()`` afterwards for the structured
        run artifact, or use :meth:`run_instrumented`.

        ``checkpoint`` (a directory path or a
        :class:`repro.recovery.RunStore`, default off) makes the run
        crash-resumable: every completed stage is durably recorded in
        the store's stage ledger and skipped on a rerun, and the
        stages with internal loops — comparison chunks in linkage, EM
        and fusion iterations — checkpoint *within* the stage, so a
        killed run resumes from its last completed unit of work with
        results identical to an uninterrupted run. The store is bound
        to a fingerprint of this exact config and dataset; resuming
        under a different one raises
        :class:`repro.recovery.CheckpointMismatchError`.

        ``memory_budget`` (estimated bytes, default off) runs the
        pipeline out of core: blocking indexes, candidate pairs, and
        grouped claims spill to sorted runs under ``spill_dir`` (a
        directory, a :class:`repro.recovery.RunStore`, or ``None`` for
        a temporary directory) whenever tracked resident bytes would
        exceed the budget, and linkage plus fusion consume the spilled
        streams. Output is byte-identical to the unbounded run;
        :attr:`PipelineResult.claims` then carries a
        :class:`repro.outofcore.ClaimStreamSummary` instead of the full
        claim set. Requires the ``threshold`` classifier and ``vote``
        or ``accuvote`` fusion (the streaming paths that exist today).
        """
        from repro.fusion import (
            AccuCopy,
            AccuVote,
            Claim,
            ClaimSet,
            TruthFinder,
            VotingFuser,
        )
        from repro.linkage import (
            ThresholdClassifier,
            TokenBlocker,
            connected_components,
            default_product_comparator,
            detect_identifier_attributes,
            link_by_identifier,
            resolve,
        )
        from repro.obs import NULL_TRACER, observe_text_caches
        from repro.quality import clusters_to_pairs
        from repro.schema import build_mediated_schema, profile_attributes
        from repro.text import canonical_value

        tracer = tracer if tracer is not None else NULL_TRACER
        config = self._config
        records = list(dataset.records())
        store = self._open_store(checkpoint, dataset, tracer)

        budget = spill_store = spill_temp = None
        if memory_budget is not None:
            if config.execution == "sharded":
                raise ConfigurationError(
                    "memory_budget does not compose with "
                    "execution='sharded'; shards already bound memory "
                    "by partitioning"
                )
            if config.classifier != "threshold":
                raise ConfigurationError(
                    "memory_budget requires the threshold classifier"
                )
            if config.fusion not in {"vote", "accuvote"}:
                raise ConfigurationError(
                    "memory_budget supports only vote/accuvote fusion, "
                    f"not {config.fusion!r}"
                )
            if config.numeric_fusion:
                raise ConfigurationError(
                    "numeric_fusion is not supported with memory_budget"
                )
            import tempfile

            from repro.outofcore import MemoryBudget
            from repro.recovery import RunStore

            budget = MemoryBudget(memory_budget, tracer=tracer)
            if spill_dir is None:
                spill_temp = tempfile.TemporaryDirectory(
                    prefix="repro-spill-"
                )
                spill_store = RunStore(spill_temp.name, durable=False)
            elif hasattr(spill_dir, "save_stream"):
                spill_store = spill_dir
            else:
                spill_store = RunStore(spill_dir, durable=False)

        def sub(prefix: str):
            """An intra-stage checkpoint namespace (None when off)."""
            return store.sub(prefix) if store is not None else None

        with tracer.span(
            "pipeline.run",
            n_records=len(records),
            n_sources=len(dataset),
            execution=config.execution,
            resumable=store is not None,
        ) as run_span:
            # 1. Schema alignment.
            with tracer.span("pipeline.schema_alignment") as span:
                schema = self._stage(
                    store,
                    "schema",
                    lambda: build_mediated_schema(
                        dataset, threshold=config.schema_threshold
                    ),
                    span,
                )
                span.set("n_attribute_clusters", len(schema.clusters()))

            # 2. Record linkage: similarity-based, optionally fortified
            #    by identifier joins (both feed one transitive closure).
            with tracer.span(
                "pipeline.record_linkage", classifier=config.classifier
            ) as span:

                def compute_linkage():
                    comparator = default_product_comparator()
                    blocker = TokenBlocker(
                        max_block_size=config.max_block_size
                    )
                    if config.classifier == "fellegi-sunter":
                        from repro.linkage import fit_fellegi_sunter
                        from repro.linkage.engine import (
                            ParallelComparisonEngine,
                        )

                        candidates = blocker.block(
                            records
                        ).candidate_pairs()
                        pair_engine = ParallelComparisonEngine(
                            comparator,
                            execution=config.execution,  # type: ignore[arg-type]
                            n_workers=config.n_workers,
                            tracer=tracer,
                            resilience=config.resilience,
                            checkpoint=sub("linkage.vectors"),
                            representation=config.representation,  # type: ignore[arg-type]
                        )
                        vectors = pair_engine.compare_pairs(
                            records,
                            [
                                (a, b)
                                for a, b in (
                                    sorted(pair)
                                    for pair in sorted(
                                        candidates, key=sorted
                                    )
                                )
                            ],
                        )
                        classifier: object = fit_fellegi_sunter(
                            vectors,
                            agreement_threshold=0.8,
                            tracer=tracer,
                            checkpoint=sub("linkage.em"),
                        )
                    else:
                        candidates = None
                        classifier = ThresholdClassifier(
                            config.match_threshold
                        )
                    supervisor = None
                    if config.supervision is not None:
                        from repro.obs import observe_supervisor
                        from repro.supervision import Supervisor

                        supervisor = Supervisor(
                            config.supervision, tracer=tracer
                        )
                    linkage = resolve(
                        records,
                        blocker,
                        comparator,
                        classifier,  # type: ignore[arg-type]
                        clustering=config.clustering,  # type: ignore[arg-type]
                        candidate_pairs=candidates,
                        execution=config.execution,  # type: ignore[arg-type]
                        n_workers=config.n_workers,
                        tracer=tracer,
                        resilience=config.resilience,
                        checkpoint=sub("linkage.engine"),
                        representation=config.representation,  # type: ignore[arg-type]
                        memory_budget=budget,
                        spill_dir=(
                            spill_store.sub("linkage")
                            if spill_store is not None
                            else None
                        ),
                        n_shards=config.n_shards,
                        shard_backend=config.shard_backend,
                        supervisor=supervisor,
                    )
                    if supervisor is not None:
                        observe_supervisor(tracer, supervisor)
                    clusters = linkage.clusters
                    if config.use_identifier_linkage:
                        with tracer.span(
                            "pipeline.identifier_linkage"
                        ) as id_span:
                            profiles = profile_attributes(dataset)
                            detections = detect_identifier_attributes(
                                profiles
                            )
                            identifier_clusters = link_by_identifier(
                                records, detections
                            )
                            pairs = clusters_to_pairs(
                                clusters
                            ) | clusters_to_pairs(identifier_clusters)
                            clusters = connected_components(
                                pairs,
                                [
                                    record.record_id
                                    for record in records
                                ],
                            )
                            id_span.set(
                                "n_identifiers", len(detections)
                            )
                            id_span.set("n_clusters", len(clusters))
                    return linkage, clusters

                linkage, clusters = self._stage(
                    store, "linkage", compute_linkage, span
                )
                span.set("n_candidates", linkage.n_candidates)
                span.set("n_similarity_clusters", len(linkage.clusters))
                if config.resilience is not None:
                    span.set("n_quarantined", linkage.n_quarantined)
                span.set("n_clusters", len(clusters))
                tracer.counter("pipeline.clusters").inc(len(clusters))

            # 3. Claims: one claim per (source, cluster, mediated
            #    attribute), values canonicalized so format variants
            #    agree. Memory-bounded runs spill grouped claims
            #    instead of materializing a ClaimSet and stream fusion
            #    over the groups — identical fused output.
            cluster_of: dict[str, str] = {}
            for cluster in clusters:
                cluster_id = min(cluster)
                for record_id in cluster:
                    cluster_of[record_id] = cluster_id

            if budget is None:
                with tracer.span("pipeline.claims") as span:

                    def compute_claims():
                        claim_set = ClaimSet()
                        seen: set[tuple[str, str]] = set()
                        for record in records:
                            cluster_id = cluster_of[record.record_id]
                            translated = schema.translate(record)
                            for attribute, value in translated.items():
                                item_id = f"{cluster_id}::{attribute}"
                                key = (record.source_id, item_id)
                                if key in seen:
                                    continue
                                seen.add(key)
                                claim_set.add(
                                    Claim(
                                        record.source_id,
                                        item_id,
                                        canonical_value(value),
                                    )
                                )
                        return claim_set

                    claim_set = self._stage(
                        store, "claims", compute_claims, span
                    )
                    span.set("n_claims", len(claim_set))
                    span.set("n_items", len(claim_set.items()))

                # 4. Fusion. Fusers are built lazily so only the
                #    selected algorithm is constructed (and wired to
                #    the solver's iteration checkpoint when resumable).
                with tracer.span(
                    "pipeline.fusion", algorithm=config.fusion
                ) as span:

                    def compute_fusion():
                        if (
                            config.execution == "sharded"
                            and config.fusion == "vote"
                        ):
                            # Voting is item-independent, so it shards
                            # by item like linkage shards by entity.
                            import os as _os

                            from repro.dist.runtime import (
                                sharded_vote_fusion,
                            )

                            fusion = sharded_vote_fusion(
                                claim_set,
                                n_shards=(
                                    config.n_shards
                                    or (_os.cpu_count() or 1)
                                ),
                                backend=config.shard_backend,
                                tracer=tracer,
                            )
                            if config.numeric_fusion:
                                fusion = self._refuse_numeric_items(
                                    claim_set, fusion
                                )
                            return fusion
                        fusers = {
                            "vote": lambda: VotingFuser(),
                            "truthfinder": lambda: TruthFinder(
                                tracer=tracer,
                                checkpoint=sub("fusion.solver"),
                            ),
                            "accuvote": lambda: AccuVote(
                                n_false_values=config.n_false_values
                            ),
                            "accucopy": lambda: AccuCopy(
                                n_false_values=config.n_false_values,
                                tracer=tracer,
                                checkpoint=sub("fusion.solver"),
                            ),
                        }
                        fusion = fusers[config.fusion]().fuse(claim_set)
                        if config.numeric_fusion:
                            fusion = self._refuse_numeric_items(
                                claim_set, fusion
                            )
                        return fusion

                    fusion = self._stage(
                        store, "fusion", compute_fusion, span
                    )
                    span.set("iterations", fusion.iterations)
            else:
                from repro.outofcore import (
                    SpillableClaimGroups,
                    stream_accuvote,
                    stream_voting,
                )

                with tracer.span(
                    "pipeline.claims", streaming=True
                ) as span:
                    groups = SpillableClaimGroups(
                        spill_store.sub("claims"), budget
                    )
                    for record in records:
                        cluster_id = cluster_of[record.record_id]
                        translated = schema.translate(record)
                        for attribute, value in translated.items():
                            groups.add(
                                record.source_id,
                                f"{cluster_id}::{attribute}",
                                canonical_value(value),
                            )
                    claim_set = groups.summary()
                    span.set("n_claims", groups.n_claims)
                    span.set("n_items", groups.n_items)

                with tracer.span(
                    "pipeline.fusion",
                    algorithm=config.fusion,
                    streaming=True,
                ) as span:

                    def compute_fusion():
                        if config.fusion == "vote":
                            return stream_voting(groups)
                        return stream_accuvote(
                            groups,
                            spill_store.sub("fusion"),
                            budget,
                            n_false_values=config.n_false_values,
                        )

                    fusion = self._stage(
                        store, "fusion", compute_fusion, span
                    )
                    span.set("iterations", fusion.iterations)
                groups.release()

            # 5. Entity table.
            with tracer.span("pipeline.entity_table") as span:

                def compute_entity_table():
                    entity_table: dict[str, dict[str, str]] = {}
                    for item_id, value in fusion.chosen.items():
                        cluster_id, __, attribute = item_id.partition(
                            "::"
                        )
                        entity_table.setdefault(cluster_id, {})[
                            attribute
                        ] = value
                    return entity_table

                entity_table = self._stage(
                    store, "entity_table", compute_entity_table, span
                )
                span.set("n_entities", len(entity_table))

            tracer.counter("pipeline.records").inc(len(records))
            run_span.set("n_clusters", len(clusters))
            observe_text_caches(tracer)
            if budget is not None:
                budget.publish()
                run_span.set("peak_tracked_bytes", budget.peak)
                run_span.set("spill_count", budget.spill_count)
            if store is not None:
                store.mark_complete()

        if spill_temp is not None:
            spill_temp.cleanup()
        return PipelineResult(
            schema=schema,
            linkage=linkage,
            claims=claim_set,
            fusion=fusion,
            clusters=clusters,
            entity_table=entity_table,
            dead_letters=linkage.dead_letters,
        )

    def run_instrumented(
        self, dataset: Dataset, clock=None
    ) -> "tuple[PipelineResult, object]":
        """Run with a fresh :class:`repro.obs.Tracer` and report both.

        Returns ``(result, run_report)`` where the report is the
        structured :class:`repro.obs.RunReport` artifact — the
        one-call form benchmarks and CI use.
        """
        from repro.obs import Tracer

        tracer = Tracer(clock=clock)
        result = self.run(dataset, tracer=tracer)
        return result, tracer.report(name="pipeline")

    @staticmethod
    def _refuse_numeric_items(claim_set, fusion):
        """Re-fuse measurement-dominated items with CRH.

        An item qualifies when ≥ 2/3 of its claims parse as
        measurements with a unit; its chosen value is replaced by the
        CRH truth rendered in the item's majority base unit.
        """
        from collections import Counter

        from repro.fusion import CRHNumericFuser
        from repro.fusion.numeric import parse_numeric_claims
        from repro.text import parse_measurement

        numeric_items: dict[str, Counter] = {}
        for item in claim_set.items():
            claims = claim_set.claims_for(item)
            units: Counter[str] = Counter()
            parsed = 0
            for claim in claims:
                measurement = parse_measurement(
                    claim.value.replace(",", ".")
                )
                if measurement is not None and measurement.unit:
                    parsed += 1
                    units[measurement.in_base_unit().unit] += 1
            if claims and parsed / len(claims) >= 2 / 3 and units:
                numeric_items[item] = units
        if not numeric_items:
            return fusion
        keep = set(numeric_items)
        numeric_claims = {
            key: value
            for key, value in parse_numeric_claims(claim_set).items()
            if key[1] in keep
        }
        if not numeric_claims:
            return fusion
        truths, __, __ = CRHNumericFuser().fuse_values(numeric_claims)
        from repro.fusion import FusionResult

        chosen = dict(fusion.chosen)
        confidence = dict(fusion.confidence)
        for item, value in truths.items():
            unit = numeric_items[item].most_common(1)[0][0]
            chosen[item] = f"{value:.4g} {unit}"
        return FusionResult(
            chosen=chosen,
            confidence=confidence,
            source_accuracy=fusion.source_accuracy,
            iterations=fusion.iterations,
            copy_probability=fusion.copy_probability,
        )

    @staticmethod
    def _values_agree(fused: str, true_canonical: str) -> bool:
        """Exact match, with 2% relative tolerance for measurements.

        Numeric fusion outputs aggregates ("841.2 g" for a true
        "840 g"); demanding byte equality would punish strictly better
        answers, so same-unit measurements within 2% count as correct
        for every fusion path.
        """
        if fused == true_canonical:
            return True
        from repro.text import parse_measurement

        fused_m = parse_measurement(fused.replace(",", "."))
        true_m = parse_measurement(true_canonical.replace(",", "."))
        if fused_m is None or true_m is None:
            return False
        fused_base = fused_m.in_base_unit()
        true_base = true_m.in_base_unit()
        if fused_base.unit != true_base.unit:
            return False
        scale = max(abs(true_base.value), 1e-9)
        return abs(fused_base.value - true_base.value) / scale <= 0.02

    def evaluate(
        self, dataset: Dataset, result: PipelineResult
    ) -> PipelineReport:
        """Score a run's stages against the dataset's ground truth."""
        from repro.quality import (
            attribute_cluster_quality,
            bcubed_quality,
            pairwise_cluster_quality,
        )
        from repro.text import canonical_value

        truth = dataset.ground_truth
        if truth is None:
            raise GroundTruthError("evaluation requires ground truth")
        schema_quality = attribute_cluster_quality(
            result.schema.clusters(), dataset  # type: ignore[attr-defined]
        )
        clusters = result.clusters
        pairwise = pairwise_cluster_quality(clusters, truth)
        bcubed = bcubed_quality(clusters, truth)

        # Fusion: attribute each cluster to its majority entity, then
        # check fused values against canonical truths.
        correct = 0
        scored = 0
        entity_of_cluster: dict[str, str] = {}
        members: dict[str, list[str]] = {}
        for cluster in clusters:
            cluster_id = min(cluster)
            members[cluster_id] = list(cluster)
        for cluster_id, cluster_members in members.items():
            entities = Counter(
                truth.entity_of(record_id) for record_id in cluster_members
            )
            entity_of_cluster[cluster_id] = entities.most_common(1)[0][0]
        for item_id, value in result.fusion.chosen.items():  # type: ignore[attr-defined]
            cluster_id, __, attribute = item_id.partition("::")
            entity = entity_of_cluster.get(cluster_id)
            if entity is None:
                continue
            true_value = truth.true_value(entity, attribute)
            if true_value is None:
                continue
            scored += 1
            if self._values_agree(value, canonical_value(true_value)):
                correct += 1
        fusion_accuracy = correct / scored if scored else 0.0
        return PipelineReport(
            schema_f1=schema_quality.f1,
            linkage_pairwise_f1=pairwise.f1,
            linkage_bcubed_f1=bcubed.f1,
            fusion_accuracy=fusion_accuracy,
            n_clusters=len(clusters),
            n_items=scored,
        )
