"""The :class:`Source` — a web source contributing records.

In big data integration the *source*, not the record, is the natural
unit of trust, coverage, and cost: fusion estimates per-source accuracy,
copy detection reasons about per-source dependence, and source selection
decides which sources are worth integrating at all. A :class:`Source`
therefore groups the records one origin publishes and carries the
source-level metadata those stages consume.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core.errors import DataModelError
from repro.core.record import Record

__all__ = ["Source"]


class Source:
    """A collection of records published by one origin.

    Parameters
    ----------
    source_id:
        Unique source identifier (e.g. a hostname).
    records:
        The records this source publishes. Every record's ``source_id``
        must equal ``source_id``.
    cost:
        Integration cost of this source (crawl/clean/license effort),
        used by source selection. Defaults to ``1.0``.
    metadata:
        Free-form descriptive fields (category, locale, …). Kept out of
        the algorithmic path; useful for reporting.
    """

    __slots__ = ("_source_id", "_records", "_by_id", "_cost", "_metadata")

    def __init__(
        self,
        source_id: str,
        records: Iterable[Record] = (),
        cost: float = 1.0,
        metadata: Mapping[str, str] | None = None,
    ) -> None:
        if not source_id:
            raise DataModelError("source_id must be a non-empty string")
        if cost < 0:
            raise DataModelError(f"cost must be non-negative, got {cost}")
        self._source_id = source_id
        self._records: list[Record] = []
        self._by_id: dict[str, Record] = {}
        self._cost = float(cost)
        self._metadata = dict(metadata or {})
        for record in records:
            self.add(record)

    @property
    def source_id(self) -> str:
        """Unique identifier of this source."""
        return self._source_id

    @property
    def records(self) -> tuple[Record, ...]:
        """The records this source publishes, in insertion order."""
        return tuple(self._records)

    @property
    def cost(self) -> float:
        """Integration cost used by source selection."""
        return self._cost

    @property
    def metadata(self) -> dict[str, str]:
        """Copy of the free-form metadata mapping."""
        return dict(self._metadata)

    def add(self, record: Record) -> None:
        """Add ``record``, enforcing source consistency and id uniqueness."""
        if record.source_id != self._source_id:
            raise DataModelError(
                f"record {record.record_id!r} belongs to source "
                f"{record.source_id!r}, not {self._source_id!r}"
            )
        if record.record_id in self._by_id:
            raise DataModelError(
                f"duplicate record id {record.record_id!r} in source "
                f"{self._source_id!r}"
            )
        self._records.append(record)
        self._by_id[record.record_id] = record

    def get(self, record_id: str) -> Record | None:
        """Return the record with ``record_id``, or ``None`` if absent."""
        return self._by_id.get(record_id)

    def attribute_names(self) -> set[str]:
        """The union of attribute names used by this source's records."""
        names: set[str] = set()
        for record in self._records:
            names.update(record.attributes)
        return names

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._by_id

    def __repr__(self) -> str:
        return (
            f"Source(id={self._source_id!r}, records={len(self._records)}, "
            f"cost={self._cost})"
        )
