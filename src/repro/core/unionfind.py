"""Disjoint-set (union-find) with path compression and union by size.

Used by every clustering step in the library: attribute clustering in
schema alignment, connected-components record clustering in linkage,
and incremental cluster maintenance.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generic, Hashable, Iterable, TypeVar

T = TypeVar("T", bound=Hashable)

__all__ = ["UnionFind"]


class UnionFind(Generic[T]):
    """Disjoint sets over arbitrary hashable items.

    Items are added implicitly on first touch. ``find`` uses path
    compression; ``union`` links by size, giving effectively-constant
    amortized operations.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Ensure ``item`` exists as (at least) a singleton set."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: T) -> T:
        """Canonical representative of ``item``'s set (adds if new)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the sets of ``a`` and ``b``; returns the new root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def connected(self, a: T, b: T) -> bool:
        """True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> list[list[T]]:
        """All sets, each sorted, the list sorted by first member.

        Sorting makes downstream output deterministic regardless of
        insertion and union order.
        """
        members: dict[T, list[T]] = defaultdict(list)
        for item in self._parent:
            members[self.find(item)].append(item)
        groups = [sorted(group) for group in members.values()]
        groups.sort(key=lambda group: group[0])
        return groups

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: T) -> bool:
        return item in self._parent
