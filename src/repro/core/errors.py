"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch a single base class at an
integration boundary while still discriminating finer-grained failures
when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A component was configured with invalid or inconsistent parameters.

    Also a :class:`ValueError`, so callers validating constructor
    arguments can catch it with either base.
    """


class DataModelError(ReproError):
    """A record, source, or dataset violates a structural invariant."""


class UnknownSourceError(DataModelError):
    """A record or claim refers to a source id absent from the dataset."""

    def __init__(self, source_id: str) -> None:
        super().__init__(f"unknown source id: {source_id!r}")
        self.source_id = source_id


class UnknownRecordError(DataModelError):
    """An operation referenced a record id absent from the dataset."""

    def __init__(self, record_id: str) -> None:
        super().__init__(f"unknown record id: {record_id!r}")
        self.record_id = record_id


class GroundTruthError(ReproError):
    """Ground truth is missing or inconsistent with the dataset."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its iteration cap."""

    def __init__(self, algorithm: str, iterations: int) -> None:
        super().__init__(
            f"{algorithm} did not converge within {iterations} iterations"
        )
        self.algorithm = algorithm
        self.iterations = iterations


class EmptyInputError(ReproError):
    """An operation that requires data was invoked on an empty input."""
