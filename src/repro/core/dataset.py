"""The :class:`Dataset` — the multi-source corpus the pipeline integrates.

A dataset bundles the sources under integration with (optionally) the
ground truth that evaluates them. It provides the cross-source record
index every pipeline stage needs: iterate all records, resolve a record
id, enumerate attribute usage, and slice by source.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.core.errors import (
    DataModelError,
    UnknownRecordError,
    UnknownSourceError,
)
from repro.core.ground_truth import GroundTruth
from repro.core.record import Record
from repro.core.source import Source

__all__ = ["Dataset"]


class Dataset:
    """A corpus of sources, optionally with ground truth attached.

    Parameters
    ----------
    sources:
        The sources under integration. Source ids must be unique.
    ground_truth:
        Exact answers for evaluation, or ``None`` for unlabeled corpora.
    name:
        Human-readable corpus name used in reports.
    """

    def __init__(
        self,
        sources: Iterable[Source],
        ground_truth: GroundTruth | None = None,
        name: str = "dataset",
    ) -> None:
        self._name = name
        self._sources: dict[str, Source] = {}
        self._records: dict[str, Record] = {}
        for source in sources:
            if source.source_id in self._sources:
                raise DataModelError(
                    f"duplicate source id {source.source_id!r}"
                )
            self._sources[source.source_id] = source
            for record in source:
                if record.record_id in self._records:
                    raise DataModelError(
                        f"record id {record.record_id!r} appears in more "
                        "than one source"
                    )
                self._records[record.record_id] = record
        self._ground_truth = ground_truth

    @property
    def name(self) -> str:
        """Human-readable corpus name."""
        return self._name

    @property
    def sources(self) -> tuple[Source, ...]:
        """All sources, in a stable (insertion) order."""
        return tuple(self._sources.values())

    @property
    def source_ids(self) -> tuple[str, ...]:
        """Ids of all sources, in a stable order."""
        return tuple(self._sources)

    @property
    def ground_truth(self) -> GroundTruth | None:
        """Attached ground truth, or ``None``."""
        return self._ground_truth

    def source(self, source_id: str) -> Source:
        """Return the source with ``source_id``."""
        try:
            return self._sources[source_id]
        except KeyError:
            raise UnknownSourceError(source_id) from None

    def record(self, record_id: str) -> Record:
        """Return the record with ``record_id``."""
        try:
            return self._records[record_id]
        except KeyError:
            raise UnknownRecordError(record_id) from None

    def records(self) -> Iterator[Record]:
        """Iterate over every record in every source."""
        return iter(self._records.values())

    def record_ids(self) -> tuple[str, ...]:
        """Ids of all records, in a stable order."""
        return tuple(self._records)

    def attribute_usage(self) -> Counter[str]:
        """How many *sources* use each attribute name.

        This is the statistic behind the long-tail-of-attributes
        observation: most attribute names appear in very few sources.
        """
        usage: Counter[str] = Counter()
        for source in self._sources.values():
            for attribute in source.attribute_names():
                usage[attribute] += 1
        return usage

    def with_sources(self, source_ids: Iterable[str]) -> "Dataset":
        """A new dataset restricted to the given sources.

        Ground truth is projected onto the surviving records.
        """
        keep = list(dict.fromkeys(source_ids))
        sources = [self.source(source_id) for source_id in keep]
        truth = self._ground_truth
        if truth is not None:
            surviving = [r.record_id for s in sources for r in s]
            truth = truth.restricted_to(surviving)
        return Dataset(sources, truth, name=self._name)

    def merged_with(self, other: "Dataset", name: str | None = None) -> "Dataset":
        """Union of two datasets with disjoint sources (velocity updates)."""
        overlap = set(self._sources) & set(other._sources)
        if overlap:
            raise DataModelError(
                f"cannot merge datasets sharing sources: {sorted(overlap)[:3]}"
            )
        truth: GroundTruth | None = None
        if self._ground_truth is not None and other._ground_truth is not None:
            mapping = self._ground_truth.record_to_entity
            mapping.update(other._ground_truth.record_to_entity)
            values = self._ground_truth.true_values
            values.update(other._ground_truth.true_values)
            attrs = self._ground_truth.attribute_to_mediated
            attrs.update(other._ground_truth.attribute_to_mediated)
            truth = GroundTruth(mapping, values, attrs)
        return Dataset(
            list(self.sources) + list(other.sources),
            truth,
            name=name or f"{self._name}+{other._name}",
        )

    @property
    def n_records(self) -> int:
        """Total number of records across all sources."""
        return len(self._records)

    def __len__(self) -> int:
        return len(self._sources)

    def __contains__(self, source_id: str) -> bool:
        return source_id in self._sources

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self._name!r}, sources={len(self._sources)}, "
            f"records={len(self._records)})"
        )
