"""Drift-injecting unbounded record streams (the E26 workload).

The continuous-ingestion experiments need a stream where the *world
model drifts while integration is running*: source accuracies flip
mid-stream, a copier source appears and starts republishing a parent,
true values churn. This generator plants all of it, deterministically
from a seed, so the tracking behaviour of the decayed fusion layer and
the drift monitors can be scored exactly.

The corpus-level model follows :mod:`repro.synth`: entities with a
stable identifying ``name`` (the linkage signal — always reported
correctly, so linkage quality is held fixed while *fusion* inputs
drift) plus conflict attributes whose reported values are true with
probability equal to the source's *current* planted accuracy,
otherwise one of ``n_false_values`` planted wrong values (the
uniform-false-value model of :mod:`repro.synth.claims`). The copier
re-publishes the parent's emitted values per item with probability
``copy_rate`` — the record-level analogue of
:mod:`repro.synth.copiers`. Truth churn reuses the evolution idiom of
:mod:`repro.synth.evolution`: per tick, each (entity, attribute) truth
changes with probability ``truth_change_rate``.

Two RNGs keep the planted world replayable: a *truth* RNG drives truth
evolution only, so :meth:`DriftWorld.truth_at` can replay the truth
schedule for any tick without disturbing emission noise, and an
*emission* RNG drives coverage/noise/copying. Each
:meth:`DriftWorld.stream` call builds fresh RNGs, so every pass over
the stream is identical — the restartability checkpoint resume relies
on (wrap it in :class:`repro.io.GeneratorRecordStream` where a
re-iterable is required).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record

__all__ = [
    "CONFLICT_ATTRIBUTES",
    "DriftStreamConfig",
    "DriftWorld",
    "projection_accuracy",
]

#: The fused-and-scored attributes; ``name`` is identity, not content.
CONFLICT_ATTRIBUTES: tuple[str, ...] = ("price", "color", "stock")

_BRANDS = (
    "acme", "borealis", "cirrus", "dynamo", "ember",
    "flux", "gale", "helix", "ion", "junction",
)


@dataclass(frozen=True)
class DriftStreamConfig:
    """Knobs for the drifting unbounded stream.

    Sources ``src00..`` get planted accuracies linearly spaced from
    ``accuracy_high`` down to ``accuracy_low``. At event time
    ``flip_at`` (a tick index), source ``flip_source``'s accuracy
    becomes ``flip_to`` — the mid-stream quality flip the decayed
    posteriors must track. At ``copier_at``, source ``cop00`` appears
    and republishes ``copier_parent``'s emitted values with
    probability ``copy_rate`` per item (answering independently with
    accuracy ``copier_accuracy`` otherwise) — the relationship drift
    the match-rate monitor must flag.
    """

    n_entities: int = 12
    n_sources: int = 5
    accuracy_high: float = 0.9
    accuracy_low: float = 0.6
    flip_at: float | None = None
    flip_source: int = 0
    flip_to: float = 0.25
    copier_at: float | None = None
    copier_parent: int = 0
    copy_rate: float = 0.9
    copier_accuracy: float = 0.5
    coverage: float = 0.6
    missing_rate: float = 0.1
    n_false_values: int = 4
    truth_change_rate: float = 0.0
    seed: int = 29

    def __post_init__(self) -> None:
        if self.n_entities < 1 or self.n_sources < 1:
            raise ConfigurationError("need >= 1 entity and source")
        for name in (
            "accuracy_high", "accuracy_low", "flip_to", "copier_accuracy",
        ):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1)")
        if self.accuracy_low > self.accuracy_high:
            raise ConfigurationError(
                "accuracy_low must be <= accuracy_high"
            )
        for name in (
            "copy_rate", "coverage", "missing_rate", "truth_change_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if not 0 <= self.flip_source < self.n_sources:
            raise ConfigurationError(
                "flip_source must index a planted source"
            )
        if not 0 <= self.copier_parent < self.n_sources:
            raise ConfigurationError(
                "copier_parent must index a planted source"
            )
        if self.n_false_values < 1:
            raise ConfigurationError("n_false_values must be >= 1")


class DriftWorld:
    """The planted drifting world behind one unbounded stream.

    Everything about the stream — the truth schedule, the accuracy
    schedule, the copier edge — is queryable, so experiments can score
    fused values and accuracy estimates against what was planted at
    any tick.
    """

    def __init__(self, config: DriftStreamConfig | None = None) -> None:
        self.config = config or DriftStreamConfig()

    # --- planted schedules -------------------------------------------

    @property
    def sources(self) -> tuple[str, ...]:
        """Independent source ids (the copier, if any, excluded)."""
        return tuple(
            f"src{index:02d}" for index in range(self.config.n_sources)
        )

    @property
    def copier_id(self) -> str | None:
        return "cop00" if self.config.copier_at is not None else None

    @property
    def copier_of(self) -> dict[str, str]:
        """The planted ``copier -> parent`` edge (empty without a copier)."""
        if self.config.copier_at is None:
            return {}
        return {"cop00": f"src{self.config.copier_parent:02d}"}

    def base_accuracy(self, source_index: int) -> float:
        """A source's pre-flip planted accuracy."""
        config = self.config
        if config.n_sources == 1:
            return config.accuracy_high
        step = (config.accuracy_high - config.accuracy_low) / (
            config.n_sources - 1
        )
        return config.accuracy_high - step * source_index

    def accuracy_at(self, source_id: str, tick: float) -> float:
        """The planted accuracy of ``source_id`` at event time ``tick``."""
        config = self.config
        if source_id == "cop00":
            return config.copier_accuracy
        index = int(source_id.removeprefix("src"))
        if (
            config.flip_at is not None
            and tick >= config.flip_at
            and index == config.flip_source
        ):
            return config.flip_to
        return self.base_accuracy(index)

    def accuracies_at(self, tick: float) -> dict[str, float]:
        """Planted accuracies of the independent sources at ``tick``."""
        return {
            source: self.accuracy_at(source, tick)
            for source in self.sources
        }

    def entity_name(self, entity: int) -> str:
        return f"{_BRANDS[entity % len(_BRANDS)]} unit {entity:04d}"

    @staticmethod
    def entity_index_of(record_id: str) -> int:
        """The planted entity index a record id encodes."""
        return int(record_id.rsplit("-", 1)[1])

    def _true_value(self, entity: int, attribute: str, version: int) -> str:
        return f"{attribute}-{entity:04d}-v{version}"

    def _false_values(
        self, entity: int, attribute: str, version: int
    ) -> list[str]:
        return [
            f"{attribute}-{entity:04d}-v{version}-f{j}"
            for j in range(self.config.n_false_values)
        ]

    def _truth_schedule(self) -> Iterator[dict[tuple[int, str], int]]:
        """Per tick: the (entity, attribute) -> truth-version map.

        Driven by a private truth RNG, so it replays identically for
        :meth:`stream` and :meth:`truth_at`.
        """
        config = self.config
        rng = random.Random(config.seed)
        versions = {
            (entity, attribute): 0
            for entity in range(config.n_entities)
            for attribute in CONFLICT_ATTRIBUTES
        }
        while True:
            yield dict(versions)
            if config.truth_change_rate > 0.0:
                for key in versions:
                    if rng.random() < config.truth_change_rate:
                        versions[key] += 1

    def truth_at(self, tick: float) -> dict[str, str]:
        """Planted truth at ``tick``: ``"<entity>.<attr>" -> value``."""
        index = max(0, int(tick))
        versions = next(
            itertools.islice(self._truth_schedule(), index, None)
        )
        return {
            f"{entity:04d}.{attribute}": self._true_value(
                entity, attribute, version
            )
            for (entity, attribute), version in versions.items()
        }

    # --- the stream ---------------------------------------------------

    def stream(self) -> Iterator[Record]:
        """A fresh, unbounded, deterministic pass over the stream.

        One tick of event time per iteration of the outer loop; every
        record of tick ``t`` carries ``timestamp=float(t)``. Sources
        emit in source order, entities in entity order, so the stream
        arrives in-order (feed it through an arrival-order shuffle to
        exercise the windower's out-of-order handling).
        """
        config = self.config
        emit_rng = random.Random(config.seed + 1)
        truth = self._truth_schedule()
        for tick in itertools.count():
            versions = next(truth)
            copying = (
                config.copier_at is not None and tick >= config.copier_at
            )
            parent_id = f"src{config.copier_parent:02d}"
            parent_emitted: list[Record] = []
            for index in range(config.n_sources):
                source_id = f"src{index:02d}"
                accuracy = self.accuracy_at(source_id, tick)
                for entity in range(config.n_entities):
                    if emit_rng.random() >= config.coverage:
                        continue
                    attributes = {"name": self.entity_name(entity)}
                    for attribute in CONFLICT_ATTRIBUTES:
                        if emit_rng.random() < config.missing_rate:
                            continue
                        version = versions[(entity, attribute)]
                        if emit_rng.random() < accuracy:
                            attributes[attribute] = self._true_value(
                                entity, attribute, version
                            )
                        else:
                            attributes[attribute] = emit_rng.choice(
                                self._false_values(
                                    entity, attribute, version
                                )
                            )
                    record = Record(
                        record_id=f"{source_id}/{tick:06d}-{entity:04d}",
                        source_id=source_id,
                        attributes=attributes,
                        timestamp=float(tick),
                    )
                    if copying and source_id == parent_id:
                        parent_emitted.append(record)
                    yield record
            if copying:
                for parent_record in parent_emitted:
                    entity = self.entity_index_of(parent_record.record_id)
                    attributes = {"name": self.entity_name(entity)}
                    for attribute in CONFLICT_ATTRIBUTES:
                        parent_value = parent_record.attributes.get(
                            attribute
                        )
                        if (
                            parent_value is not None
                            and emit_rng.random() < config.copy_rate
                        ):
                            attributes[attribute] = parent_value
                            continue
                        version = versions[(entity, attribute)]
                        if emit_rng.random() < config.copier_accuracy:
                            attributes[attribute] = self._true_value(
                                entity, attribute, version
                            )
                        else:
                            attributes[attribute] = emit_rng.choice(
                                self._false_values(
                                    entity, attribute, version
                                )
                            )
                    yield Record(
                        record_id=f"cop00/{tick:06d}-{entity:04d}",
                        source_id="cop00",
                        attributes=attributes,
                        timestamp=float(tick),
                    )

    def take(self, n_records: int) -> list[Record]:
        """The first ``n_records`` of a fresh pass (test convenience)."""
        return list(itertools.islice(self.stream(), n_records))


def projection_accuracy(
    world: DriftWorld,
    entities: Mapping[str, Mapping] | Sequence[Mapping],
    tick: float,
) -> float:
    """Score a projection's fused conflict values against planted truth.

    ``entities`` is the canonical projection shape (``members`` +
    ``attributes`` per entity, as produced by the streaming runtime and
    the serving layer). Each projected entity is attributed to the
    planted entity the majority of its members describe; every fused
    conflict attribute then scores against the truth at ``tick``.
    Returns the fraction correct (``nan`` with nothing to score).
    """
    truth = world.truth_at(tick)
    if not isinstance(entities, (list, tuple)):
        entities = list(entities.values())
    correct = 0
    scored = 0
    for entity in entities:
        members = entity["members"]
        counts: dict[int, int] = {}
        for member in members:
            planted = world.entity_index_of(member)
            counts[planted] = counts.get(planted, 0) + 1
        planted_entity = max(
            counts, key=lambda index: (counts[index], -index)
        )
        for attribute in CONFLICT_ATTRIBUTES:
            fused = entity["attributes"].get(attribute)
            if fused is None:
                continue
            scored += 1
            if fused == truth[f"{planted_entity:04d}.{attribute}"]:
                correct += 1
    return correct / scored if scored else math.nan
