"""Drift-tracking online fusion: decayed counts, decayed posteriors.

Batch fusion assumes source accuracy is a constant of the world. Under
velocity it is not: a source's feed degrades, an editor changes, a
scraper re-points — and the claims it made a thousand windows ago say
little about the claims it makes now. This module makes the fusion
posteriors *forget*:

* :class:`DecayedAccuracyTracker` keeps per-source correctness counts
  that are multiplied by ``decay`` at every window close, so the
  accuracy posterior is an exponentially-weighted estimate over recent
  windows. ``decay=1.0`` is the undecayed (lifetime-average) baseline
  the drift benchmarks compare against.
* :class:`StreamFusion` folds claim batches in window-at-a-time,
  maintaining decayed per-item vote counts and re-estimating source
  accuracies from agreement with each window's fused leaders — the
  streaming analogue of one TruthFinder round per window. With
  ``decay=None`` it degrades to exact batch behaviour: accumulate
  claims and re-run :class:`~repro.fusion.online.OnlineFusion` with
  the static accuracies, bit-for-bit.

The vote-count and posterior formulas are shared with
:class:`~repro.fusion.online.OnlineFusion`
(:func:`~repro.fusion.online.vote_count`,
:func:`~repro.fusion.online.claim_posterior`), so the decayed and
batch paths agree exactly wherever they overlap.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.errors import ConfigurationError
from repro.fusion.base import Claim, ClaimSet, FusionResult
from repro.fusion.online import OnlineFusion, claim_posterior, vote_count

__all__ = ["DecayedAccuracyTracker", "StreamFusion"]

#: Pseudo-observations backing the prior accuracy; small enough that a
#: few windows of evidence dominate, large enough that one window of
#: noise does not.
DEFAULT_PRIOR_STRENGTH = 8.0


class DecayedAccuracyTracker:
    """Per-source accuracy posteriors with exponential forgetting.

    Each source carries decayed ``correct`` / ``total`` pseudo-counts;
    the point estimate blends them with a Beta-like prior::

        accuracy = (prior_strength * prior + correct)
                   / (prior_strength + total)

    :meth:`advance` multiplies every count by ``decay`` — one call per
    closed window keeps the effective memory at ``1 / (1 - decay)``
    windows. With ``decay=1.0`` nothing is forgotten (the undecayed
    baseline whose estimates go stale after a drift).
    """

    def __init__(
        self,
        priors: Mapping[str, float],
        decay: float = 1.0,
        prior_strength: float = DEFAULT_PRIOR_STRENGTH,
        default_prior: float = 0.5,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError("decay must be in (0, 1]")
        if prior_strength <= 0.0:
            raise ConfigurationError("prior_strength must be > 0")
        if not 0.0 < default_prior < 1.0:
            raise ConfigurationError("default_prior must be in (0, 1)")
        self._priors = dict(priors)
        self._decay = decay
        self._strength = prior_strength
        self._default_prior = default_prior
        self._correct: dict[str, float] = {}
        self._total: dict[str, float] = {}

    @property
    def decay(self) -> float:
        return self._decay

    def prior(self, source: str) -> float:
        """The configured prior accuracy of ``source``."""
        return self._priors.get(source, self._default_prior)

    def advance(self) -> None:
        """Apply one decay step (call once per closed window)."""
        if self._decay >= 1.0:
            return
        for source in self._total:
            self._correct[source] *= self._decay
            self._total[source] *= self._decay

    def observe(self, source: str, correct: bool, weight: float = 1.0) -> None:
        """Fold one claim outcome into ``source``'s counts."""
        self._correct[source] = self._correct.get(source, 0.0) + (
            weight if correct else 0.0
        )
        self._total[source] = self._total.get(source, 0.0) + weight

    def accuracy(self, source: str) -> float:
        """The current point estimate for ``source``."""
        prior = self.prior(source)
        total = self._total.get(source, 0.0)
        correct = self._correct.get(source, 0.0)
        return (self._strength * prior + correct) / (self._strength + total)

    def estimates(self) -> dict[str, float]:
        """Estimates for every source seen or configured, sorted by id."""
        sources = sorted(set(self._priors) | set(self._total))
        return {source: self.accuracy(source) for source in sources}

    def state(self) -> dict:
        """JSON-able checkpoint payload (exact restore)."""
        return {
            "correct": dict(sorted(self._correct.items())),
            "total": dict(sorted(self._total.items())),
        }

    def restore(self, state: Mapping) -> None:
        """Restore counts captured by :meth:`state`."""
        self._correct = dict(state["correct"])
        self._total = dict(state["total"])


class StreamFusion:
    """Window-at-a-time fusion over an unbounded claim stream.

    Parameters
    ----------
    accuracies:
        Prior per-source accuracies (the batch path's static input).
    decay:
        ``None`` — static mode: claims accumulate (latest claim per
        ``(source, item)`` wins — a source's newest statement
        supersedes its older ones) and every :meth:`fuse_window`
        re-runs :class:`OnlineFusion` with the prior accuracies over
        all accumulated claims, reproducing the batch output
        bit-for-bit (the drift-free differential anchor).
        A float in ``(0, 1]`` — drift mode: per-item vote counts and
        per-source correctness counts decay by this factor per window,
        and each window's claims are weighted by the *current* decayed
        accuracy estimates.
    n_false_values, stop_posterior:
        The Bayesian vote model, identical to :class:`OnlineFusion`.
    prior_strength:
        See :class:`DecayedAccuracyTracker`.
    """

    def __init__(
        self,
        accuracies: Mapping[str, float],
        decay: float | None = None,
        n_false_values: int = 10,
        stop_posterior: float = 0.99,
        prior_strength: float = DEFAULT_PRIOR_STRENGTH,
    ) -> None:
        if not accuracies:
            raise ConfigurationError("accuracies must be non-empty")
        if decay is not None and not 0.0 < decay <= 1.0:
            raise ConfigurationError("decay must be None or in (0, 1]")
        self._accuracies = dict(accuracies)
        self._decay = decay
        self._n = n_false_values
        self._stop_posterior = stop_posterior
        #: Static mode's claim log: latest claim per (source, item).
        self._claims: dict[tuple[str, str], Claim] = {}
        self._scores: dict[str, dict[str, float]] = {}
        self._windows = 0
        self._tracker = DecayedAccuracyTracker(
            accuracies,
            decay=decay if decay is not None else 1.0,
            prior_strength=prior_strength,
        )

    @property
    def windows_fused(self) -> int:
        return self._windows

    @property
    def decay(self) -> float | None:
        return self._decay

    def accuracies(self) -> dict[str, float]:
        """The accuracies the *next* window's claims would be weighted by.

        Static priors in ``decay=None`` mode, decayed estimates
        otherwise — this is what the drift monitors watch.
        """
        if self._decay is None:
            return dict(sorted(self._accuracies.items()))
        return self._tracker.estimates()

    def _leader(self, item_scores: Mapping[str, float]) -> str:
        """Highest vote count, ties by value — OnlineFusion's rule."""
        ranked = sorted(item_scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[0][0]

    def fuse_window(self, claims: Iterable[Claim]) -> FusionResult:
        """Fold one closed window's claims; return the current answers.

        The returned :class:`FusionResult` covers every item seen so
        far (items absent from this window keep their decayed leaders)
        and carries the post-window source-accuracy estimates in
        ``source_accuracy``; ``iterations`` counts fused windows.
        """
        window_claims = list(claims)
        self._windows += 1
        if self._decay is None:
            for claim in window_claims:
                self._claims[(claim.source_id, claim.item_id)] = claim
            if not self._claims:
                return FusionResult(
                    chosen={},
                    source_accuracy=dict(self._accuracies),
                    iterations=self._windows,
                )
            fusion = OnlineFusion(
                self._accuracies,
                n_false_values=self._n,
                stop_posterior=self._stop_posterior,
            )
            result, _ = fusion.run(ClaimSet(list(self._claims.values())))
            return FusionResult(
                chosen=result.chosen,
                confidence=result.confidence,
                source_accuracy=result.source_accuracy,
                iterations=self._windows,
            )

        # Drift mode: decay, weigh, vote, re-estimate.
        self._tracker.advance()
        for item_scores in self._scores.values():
            for value in item_scores:
                item_scores[value] *= self._decay
        weights = {
            claim.source_id: vote_count(
                self._tracker.accuracy(claim.source_id), self._n
            )
            for claim in window_claims
        }
        touched: dict[str, None] = {}
        for claim in window_claims:
            item_scores = self._scores.setdefault(claim.item_id, {})
            item_scores[claim.value] = (
                item_scores.get(claim.value, 0.0) + weights[claim.source_id]
            )
            touched.setdefault(claim.item_id, None)
        leaders = {
            item: self._leader(self._scores[item]) for item in touched
        }
        for claim in window_claims:
            self._tracker.observe(
                claim.source_id, claim.value == leaders[claim.item_id]
            )
        chosen = {
            item: self._leader(scores)
            for item, scores in self._scores.items()
        }
        confidence = {
            item: claim_posterior(self._scores[item], value, self._n)
            for item, value in chosen.items()
        }
        return FusionResult(
            chosen=chosen,
            confidence=confidence,
            source_accuracy=self._tracker.estimates(),
            iterations=self._windows,
        )

    def state(self) -> dict:
        """JSON-able checkpoint payload (exact restore of drift state).

        Static mode also captures the claim log, so a restored fuser
        keeps producing batch-identical outputs.
        """
        return {
            "windows": self._windows,
            "tracker": self._tracker.state(),
            "scores": {
                item: dict(sorted(scores.items()))
                for item, scores in sorted(self._scores.items())
            },
            "claims": [
                [claim.source_id, claim.item_id, claim.value]
                for claim in self._claims.values()
            ],
        }

    def restore(self, state: Mapping) -> None:
        """Restore the payload captured by :meth:`state`."""
        self._windows = int(state["windows"])
        self._tracker.restore(state["tracker"])
        self._scores = {
            item: dict(scores) for item, scores in state["scores"].items()
        }
        self._claims = {
            (source, item): Claim(source, item, value)
            for source, item, value in state["claims"]
        }
